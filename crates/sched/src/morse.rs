//! MORSE — a reinforcement-learning, self-optimizing memory scheduler
//! in the style of Ipek et al. (ISCA 2008) and Mukundan & Martínez
//! (HPCA 2012), as the paper's strongest baseline (MORSE-P, tuned for
//! parallel-application performance).
//!
//! Each DRAM cycle the scheduler evaluates up to `eval_cap` of the
//! oldest ready commands (Figure 11 sweeps this cap to model the
//! silicon cost of evaluating commands at DDR3-2133 speeds), computes a
//! tile-coded (CMAC) Q-value for each from a feature vector of queue /
//! bank / request attributes, picks ε-greedily, and updates the
//! previous decision with a SARSA step. The reward is data-bus
//! utilization: +1 whenever a CAS is issued.
//!
//! `Crit-RL` is the same agent with the processor-side criticality
//! prediction added to the feature set (Table 6 of the paper).
//!
//! Faithfulness note (also in DESIGN.md): the original uses offline
//! multi-factor feature selection over 35 candidate features and a
//! five-stage pipelined CMAC; here the selected features of Table 6
//! are hard-wired and the CMAC is a hashed tile coding. The paper's
//! qualitative findings — MORSE competitive with ranked CBP, Crit-RL
//! matching but not beating MORSE, performance dropping as the
//! command-evaluation cap shrinks — are what this model reproduces.

use critmem_common::SmallRng;
use critmem_dram::{Candidate, CommandKind, CommandScheduler, SchedContext};

/// Number of CMAC tilings.
const TILINGS: usize = 8;
/// log2 of the weight-table size.
const TABLE_BITS: u32 = 16;

/// Configuration for the MORSE-style RL scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MorseConfig {
    /// Maximum ready commands evaluated per DRAM cycle (paper: 24 for
    /// the original design; Figure 11 sweeps 6..24).
    pub eval_cap: usize,
    /// Include processor-side criticality features (Crit-RL).
    pub use_criticality: bool,
    /// SARSA learning rate.
    pub alpha: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Exploration rate.
    pub epsilon: f32,
    /// RNG seed (exploration is part of the algorithm).
    pub seed: u64,
}

impl Default for MorseConfig {
    fn default() -> Self {
        MorseConfig {
            eval_cap: 24,
            use_criticality: false,
            alpha: 0.1,
            gamma: 0.95,
            epsilon: 0.02,
            seed: 12_345,
        }
    }
}

/// The MORSE-style RL scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::{Morse, MorseConfig};
/// use critmem_dram::CommandScheduler;
/// let s = Morse::new(MorseConfig::default());
/// assert_eq!(s.name(), "MORSE-P");
/// let crit = Morse::new(MorseConfig { use_criticality: true, ..MorseConfig::default() });
/// assert_eq!(crit.name(), "Crit-RL");
/// ```
pub struct Morse {
    cfg: MorseConfig,
    weights: Vec<f32>,
    prev: Option<([usize; TILINGS], f32)>,
    pending_reward: f32,
    rng: SmallRng,
    decisions: u64,
}

impl std::fmt::Debug for Morse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Morse")
            .field("cfg", &self.cfg)
            .field("decisions", &self.decisions)
            .finish_non_exhaustive()
    }
}

impl Morse {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `eval_cap` is zero.
    pub fn new(cfg: MorseConfig) -> Self {
        assert!(cfg.eval_cap > 0, "eval_cap must be nonzero");
        Morse {
            cfg,
            weights: vec![0.0; 1 << TABLE_BITS],
            prev: None,
            pending_reward: 0.0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            decisions: 0,
        }
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Quantized feature vector for one candidate — the Table 6 state
    /// attributes plus command identity.
    fn features(&self, ctx: &SchedContext<'_>, c: &Candidate) -> [u32; 11] {
        let txn = &ctx.queue[c.txn];
        let mut reads_in_queue = 0u32;
        let mut reads_same_rank = 0u32;
        let mut writes_same_row = 0u32;
        let mut writes_open_row = 0u32;
        let mut older_same_core = 0u32;
        for o in ctx.queue {
            if o.is_read() {
                reads_in_queue += 1;
                if o.loc.rank == txn.loc.rank {
                    reads_same_rank += 1;
                }
            } else {
                if o.loc.rank == txn.loc.rank
                    && o.loc.bank == txn.loc.bank
                    && o.loc.row == txn.loc.row
                {
                    writes_same_row += 1;
                }
                if ctx.timing.bank(o.loc.rank, o.loc.bank).open_row == Some(o.loc.row) {
                    writes_open_row += 1;
                }
            }
            if o.req.core == txn.req.core && o.seq < txn.seq {
                older_same_core += 1;
            }
        }
        let cmd_id = match c.cmd.kind {
            CommandKind::Read => 0u32,
            CommandKind::Write => 1,
            CommandKind::Activate => 2,
            CommandKind::Precharge => 3,
            CommandKind::Refresh => 4,
        };
        let age = txn.age(ctx.now);
        let log2b = |v: u64| 64 - v.leading_zeros().min(63);
        let (crit_bin, crit_mag) = if self.cfg.use_criticality {
            (
                u32::from(c.crit.is_critical()),
                log2b(c.crit.magnitude().min(1 << 20)),
            )
        } else {
            (0, 0)
        };
        [
            cmd_id,
            u32::from(c.row_hit),
            (reads_in_queue / 4).min(15),
            reads_same_rank.min(15),
            writes_same_row.min(7),
            (writes_open_row / 2).min(15),
            older_same_core.min(7),
            log2b(age + 1).min(15),
            crit_bin,
            crit_mag,
            0, // reserved
        ]
    }

    /// CMAC index for one tiling of a feature vector (FNV-1a hash).
    fn tile_index(tiling: usize, features: &[u32; 11]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (tiling as u64).wrapping_mul(0x9E37);
        for (i, &f) in features.iter().enumerate() {
            // Offset continuous features per tiling for coarse coding.
            let v = if i >= 2 { f + (tiling as u32 & 1) } else { f };
            h ^= u64::from(v).wrapping_add((i as u64) << 32);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) & ((1 << TABLE_BITS) - 1)
    }

    fn q_value(&self, idx: &[usize; TILINGS]) -> f32 {
        idx.iter().map(|&i| self.weights[i]).sum()
    }

    fn indices(&self, features: &[u32; 11]) -> [usize; TILINGS] {
        let mut out = [0usize; TILINGS];
        for (t, slot) in out.iter_mut().enumerate() {
            *slot = Self::tile_index(t, features);
        }
        out
    }

    fn sarsa_update(&mut self, q_next: f32) {
        if let Some((idx, q_prev)) = self.prev.take() {
            let target = self.pending_reward + self.cfg.gamma * q_next;
            let delta = self.cfg.alpha * (target - q_prev) / TILINGS as f32;
            for i in idx {
                self.weights[i] += delta;
            }
        }
    }
}

impl CommandScheduler for Morse {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        // Evaluation cap: only the `eval_cap` oldest ready commands are
        // considered, mirroring the hardware's limited comparator tree.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&i| ctx.queue[candidates[i].txn].seq);
        order.truncate(self.cfg.eval_cap);

        let scored: Vec<([usize; TILINGS], f32, usize)> = order
            .iter()
            .map(|&i| {
                let f = self.features(ctx, &candidates[i]);
                let idx = self.indices(&f);
                let q = self.q_value(&idx);
                (idx, q, i)
            })
            .collect();
        let explore = self.rng.gen_f32() < self.cfg.epsilon;
        let chosen = if explore {
            let k = self.rng.gen_range_usize(0..scored.len());
            &scored[k]
        } else {
            scored
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty candidate set")
        };
        let (idx, q, cand_i) = (chosen.0, chosen.1, chosen.2);
        self.sarsa_update(q);
        self.prev = Some((idx, q));
        self.pending_reward = if candidates[cand_i].cmd.kind.is_cas() {
            1.0
        } else {
            0.0
        };
        self.decisions += 1;
        Some(cand_i)
    }

    fn name(&self) -> &str {
        if self.cfg.use_criticality {
            "Crit-RL"
        } else {
            "MORSE-P"
        }
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.weights.len() as u32);
        for &v in &self.weights {
            w.put_u32(v.to_bits());
        }
        match &self.prev {
            Some((idx, q)) => {
                w.put_bool(true);
                for &i in idx {
                    w.put_u64(i as u64);
                }
                w.put_u32(q.to_bits());
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.pending_reward.to_bits());
        critmem_common::Snapshot::save_state(&self.rng, w);
        w.put_u64(self.decisions);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.weights.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {n} CMAC weights, table size is {}",
                    self.weights.len()
                ),
                offset: r.position(),
            });
        }
        for v in &mut self.weights {
            *v = f32::from_bits(r.get_u32()?);
        }
        self.prev = if r.get_bool()? {
            let mut idx = [0usize; TILINGS];
            for i in &mut idx {
                *i = r.get_u64()? as usize;
            }
            let q = f32::from_bits(r.get_u32()?);
            Some((idx, q))
        } else {
            None
        };
        self.pending_reward = f32::from_bits(r.get_u32()?);
        critmem_common::Snapshot::load_state(&mut self.rng, r)?;
        self.decisions = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};

    #[test]
    fn always_picks_something() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = Morse::new(MorseConfig::default());
        for _ in 0..100 {
            let pick = s.select(&ctx, &cands).unwrap();
            assert!(pick < cands.len());
        }
        assert_eq!(s.decisions(), 100);
    }

    #[test]
    fn eval_cap_restricts_to_oldest() {
        let queue: Vec<_> = (0..10).map(|i| mk_txn(0, i as u8 % 8, i)).collect();
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands: Vec<_> = (0..10)
            .map(|i| mk_candidate(i, CommandKind::Read, true, 0))
            .collect();
        let mut s = Morse::new(MorseConfig {
            eval_cap: 3,
            epsilon: 0.0,
            ..Default::default()
        });
        for _ in 0..50 {
            let pick = s.select(&ctx, &cands).unwrap();
            // Only the three oldest (seq 0, 1, 2) are evaluable.
            assert!(
                cands[pick].txn < 3,
                "picked {} beyond eval cap",
                cands[pick].txn
            );
        }
    }

    #[test]
    fn learns_to_prefer_cas_reward() {
        // With reward +1 for CAS and 0 for ACT, the agent should come
        // to prefer the CAS candidate.
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = Morse::new(MorseConfig {
            epsilon: 0.10,
            ..Default::default()
        });
        // Train.
        for _ in 0..2_000 {
            s.select(&ctx, &cands);
        }
        // Evaluate greedily.
        let mut cas_picks = 0;
        for _ in 0..100 {
            s.cfg.epsilon = 0.0;
            if s.select(&ctx, &cands) == Some(1) {
                cas_picks += 1;
            }
        }
        assert!(
            cas_picks > 90,
            "agent failed to learn CAS preference: {cas_picks}/100"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut a = Morse::new(MorseConfig::default());
        let mut b = Morse::new(MorseConfig::default());
        for _ in 0..500 {
            assert_eq!(a.select(&ctx, &cands), b.select(&ctx, &cands));
        }
    }

    #[test]
    fn crit_rl_sees_criticality() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let plain = Morse::new(MorseConfig::default());
        let crit = Morse::new(MorseConfig {
            use_criticality: true,
            ..Default::default()
        });
        let cand = mk_candidate(0, CommandKind::Read, true, 500);
        let f_plain = plain.features(&ctx, &cand);
        let f_crit = crit.features(&ctx, &cand);
        assert_eq!(f_plain[8], 0);
        assert_eq!(f_crit[8], 1);
        assert!(f_crit[9] > 0);
    }

    #[test]
    #[should_panic(expected = "eval_cap")]
    fn rejects_zero_cap() {
        let _ = Morse::new(MorseConfig {
            eval_cap: 0,
            ..Default::default()
        });
    }
}
