//! ATLAS — Kim, Han, Mutlu, Harchol-Balter (HPCA 2010): "least
//! attained service" memory scheduling, discussed by the paper as the
//! other fairness-oriented multiprogrammed baseline alongside PAR-BS
//! (§6.2).
//!
//! Execution is divided into long quanta. Each thread accumulates
//! *attained service* (DRAM cycles during which it had a request being
//! serviced); at quantum boundaries threads are ranked by total
//! attained service, least first, with an exponential moving average
//! carrying history across quanta. Requests of higher-ranked (less
//! served) threads win arbitration; row hits and age break ties.

use critmem_dram::{Candidate, CommandScheduler, SchedContext, Transaction};

/// The ATLAS scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::Atlas;
/// use critmem_dram::CommandScheduler;
/// assert_eq!(Atlas::new(8).name(), "ATLAS");
/// ```
#[derive(Debug, Clone)]
pub struct Atlas {
    num_threads: usize,
    /// Smoothed attained service per thread (the paper's α = 0.875).
    attained: Vec<f64>,
    /// Service accumulated in the current quantum.
    current: Vec<f64>,
    /// Rank per thread (0 = least attained service = highest priority).
    rank: Vec<usize>,
    quantum: u64,
    next_quantum: u64,
    alpha: f64,
}

impl Atlas {
    /// Creates the scheduler for `num_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "thread count must be nonzero");
        Atlas {
            num_threads,
            attained: vec![0.0; num_threads],
            current: vec![0.0; num_threads],
            rank: (0..num_threads).collect(),
            // The original uses 10M-cycle quanta; scaled to simulator
            // run lengths the way TCM's quantum is.
            quantum: 20_000,
            next_quantum: 20_000,
            alpha: 0.875,
        }
    }

    /// Overrides the quantum length (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0);
        self.quantum = quantum;
        self.next_quantum = quantum;
        self
    }

    /// Current per-thread ranks (0 = highest priority), for tests.
    pub fn ranks(&self) -> &[usize] {
        &self.rank
    }

    fn requantize(&mut self) {
        for t in 0..self.num_threads {
            self.attained[t] = self.alpha * self.attained[t] + (1.0 - self.alpha) * self.current[t];
            self.current[t] = 0.0;
        }
        let mut order: Vec<usize> = (0..self.num_threads).collect();
        order.sort_by(|&a, &b| {
            self.attained[a]
                .partial_cmp(&self.attained[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (r, &t) in order.iter().enumerate() {
            self.rank[t] = r;
        }
    }
}

impl CommandScheduler for Atlas {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let txn = &ctx.queue[c.txn];
                let t = txn.thread().index().min(self.num_threads - 1);
                (self.rank[t], !c.cmd.kind.is_cas(), txn.seq)
            })
            .map(|(i, _)| i)
    }

    fn on_tick(&mut self, ctx: &SchedContext<'_>) {
        // Attained service: each thread with at least one queued
        // request this cycle is being serviced/buffered; weight CAS
        // presence as service the way the original counts in-service
        // memory cycles.
        for txn in ctx.queue {
            let t = txn.thread().index();
            if t < self.num_threads {
                self.current[t] += 1.0 / ctx.queue.len().max(1) as f64;
            }
        }
        if ctx.now >= self.next_quantum {
            self.requantize();
            self.next_quantum = ctx.now + self.quantum;
        }
    }

    fn next_event_cycle(&self, now: u64, queue_len: usize) -> u64 {
        // Attained-service accumulation runs every cycle transactions
        // are queued; with an empty queue only the quantum boundary
        // (which fires regardless) does observable work.
        if queue_len > 0 {
            now + 1
        } else {
            self.next_quantum
        }
    }

    fn on_complete(&mut self, txn: &Transaction, _now: u64) {
        let t = txn.thread().index();
        if t < self.num_threads {
            // A completed burst is 4 DRAM cycles of attained service.
            self.current[t] += 4.0;
        }
    }

    fn name(&self) -> &str {
        "ATLAS"
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        for v in &self.attained {
            w.put_f64(*v);
        }
        for v in &self.current {
            w.put_f64(*v);
        }
        for v in &self.rank {
            w.put_u64(*v as u64);
        }
        w.put_u64(self.next_quantum);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        for v in &mut self.attained {
            *v = r.get_f64()?;
        }
        for v in &mut self.current {
            *v = r.get_f64()?;
        }
        for v in &mut self.rank {
            *v = r.get_u64()? as usize;
        }
        self.next_quantum = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};
    use critmem_dram::CommandKind;

    #[test]
    fn least_attained_service_wins() {
        let mut s = Atlas::new(2).with_quantum(10);
        // Thread 0 accumulates lots of service.
        for _ in 0..100 {
            s.on_complete(&mk_txn(0, 0, 1), 0);
        }
        s.requantize();
        assert!(
            s.ranks()[1] < s.ranks()[0],
            "thread 1 (less served) should rank higher"
        );
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 5)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Thread 0 is older and a row hit; thread 1 still wins.
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(1, CommandKind::Activate, false, 0),
        ];
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn ema_carries_history_across_quanta() {
        let mut s = Atlas::new(2).with_quantum(10);
        for _ in 0..100 {
            s.on_complete(&mk_txn(0, 0, 1), 0);
        }
        s.requantize();
        let after_one = s.attained[0];
        s.requantize(); // no new service
        assert!(s.attained[0] > 0.0, "history must persist");
        assert!(s.attained[0] < after_one, "but decay geometrically");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_threads() {
        let _ = Atlas::new(0);
    }
}
