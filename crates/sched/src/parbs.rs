//! PAR-BS — parallelism-aware batch scheduling (Mutlu & Moscibroda,
//! ISCA 2008), the baseline the paper normalizes its multiprogrammed
//! results to (Figure 12, marking cap 5).
//!
//! The scheduler forms *batches*: when no marked requests remain, it
//! marks up to `marking_cap` oldest requests per (thread, bank). Marked
//! requests are strictly prioritized over unmarked ones, which bounds
//! each thread's interference. Within a batch, threads are ranked
//! shortest-job-first (by maximum per-bank marked count, then total
//! marked count), preserving each thread's bank-level parallelism.
//! Priority order: marked > row-hit > thread rank > age.

use critmem_common::ReqId;
use critmem_dram::{Candidate, CommandScheduler, SchedContext, Transaction};
use std::collections::{HashMap, HashSet};

/// The PAR-BS scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::ParBs;
/// use critmem_dram::CommandScheduler;
/// assert_eq!(ParBs::new(5).name(), "PAR-BS");
/// ```
#[derive(Debug, Clone)]
pub struct ParBs {
    marking_cap: usize,
    marked: HashSet<ReqId>,
    /// thread index -> rank (0 = highest priority); recomputed per batch.
    thread_rank: HashMap<u8, usize>,
    batches_formed: u64,
}

impl ParBs {
    /// Creates the scheduler with the given per-(thread, bank) marking
    /// cap (the paper uses 5).
    pub fn new(marking_cap: usize) -> Self {
        assert!(marking_cap > 0, "marking cap must be nonzero");
        ParBs {
            marking_cap,
            marked: HashSet::new(),
            thread_rank: HashMap::new(),
            batches_formed: 0,
        }
    }

    /// Number of batches formed so far.
    pub fn batches_formed(&self) -> u64 {
        self.batches_formed
    }

    /// Whether a request is marked in the current batch.
    pub fn is_marked(&self, id: ReqId) -> bool {
        self.marked.contains(&id)
    }

    fn form_batch(&mut self, queue: &[Transaction]) {
        self.marked.clear();
        self.thread_rank.clear();
        if queue.is_empty() {
            return;
        }
        self.batches_formed += 1;
        // Group requests by (thread, bank), oldest first.
        let mut groups: HashMap<(u8, u8, u8), Vec<&Transaction>> = HashMap::new();
        for t in queue {
            groups
                .entry((t.thread().0, t.loc.rank.0, t.loc.bank.0))
                .or_default()
                .push(t);
        }
        // Per-thread marked load for shortest-job-first ranking.
        let mut max_bank_load: HashMap<u8, usize> = HashMap::new();
        let mut total_load: HashMap<u8, usize> = HashMap::new();
        for ((thread, _, _), mut txns) in groups {
            txns.sort_by_key(|t| t.seq);
            let marked_here = txns.len().min(self.marking_cap);
            for t in txns.iter().take(marked_here) {
                self.marked.insert(t.req.id);
            }
            let e = max_bank_load.entry(thread).or_insert(0);
            *e = (*e).max(marked_here);
            *total_load.entry(thread).or_insert(0) += marked_here;
        }
        // Shortest job first: smaller max-bank-load, then smaller total.
        let mut threads: Vec<u8> = max_bank_load.keys().copied().collect();
        threads.sort_by_key(|t| (max_bank_load[t], total_load[t], *t));
        for (rank, t) in threads.into_iter().enumerate() {
            self.thread_rank.insert(t, rank);
        }
    }
}

impl CommandScheduler for ParBs {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        // Re-batch when the current batch is exhausted (no queued
        // request is still marked).
        let any_marked = ctx.queue.iter().any(|t| self.marked.contains(&t.req.id));
        if !any_marked {
            self.form_batch(ctx.queue);
        }
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let txn = &ctx.queue[c.txn];
                let marked = self.marked.contains(&txn.req.id);
                let rank = self
                    .thread_rank
                    .get(&txn.thread().0)
                    .copied()
                    .unwrap_or(usize::MAX);
                (!marked, !c.cmd.kind.is_cas(), rank, txn.seq)
            })
            .map(|(i, _)| i)
    }

    fn on_complete(&mut self, txn: &Transaction, _now: u64) {
        self.marked.remove(&txn.req.id);
    }

    fn name(&self) -> &str {
        "PAR-BS"
    }

    fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        v.counter("sched_batches_formed", "batches", self.batches_formed);
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        let mut marked: Vec<u64> = self.marked.iter().copied().collect();
        marked.sort_unstable();
        w.put_u64_seq(&marked);
        let mut ranks: Vec<(u8, usize)> = self.thread_rank.iter().map(|(&t, &r)| (t, r)).collect();
        ranks.sort_unstable();
        w.put_u32(ranks.len() as u32);
        for (t, rank) in ranks {
            w.put_u8(t);
            w.put_u64(rank as u64);
        }
        w.put_u64(self.batches_formed);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        self.marked = r.get_u64_seq()?.into_iter().collect();
        self.thread_rank.clear();
        for _ in 0..r.get_u32()? {
            let t = r.get_u8()?;
            let rank = r.get_u64()? as usize;
            self.thread_rank.insert(t, rank);
        }
        self.batches_formed = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, mk_txn_at, Timing};
    use critmem_dram::CommandKind;

    #[test]
    fn marks_up_to_cap_per_thread_bank() {
        let mut s = ParBs::new(2);
        let queue: Vec<Transaction> = (0..5).map(|i| mk_txn(0, 0, i)).collect();
        s.form_batch(&queue);
        let marked = queue.iter().filter(|t| s.is_marked(t.req.id)).count();
        assert_eq!(marked, 2);
        // The two oldest are the ones marked.
        assert!(s.is_marked(queue[0].req.id));
        assert!(s.is_marked(queue[1].req.id));
    }

    #[test]
    fn shortest_job_first_ranking() {
        let mut s = ParBs::new(5);
        // Thread 0: 4 requests to one bank. Thread 1: 1 request.
        let mut queue: Vec<Transaction> = (0..4).map(|i| mk_txn(0, 0, i)).collect();
        queue.push(mk_txn(1, 1, 10));
        s.form_batch(&queue);
        assert!(
            s.thread_rank[&1] < s.thread_rank[&0],
            "lighter thread ranks higher"
        );
    }

    #[test]
    fn marked_beats_unmarked_even_row_hit() {
        let mut s = ParBs::new(1);
        // Two requests from thread 0 to the same bank: only the older
        // gets marked (cap 1).
        let queue = vec![mk_txn_at(0, 0, 0, 0, 0), mk_txn_at(0, 0, 1, 5, 0)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Candidate 1 (unmarked) is a row hit; candidate 0 (marked) is not.
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        assert_eq!(s.select(&ctx, &cands), Some(0));
    }

    #[test]
    fn new_batch_forms_when_exhausted() {
        let mut s = ParBs::new(5);
        let queue = vec![mk_txn(0, 0, 0)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![mk_candidate(0, CommandKind::Read, true, 0)];
        s.select(&ctx, &cands);
        assert_eq!(s.batches_formed(), 1);
        s.on_complete(&queue[0], 0);
        // Queue now holds a different request; selecting again forms a
        // second batch.
        let queue2 = vec![mk_txn(1, 0, 1)];
        let ctx2 = mk_ctx(&queue2, &t);
        s.select(&ctx2, &cands);
        assert_eq!(s.batches_formed(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_cap() {
        let _ = ParBs::new(0);
    }
}
