//! Shared helpers for scheduler unit tests.

#![allow(dead_code)]

use critmem_common::{AccessKind, BankId, ChannelId, CoreId, Criticality, MemRequest, RankId};
use critmem_dram::{
    Candidate, ChannelTiming, CommandKind, Direction, DramCommand, DramLocation, SchedContext,
    Transaction, DDR3_2133,
};

/// Timing-state factory for tests.
pub struct Timing;

impl Timing {
    /// A 4-rank x 8-bank DDR3-2133 channel timing state.
    pub fn default_timing() -> ChannelTiming {
        ChannelTiming::new(4, 8, DDR3_2133.timing)
    }
}

/// Builds a read transaction from `core` targeting `bank` with sequence
/// number `seq` (arrival cycle == seq).
pub fn mk_txn(core: u8, bank: u8, seq: u64) -> Transaction {
    mk_txn_at(core, bank, 0, seq, 0)
}

/// Builds a read transaction with explicit row and criticality.
pub fn mk_txn_at(core: u8, bank: u8, row: u32, seq: u64, crit_mag: u64) -> Transaction {
    let req = MemRequest::new(seq, 0, AccessKind::Read, CoreId(core))
        .with_criticality(Criticality::ranked(crit_mag));
    let loc = DramLocation {
        channel: ChannelId(0),
        rank: RankId(0),
        bank: BankId(bank),
        row,
        column: 0,
    };
    Transaction::new(req, loc, seq, seq)
}

/// Builds a write transaction.
pub fn mk_write_txn(core: u8, bank: u8, row: u32, seq: u64) -> Transaction {
    let req = MemRequest::new(seq, 0, AccessKind::Write, CoreId(core));
    let loc = DramLocation {
        channel: ChannelId(0),
        rank: RankId(0),
        bank: BankId(bank),
        row,
        column: 0,
    };
    Transaction::new(req, loc, seq, seq)
}

/// Builds a candidate for queue entry `txn`.
pub fn mk_candidate(txn: usize, kind: CommandKind, row_hit: bool, crit_mag: u64) -> Candidate {
    Candidate {
        txn,
        cmd: DramCommand {
            kind,
            rank: RankId(0),
            bank: BankId(0),
            row: 0,
        },
        row_hit,
        crit: Criticality::ranked(crit_mag),
    }
}

/// Builds a candidate with an explicit bank.
pub fn mk_candidate_bank(txn: usize, kind: CommandKind, bank: u8, crit_mag: u64) -> Candidate {
    Candidate {
        txn,
        cmd: DramCommand {
            kind,
            rank: RankId(0),
            bank: BankId(bank),
            row: 0,
        },
        row_hit: kind.is_cas(),
        crit: Criticality::ranked(crit_mag),
    }
}

/// Returns fresh timing state (paired with unit for legacy call sites).
pub fn ctx_with(_queue: &[Transaction]) -> (ChannelTiming, ()) {
    (Timing::default_timing(), ())
}

/// Builds a read-direction scheduling context at cycle 100.
pub fn mk_ctx<'a>(queue: &'a [Transaction], timing: &'a ChannelTiming) -> SchedContext<'a> {
    SchedContext {
        now: 100,
        channel: ChannelId(0),
        queue,
        timing,
        direction: Direction::Read,
    }
}
