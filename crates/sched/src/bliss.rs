//! BLISS — Subramanian, Seshadri, Ghosh, Khan, Mutlu (ICCD 2014 /
//! TPDS 2016): the Blacklisting Memory Scheduler. The fairness-oriented
//! counterpoint to the paper's criticality-first designs: instead of
//! ranking *all* threads every quantum (TCM, ATLAS), BLISS only
//! separates applications into two groups — *blacklisted* (recently
//! interference-causing) and everyone else — which is enough to break
//! up the long per-application request streaks that row-hit-first
//! scheduling rewards.
//!
//! Mechanism (§4 of the BLISS paper):
//!
//! 1. The controller counts *consecutively served* requests per
//!    application. When an application is served `streak_threshold`
//!    times in a row (default 4), it is blacklisted.
//! 2. Arbitration prefers non-blacklisted applications first, then
//!    row hits (CAS over activate/precharge), then age — a plain
//!    FR-FCFS comparator with one extra leading bit.
//! 3. The whole blacklist is cleared every `clear_interval` DRAM
//!    cycles (default 10,000), so a blacklisting is a short penalty,
//!    not a permanent demotion.
//!
//! The result bounds how long a memory-intensive streak can starve the
//! other applications — which is exactly what the starvation regression
//! test in `tests/fairness_frontier.rs` measures against the unbounded
//! criticality-first Crit-CASRAS ordering.

use critmem_dram::{Candidate, CommandScheduler, SchedContext, Transaction};

/// Tuning knobs for [`Bliss`]. All fields are plain literals so the
/// config can live inside const [`crate::SchedulerKind`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlissConfig {
    /// Consecutive served requests from one application before it is
    /// blacklisted (the BLISS paper's "Blacklisting Threshold", 4).
    pub streak_threshold: u64,
    /// DRAM cycles between blacklist clearings (the paper's "Clearing
    /// Interval", 10,000).
    pub clear_interval: u64,
}

impl BlissConfig {
    /// The BLISS paper's defaults: threshold 4, clearing interval
    /// 10,000 DRAM cycles.
    pub const DEFAULT: BlissConfig = BlissConfig {
        streak_threshold: 4,
        clear_interval: 10_000,
    };
}

impl Default for BlissConfig {
    fn default() -> Self {
        BlissConfig::DEFAULT
    }
}

/// The Blacklisting Memory Scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::Bliss;
/// use critmem_dram::CommandScheduler;
/// assert_eq!(Bliss::new(8, Default::default()).name(), "BLISS");
/// ```
#[derive(Debug, Clone)]
pub struct Bliss {
    cfg: BlissConfig,
    /// Per-application blacklist bit.
    blacklisted: Vec<bool>,
    /// Application whose requests are currently being served
    /// back-to-back (`usize::MAX` = none yet).
    streak_app: usize,
    /// Length of that streak.
    streak_len: u64,
    /// Next blacklist-clearing boundary (fires on a fixed grid so the
    /// schedule is identical with and without skip-ahead).
    next_clear: u64,
    /// Total applications ever blacklisted (cumulative).
    blacklistings: u64,
    /// Total clearing events.
    clears: u64,
}

impl Bliss {
    /// Creates the scheduler for `num_threads` applications.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero or a config field is zero.
    pub fn new(num_threads: usize, cfg: BlissConfig) -> Self {
        assert!(num_threads > 0, "thread count must be nonzero");
        assert!(cfg.streak_threshold > 0, "streak threshold must be nonzero");
        assert!(cfg.clear_interval > 0, "clearing interval must be nonzero");
        Bliss {
            cfg,
            blacklisted: vec![false; num_threads],
            streak_app: usize::MAX,
            streak_len: 0,
            next_clear: cfg.clear_interval,
            blacklistings: 0,
            clears: 0,
        }
    }

    /// Current blacklist bits, for tests.
    pub fn blacklist(&self) -> &[bool] {
        &self.blacklisted
    }

    fn app_of(&self, txn: &Transaction) -> usize {
        txn.thread().index().min(self.blacklisted.len() - 1)
    }
}

impl CommandScheduler for Bliss {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let txn = &ctx.queue[c.txn];
                // Non-blacklisted first, then row hits, then age —
                // FR-FCFS with one leading blacklist bit (BLISS §4.3).
                (
                    self.blacklisted[self.app_of(txn)],
                    !c.cmd.kind.is_cas(),
                    txn.seq,
                )
            })
            .map(|(i, _)| i)
    }

    fn on_complete(&mut self, txn: &Transaction, _now: u64) {
        let app = self.app_of(txn);
        if app == self.streak_app {
            self.streak_len += 1;
        } else {
            self.streak_app = app;
            self.streak_len = 1;
        }
        if self.streak_len >= self.cfg.streak_threshold && !self.blacklisted[app] {
            self.blacklisted[app] = true;
            self.blacklistings += 1;
        }
    }

    fn on_tick(&mut self, ctx: &SchedContext<'_>) {
        if ctx.now >= self.next_clear {
            self.blacklisted.fill(false);
            self.streak_app = usize::MAX;
            self.streak_len = 0;
            self.clears += 1;
            // Anchored to the grid (like the sampler), so a late tick
            // cannot drift the boundary.
            while self.next_clear <= ctx.now {
                self.next_clear += self.cfg.clear_interval;
            }
        }
    }

    fn next_event_cycle(&self, _now: u64, _queue_len: usize) -> u64 {
        // The clearing boundary fires whether or not the queue holds
        // transactions (same contract as TCM's shuffle), keeping
        // `next_clear` path-independent under skip-ahead. Streak state
        // changes only on `on_complete`, which cannot happen during a
        // skipped window.
        self.next_clear
    }

    fn name(&self) -> &str {
        "BLISS"
    }

    fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        let size = self.blacklisted.iter().filter(|&&b| b).count();
        v.gauge("sched_blacklist_size", "apps", size as f64);
        v.counter("sched_blacklistings", "events", self.blacklistings);
        v.counter("sched_blacklist_clears", "events", self.clears);
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.blacklisted.len() as u32);
        for &b in &self.blacklisted {
            w.put_bool(b);
        }
        w.put_u64(self.streak_app as u64);
        w.put_u64(self.streak_len);
        w.put_u64(self.next_clear);
        w.put_u64(self.blacklistings);
        w.put_u64(self.clears);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.blacklisted.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "BLISS snapshot holds {n} apps, scheduler has {}",
                    self.blacklisted.len()
                ),
                offset: r.position(),
            });
        }
        for b in &mut self.blacklisted {
            *b = r.get_bool()?;
        }
        self.streak_app = r.get_u64()? as usize;
        self.streak_len = r.get_u64()?;
        self.next_clear = r.get_u64()?;
        self.blacklistings = r.get_u64()?;
        self.clears = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};
    use critmem_common::codec::{ByteReader, ByteWriter};
    use critmem_dram::CommandKind;

    fn serve(s: &mut Bliss, core: u8, times: usize) {
        for _ in 0..times {
            s.on_complete(&mk_txn(core, 0, 1), 0);
        }
    }

    #[test]
    fn streak_blacklists_and_arbitration_demotes() {
        let mut s = Bliss::new(2, BlissConfig::DEFAULT);
        serve(&mut s, 0, 4);
        assert_eq!(s.blacklist(), &[true, false]);
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 5)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Core 0 is older *and* a row hit; blacklisting still loses.
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(1, CommandKind::Activate, false, 0),
        ];
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn interleaved_service_never_blacklists() {
        let mut s = Bliss::new(2, BlissConfig::DEFAULT);
        for _ in 0..20 {
            serve(&mut s, 0, 3); // below the threshold each time
            serve(&mut s, 1, 1);
        }
        assert_eq!(s.blacklist(), &[false, false]);
    }

    #[test]
    fn clearing_interval_resets_the_blacklist() {
        let mut s = Bliss::new(
            2,
            BlissConfig {
                streak_threshold: 4,
                clear_interval: 50,
            },
        );
        serve(&mut s, 0, 4);
        assert_eq!(s.blacklist(), &[true, false]);
        assert_eq!(s.next_event_cycle(0, 0), 50);
        let queue = vec![];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t); // now == 100 >= the 50-cycle boundary
        s.on_tick(&ctx);
        assert_eq!(s.blacklist(), &[false, false]);
        // The boundary advances on the fixed grid past `now`.
        assert_eq!(s.next_event_cycle(100, 0), 150);
    }

    #[test]
    fn state_round_trips_and_rejects_shape_mismatch() {
        let mut s = Bliss::new(4, BlissConfig::DEFAULT);
        serve(&mut s, 2, 6);
        let mut w = ByteWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Bliss::new(4, BlissConfig::DEFAULT);
        fresh
            .load_state(&mut ByteReader::new(&bytes))
            .expect("round trip");
        assert_eq!(fresh.blacklist(), s.blacklist());
        assert_eq!(fresh.streak_len, s.streak_len);
        assert_eq!(fresh.blacklistings, s.blacklistings);
        let mut wrong = Bliss::new(8, BlissConfig::DEFAULT);
        assert!(wrong.load_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_threads() {
        let _ = Bliss::new(0, BlissConfig::DEFAULT);
    }
}
