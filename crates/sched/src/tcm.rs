//! TCM — thread cluster memory scheduling (Kim et al., MICRO 2010),
//! plus the paper's proposed TCM+MaxStallTime hybrid (§5.8.2).
//!
//! Every quantum, threads are clustered by memory intensity: the least
//! intensive threads whose combined bandwidth stays below a threshold
//! form the *latency-sensitive* cluster and are strictly prioritized;
//! the remaining *bandwidth-sensitive* threads are ranked and
//! periodically shuffled to even out slowdowns. Within equal thread
//! priority, vanilla TCM performs FR-FCFS; the hybrid variant replaces
//! that tiebreak with criticality-aware FR-FCFS (CASRAS-Crit), which is
//! exactly how the paper builds TCM+MaxStallTime.

use critmem_common::SmallRng;
use critmem_dram::{Candidate, CommandScheduler, SchedContext, Transaction};

/// Tiebreak policy within one thread-priority level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcmTiebreak {
    /// Plain FR-FCFS (vanilla TCM).
    FrFcfs,
    /// Criticality-aware FR-FCFS (the paper's TCM+MaxStallTime).
    CritFrFcfs,
}

/// The TCM scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::{Tcm, TcmTiebreak};
/// use critmem_dram::CommandScheduler;
/// let s = Tcm::new(8, TcmTiebreak::FrFcfs, 7);
/// assert_eq!(s.name(), "TCM");
/// ```
#[derive(Debug, Clone)]
pub struct Tcm {
    num_threads: usize,
    tiebreak: TcmTiebreak,
    /// Clustering quantum in DRAM cycles.
    quantum: u64,
    /// Bandwidth-cluster shuffle interval in DRAM cycles.
    shuffle_interval: u64,
    /// Fraction of total bandwidth granted to the latency cluster.
    cluster_threshold: f64,
    /// Requests enqueued per thread in the current quantum.
    reqs: Vec<u64>,
    /// `true` if the thread is latency-sensitive this quantum.
    latency_cluster: Vec<bool>,
    /// Priority rank within the bandwidth cluster (lower = higher).
    bw_rank: Vec<usize>,
    next_quantum: u64,
    next_shuffle: u64,
    rng: SmallRng,
}

impl Tcm {
    /// Creates the scheduler for `num_threads` threads with the given
    /// tiebreak and RNG seed (shuffling is part of the algorithm and
    /// must be reproducible).
    pub fn new(num_threads: usize, tiebreak: TcmTiebreak, seed: u64) -> Self {
        assert!(num_threads > 0, "thread count must be nonzero");
        Tcm {
            num_threads,
            tiebreak,
            quantum: 10_000,
            shuffle_interval: 800,
            cluster_threshold: 0.10,
            reqs: vec![0; num_threads],
            // Until the first quantum completes, everyone is
            // latency-sensitive (no information yet).
            latency_cluster: vec![true; num_threads],
            bw_rank: (0..num_threads).collect(),
            next_quantum: 10_000,
            next_shuffle: 800,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Overrides the clustering quantum (builder style).
    #[must_use]
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0);
        self.quantum = quantum;
        self.next_quantum = quantum;
        self
    }

    /// Current cluster assignment (for tests and reports).
    pub fn latency_cluster(&self) -> &[bool] {
        &self.latency_cluster
    }

    fn recluster(&mut self) {
        let total: u64 = self.reqs.iter().sum();
        let mut order: Vec<usize> = (0..self.num_threads).collect();
        order.sort_by_key(|&t| (self.reqs[t], t));
        let budget = (total as f64 * self.cluster_threshold).ceil() as u64;
        let mut used = 0u64;
        for t in 0..self.num_threads {
            self.latency_cluster[t] = false;
        }
        for &t in &order {
            if used + self.reqs[t] <= budget {
                self.latency_cluster[t] = true;
                used += self.reqs[t];
            } else {
                break;
            }
        }
        // Bandwidth cluster initially ranked least-intensive-first.
        let mut rank = 0;
        for &t in &order {
            if !self.latency_cluster[t] {
                self.bw_rank[t] = rank;
                rank += 1;
            } else {
                self.bw_rank[t] = 0;
            }
        }
        self.reqs.iter_mut().for_each(|r| *r = 0);
    }

    fn shuffle(&mut self) {
        // Permute the ranks of bandwidth-cluster threads (insertion
        // shuffle approximated by a uniform random permutation).
        let bw: Vec<usize> = (0..self.num_threads)
            .filter(|&t| !self.latency_cluster[t])
            .collect();
        let mut ranks: Vec<usize> = (0..bw.len()).collect();
        self.rng.shuffle(&mut ranks);
        for (i, &t) in bw.iter().enumerate() {
            self.bw_rank[t] = ranks[i];
        }
    }

    fn priority_key(&self, ctx: &SchedContext<'_>, c: &Candidate) -> impl Ord {
        let txn = &ctx.queue[c.txn];
        let thread = txn.thread().index().min(self.num_threads - 1);
        let crit_mag = match self.tiebreak {
            TcmTiebreak::FrFcfs => 0,
            TcmTiebreak::CritFrFcfs => c.crit.magnitude(),
        };
        (
            !self.latency_cluster[thread],
            self.bw_rank[thread],
            !c.cmd.kind.is_cas(),
            std::cmp::Reverse(crit_mag),
            txn.seq,
        )
    }
}

impl CommandScheduler for Tcm {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| self.priority_key(ctx, c))
            .map(|(i, _)| i)
    }

    fn on_enqueue(&mut self, txn: &Transaction, _now: u64) {
        let t = txn.thread().index();
        if t < self.num_threads {
            self.reqs[t] += 1;
        }
    }

    fn on_tick(&mut self, ctx: &SchedContext<'_>) {
        if ctx.now >= self.next_quantum {
            self.recluster();
            self.next_quantum = ctx.now + self.quantum;
        }
        if ctx.now >= self.next_shuffle {
            self.shuffle();
            self.next_shuffle = ctx.now + self.shuffle_interval;
        }
    }

    fn next_event_cycle(&self, _now: u64, _queue_len: usize) -> u64 {
        // Reclustering and rank shuffling fire on fixed boundaries
        // whether or not anything is queued.
        self.next_quantum.min(self.next_shuffle)
    }

    fn name(&self) -> &str {
        match self.tiebreak {
            TcmTiebreak::FrFcfs => "TCM",
            TcmTiebreak::CritFrFcfs => "TCM+Crit",
        }
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u64_seq(&self.reqs);
        for &b in &self.latency_cluster {
            w.put_bool(b);
        }
        for &r in &self.bw_rank {
            w.put_u64(r as u64);
        }
        w.put_u64(self.next_quantum);
        w.put_u64(self.next_shuffle);
        critmem_common::Snapshot::save_state(&self.rng, w);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let reqs = r.get_u64_seq()?;
        if reqs.len() != self.num_threads {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {} threads, scheduler has {}",
                    reqs.len(),
                    self.num_threads
                ),
                offset: r.position(),
            });
        }
        self.reqs = reqs;
        for b in &mut self.latency_cluster {
            *b = r.get_bool()?;
        }
        for v in &mut self.bw_rank {
            *v = r.get_u64()? as usize;
        }
        self.next_quantum = r.get_u64()?;
        self.next_shuffle = r.get_u64()?;
        critmem_common::Snapshot::load_state(&mut self.rng, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};
    use critmem_dram::CommandKind;

    fn drive_quantum(s: &mut Tcm, heavy: u8, light: u8, reqs_heavy: u64) {
        for i in 0..reqs_heavy {
            s.on_enqueue(&mk_txn(heavy, 0, i), 0);
        }
        s.on_enqueue(&mk_txn(light, 0, 999), 0);
        s.recluster();
    }

    #[test]
    fn light_thread_lands_in_latency_cluster() {
        let mut s = Tcm::new(2, TcmTiebreak::FrFcfs, 1);
        drive_quantum(&mut s, 0, 1, 100);
        assert!(
            s.latency_cluster()[1],
            "light thread should be latency-sensitive"
        );
        assert!(
            !s.latency_cluster()[0],
            "heavy thread should be bandwidth-sensitive"
        );
    }

    #[test]
    fn latency_cluster_wins_arbitration() {
        let mut s = Tcm::new(2, TcmTiebreak::FrFcfs, 1);
        drive_quantum(&mut s, 0, 1, 100);
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 50)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Heavy thread has a row hit and is older; light thread still wins.
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(1, CommandKind::Activate, false, 0),
        ];
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn crit_tiebreak_orders_within_cluster() {
        let mut s = Tcm::new(2, TcmTiebreak::CritFrFcfs, 1);
        // Both threads in the same (default latency) cluster.
        let queue = vec![mk_txn(0, 0, 0), mk_txn(0, 1, 5)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(1, CommandKind::Read, true, 400),
        ];
        assert_eq!(
            s.select(&ctx, &cands),
            Some(1),
            "critical request should win tie"
        );
        // Vanilla TCM would pick the older one.
        let mut v = Tcm::new(2, TcmTiebreak::FrFcfs, 1);
        assert_eq!(v.select(&ctx, &cands), Some(0));
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a = Tcm::new(8, TcmTiebreak::FrFcfs, 42);
        let mut b = Tcm::new(8, TcmTiebreak::FrFcfs, 42);
        for i in 0..800u64 {
            a.on_enqueue(&mk_txn((i % 8) as u8, 0, i), 0);
            b.on_enqueue(&mk_txn((i % 8) as u8, 0, i), 0);
        }
        a.recluster();
        b.recluster();
        a.shuffle();
        b.shuffle();
        assert_eq!(a.bw_rank, b.bw_rank);
    }
}
