//! AHB — the adaptive history-based scheduler of Hur and Lin (MICRO
//! 2004), reimplemented from the published description.
//!
//! AHB keeps a short history of recently issued commands and uses a set
//! of history-based arbiters to (a) minimize expected latency caused by
//! resource switching (rank switches, read/write bus turnarounds) and
//! (b) match the *issued* read/write mix to the *arriving* mix so
//! neither queue backs up.
//!
//! Faithfulness note (also recorded in DESIGN.md): the original builds
//! offline-optimized FSM arbiters for an IBM Power5 memory system; here
//! the same two objectives are expressed as an online cost function over
//! the ready commands, with switch penalties taken from the live DDR3
//! timing parameters. The paper under reproduction observes that AHB,
//! designed for slower DDR2-era parts, gains little (≈1.6%) on a
//! high-speed DDR3 system — the behavior this reimplementation also
//! exhibits.

use critmem_common::RankId;
use critmem_dram::{Candidate, CommandKind, CommandScheduler, SchedContext};

/// The AHB scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::Ahb;
/// use critmem_dram::CommandScheduler;
/// assert_eq!(Ahb::new().name(), "AHB");
/// ```
#[derive(Debug, Clone)]
pub struct Ahb {
    /// Rank of the most recent CAS (switching pays tRTRS).
    last_rank: Option<RankId>,
    /// Direction of the most recent CAS (`true` = read).
    last_was_read: Option<bool>,
    /// Arriving mix this epoch.
    arrived_reads: u64,
    arrived_writes: u64,
    /// Issued mix this epoch.
    issued_reads: u64,
    issued_writes: u64,
}

impl Default for Ahb {
    fn default() -> Self {
        Self::new()
    }
}

impl Ahb {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Ahb {
            last_rank: None,
            last_was_read: None,
            arrived_reads: 0,
            arrived_writes: 0,
            issued_reads: 0,
            issued_writes: 0,
        }
    }

    /// Expected-latency cost of issuing `cand` given recent history.
    /// Lower is better.
    fn cost(&self, ctx: &SchedContext<'_>, cand: &Candidate) -> i64 {
        let t = ctx.timing.timing();
        let mut cost: i64 = 0;
        match cand.cmd.kind {
            CommandKind::Read | CommandKind::Write => {
                // Rank-switch penalty on the data bus.
                if let Some(last) = self.last_rank {
                    if last != cand.cmd.rank {
                        cost += t.t_rtrs as i64;
                    }
                }
                // Bus turnaround penalty.
                let is_read = cand.cmd.kind == CommandKind::Read;
                if let Some(last_read) = self.last_was_read {
                    if last_read != is_read {
                        cost += t.t_wtr as i64;
                    }
                }
                // Mix matching: penalize the direction that is already
                // ahead of its arriving share.
                let issued = self.issued_reads + self.issued_writes;
                let arrived = self.arrived_reads + self.arrived_writes;
                if issued > 16 && arrived > 16 {
                    let read_share_arrived = self.arrived_reads as f64 / arrived as f64;
                    let read_share_issued = self.issued_reads as f64 / issued as f64;
                    let ahead = if is_read {
                        read_share_issued - read_share_arrived
                    } else {
                        read_share_arrived - read_share_issued
                    };
                    if ahead > 0.1 {
                        cost += 2;
                    }
                }
            }
            // Non-CAS commands cost a full access of extra latency, so
            // CAS is preferred — same spirit as FR-FCFS.
            CommandKind::Activate => cost += (t.t_rcd + t.t_cl) as i64,
            CommandKind::Precharge => cost += (t.t_rp + t.t_rcd + t.t_cl) as i64,
            CommandKind::Refresh => cost += t.t_rfc as i64,
        }
        // Gentle age bias to bound queueing delay.
        let age = ctx.queue[cand.txn].age(ctx.now) as i64;
        cost - age / 64
    }
}

impl CommandScheduler for Ahb {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        let choice = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (self.cost(ctx, c), ctx.queue[c.txn].seq))
            .map(|(i, _)| i)?;
        let cand = &candidates[choice];
        if cand.cmd.kind.is_cas() {
            self.last_rank = Some(cand.cmd.rank);
            let is_read = cand.cmd.kind == CommandKind::Read;
            self.last_was_read = Some(is_read);
            if is_read {
                self.issued_reads += 1;
            } else {
                self.issued_writes += 1;
            }
        }
        Some(choice)
    }

    fn on_enqueue(&mut self, txn: &critmem_dram::Transaction, _now: u64) {
        if txn.is_read() {
            self.arrived_reads += 1;
        } else {
            self.arrived_writes += 1;
        }
    }

    fn name(&self) -> &str {
        "AHB"
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        match self.last_rank {
            Some(r) => {
                w.put_bool(true);
                w.put_u8(r.0);
            }
            None => w.put_bool(false),
        }
        match self.last_was_read {
            Some(b) => {
                w.put_bool(true);
                w.put_bool(b);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.arrived_reads);
        w.put_u64(self.arrived_writes);
        w.put_u64(self.issued_reads);
        w.put_u64(self.issued_writes);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        self.last_rank = if r.get_bool()? {
            Some(RankId(r.get_u8()?))
        } else {
            None
        };
        self.last_was_read = if r.get_bool()? {
            Some(r.get_bool()?)
        } else {
            None
        };
        self.arrived_reads = r.get_u64()?;
        self.arrived_writes = r.get_u64()?;
        self.issued_reads = r.get_u64()?;
        self.issued_writes = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};

    #[test]
    fn prefers_cas_over_activate() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = Ahb::new();
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn prefers_same_rank_cas_after_history() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 1, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Prime history with a read on rank 0.
        let warm = vec![mk_candidate(0, CommandKind::Read, true, 0)];
        let mut s = Ahb::new();
        s.select(&ctx, &warm);
        // Now rank 1 vs rank 0 read: rank 0 avoids tRTRS, and wins even
        // though the rank-1 request is older.
        let mut c_rank1 = mk_candidate(0, CommandKind::Read, true, 0);
        c_rank1.cmd.rank = RankId(1);
        let c_rank0 = mk_candidate(1, CommandKind::Read, true, 0);
        assert_eq!(s.select(&ctx, &[c_rank1, c_rank0]), Some(1));
    }

    #[test]
    fn age_eventually_dominates() {
        // A very old activate beats a fresh read once its age bonus
        // exceeds the CAS preference.
        let mut old = mk_txn(0, 0, 0);
        old.arrival = 0;
        let mut fresh = mk_txn(1, 1, 90);
        fresh.arrival = 9_990; // just arrived
        let queue = vec![old, fresh];
        let t = Timing::default_timing();
        let mut ctx = mk_ctx(&queue, &t);
        ctx.now = 10_000;
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = Ahb::new();
        assert_eq!(s.select(&ctx, &cands), Some(0));
    }
}
