//! `MetaSwitch` — a dynamic mode-switching meta-scheduler in the
//! spirit of CADS (Olmedo Sanchez & Sun) and the GPGPU-Sim
//! `dyn_thresh` / round-robin mode schedulers: rather than committing
//! to one fixed policy, it wraps a *performance-mode* scheduler (e.g.
//! the paper's CASRAS-Crit) and a *fairness-mode* scheduler (e.g.
//! [`crate::Bliss`]) and flips between them at runtime.
//!
//! The switching rule watches two congestion signals each DRAM cycle:
//!
//! * **Queue occupancy** — a deep transaction queue means many
//!   applications are contending and the criticality-first ordering is
//!   probably starving someone.
//! * **Oldest queued age** — a request older than the stall watermark
//!   is direct evidence of starvation.
//!
//! Performance → fairness when *either* signal crosses its high
//! watermark; fairness → performance when *both* are back under their
//! low watermarks. A minimum-residency interval between switches
//! provides hysteresis so the controller cannot thrash at a boundary.
//!
//! Both inner schedulers receive every `on_enqueue` / `on_complete` /
//! `on_tick` notification regardless of which one is active, so the
//! inactive policy's ranking state (ATLAS attained service, TCM
//! clusters, BLISS streaks…) stays warm and a switch takes effect
//! immediately. Only `select` is routed exclusively to the active
//! mode. (Schedulers that learn inside `select`, like MORSE, only
//! learn while active.)
//!
//! Mode switches are only evaluated in `on_tick`, and the
//! [`CommandScheduler::next_event_cycle`] horizon guarantees a tick at
//! every cycle where a switch could possibly fire, so the switch
//! schedule — and therefore every statistic — is byte-identical with
//! and without the skip-ahead kernel. Residency metrics are advanced
//! only at switch events (completed stints), never per cycle, for the
//! same reason.

use critmem_dram::{Candidate, CommandScheduler, SchedContext, Transaction};

/// Watermarks and hysteresis for [`MetaSwitch`]. All fields are plain
/// literals so configs can live inside const
/// [`crate::SchedulerKind`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaSwitchConfig {
    /// Queue occupancy at or above which the scheduler enters
    /// fairness mode.
    pub high_occupancy: usize,
    /// Queue occupancy at or below which performance mode may resume.
    pub low_occupancy: usize,
    /// Oldest-queued-request age (DRAM cycles) at or above which the
    /// scheduler enters fairness mode.
    pub stall_watermark: u64,
    /// Oldest age at or below which performance mode may resume.
    pub low_stall: u64,
    /// Minimum DRAM cycles between consecutive switches (hysteresis).
    pub min_residency: u64,
}

impl MetaSwitchConfig {
    /// Defaults sized for the 64-entry per-channel transaction queue
    /// and the paper's 1,066 MHz DRAM clock: enter fairness mode when
    /// 12+ requests queue up or one waits 1,500 cycles; return when
    /// 4 or fewer queue and none is older than 400 cycles; stay at
    /// least 2,000 cycles in a mode.
    pub const DEFAULT: MetaSwitchConfig = MetaSwitchConfig {
        high_occupancy: 12,
        low_occupancy: 4,
        stall_watermark: 1_500,
        low_stall: 400,
        min_residency: 2_000,
    };
}

impl Default for MetaSwitchConfig {
    fn default() -> Self {
        MetaSwitchConfig::DEFAULT
    }
}

/// Which inner policy currently owns `select`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The performance-oriented inner scheduler is active.
    Perf,
    /// The fairness-oriented inner scheduler is active.
    Fair,
}

/// The mode-switching meta-scheduler. Construct via
/// [`crate::SchedulerKind::MetaSwitch`] (which builds both inner
/// schedulers) or directly from two boxed schedulers.
pub struct MetaSwitch {
    cfg: MetaSwitchConfig,
    perf: Box<dyn CommandScheduler>,
    fair: Box<dyn CommandScheduler>,
    mode: Mode,
    /// Cycle the current mode was entered.
    mode_since: u64,
    /// Earliest cycle the next switch is allowed.
    next_switch_ok: u64,
    /// Total mode switches.
    switches: u64,
    /// DRAM cycles spent in completed performance-mode stints.
    perf_resident: u64,
    /// DRAM cycles spent in completed fairness-mode stints.
    fair_resident: u64,
}

impl std::fmt::Debug for MetaSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaSwitch")
            .field("perf", &self.perf.name())
            .field("fair", &self.fair.name())
            .field("mode", &self.mode)
            .field("switches", &self.switches)
            .finish()
    }
}

impl MetaSwitch {
    /// Wraps a performance-mode and a fairness-mode scheduler.
    /// Starts in performance mode.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not ordered
    /// (`low_occupancy < high_occupancy`, `low_stall < stall_watermark`).
    pub fn new(
        perf: Box<dyn CommandScheduler>,
        fair: Box<dyn CommandScheduler>,
        cfg: MetaSwitchConfig,
    ) -> Self {
        assert!(
            cfg.low_occupancy < cfg.high_occupancy,
            "occupancy watermarks must satisfy low < high"
        );
        assert!(
            cfg.low_stall < cfg.stall_watermark,
            "stall watermarks must satisfy low < high"
        );
        MetaSwitch {
            cfg,
            perf,
            fair,
            mode: Mode::Perf,
            mode_since: 0,
            next_switch_ok: 0,
            switches: 0,
            perf_resident: 0,
            fair_resident: 0,
        }
    }

    /// `true` while the fairness-mode scheduler owns arbitration.
    pub fn in_fairness_mode(&self) -> bool {
        self.mode == Mode::Fair
    }

    /// Total mode switches so far.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    fn active(&mut self) -> &mut dyn CommandScheduler {
        match self.mode {
            Mode::Perf => self.perf.as_mut(),
            Mode::Fair => self.fair.as_mut(),
        }
    }

    fn switch_to(&mut self, mode: Mode, now: u64) {
        let stint = now.saturating_sub(self.mode_since);
        match self.mode {
            Mode::Perf => self.perf_resident += stint,
            Mode::Fair => self.fair_resident += stint,
        }
        self.mode = mode;
        self.mode_since = now;
        self.next_switch_ok = now + self.cfg.min_residency;
        self.switches += 1;
    }
}

impl CommandScheduler for MetaSwitch {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        self.active().select(ctx, candidates)
    }

    fn on_enqueue(&mut self, txn: &Transaction, now: u64) {
        self.perf.on_enqueue(txn, now);
        self.fair.on_enqueue(txn, now);
    }

    fn on_complete(&mut self, txn: &Transaction, now: u64) {
        self.perf.on_complete(txn, now);
        self.fair.on_complete(txn, now);
    }

    fn on_tick(&mut self, ctx: &SchedContext<'_>) {
        self.perf.on_tick(ctx);
        self.fair.on_tick(ctx);
        if ctx.now < self.next_switch_ok {
            return;
        }
        let occupancy = ctx.queue.len();
        let oldest = ctx.queue.iter().map(|t| t.age(ctx.now)).max().unwrap_or(0);
        match self.mode {
            Mode::Perf
                if occupancy >= self.cfg.high_occupancy || oldest >= self.cfg.stall_watermark =>
            {
                self.switch_to(Mode::Fair, ctx.now);
            }
            Mode::Fair if occupancy <= self.cfg.low_occupancy && oldest <= self.cfg.low_stall => {
                self.switch_to(Mode::Perf, ctx.now);
            }
            _ => {}
        }
    }

    fn next_event_cycle(&self, now: u64, queue_len: usize) -> u64 {
        let inner = self
            .perf
            .next_event_cycle(now, queue_len)
            .min(self.fair.next_event_cycle(now, queue_len));
        // While transactions are queued, the oldest age grows every
        // cycle and can cross a watermark at any of them — the switch
        // logic must run per tick. With an empty queue the only
        // possible transition is fairness → performance, which cannot
        // fire before `next_switch_ok`.
        let own = if queue_len > 0 {
            now + 1
        } else if self.mode == Mode::Fair {
            self.next_switch_ok.max(now + 1)
        } else {
            u64::MAX
        };
        inner.min(own)
    }

    fn name(&self) -> &str {
        "MetaSwitch"
    }

    fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        // Residency counters cover *completed* stints only: they
        // change exactly at switch events, so samples are identical
        // with and without skip-ahead. The inner schedulers' own
        // `sched_` metrics are not forwarded (two inner policies of
        // the same kind would collide within one channel component).
        v.gauge(
            "sched_mode",
            "mode",
            match self.mode {
                Mode::Perf => 0.0,
                Mode::Fair => 1.0,
            },
        );
        v.counter("sched_mode_switches", "events", self.switches);
        v.counter("sched_perf_residency", "cycles", self.perf_resident);
        v.counter("sched_fair_residency", "cycles", self.fair_resident);
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_bool(self.mode == Mode::Fair);
        w.put_u64(self.mode_since);
        w.put_u64(self.next_switch_ok);
        w.put_u64(self.switches);
        w.put_u64(self.perf_resident);
        w.put_u64(self.fair_resident);
        self.perf.save_state(w);
        self.fair.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        self.mode = if r.get_bool()? {
            Mode::Fair
        } else {
            Mode::Perf
        };
        self.mode_since = r.get_u64()?;
        self.next_switch_ok = r.get_u64()?;
        self.switches = r.get_u64()?;
        self.perf_resident = r.get_u64()?;
        self.fair_resident = r.get_u64()?;
        self.perf.load_state(r)?;
        self.fair.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_txn, Timing};
    use crate::{Bliss, BlissConfig, FrFcfs};
    use critmem_common::codec::{ByteReader, ByteWriter};
    use critmem_common::ChannelId;
    use critmem_dram::{ChannelTiming, CommandKind, Direction, Fcfs};

    fn tiny_cfg() -> MetaSwitchConfig {
        MetaSwitchConfig {
            high_occupancy: 3,
            low_occupancy: 1,
            stall_watermark: 500,
            low_stall: 100,
            min_residency: 50,
        }
    }

    fn mk(cfg: MetaSwitchConfig) -> MetaSwitch {
        MetaSwitch::new(Box::new(Fcfs::new()), Box::new(FrFcfs::new()), cfg)
    }

    fn ctx_at<'a>(
        queue: &'a [critmem_dram::Transaction],
        timing: &'a ChannelTiming,
        now: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now,
            channel: ChannelId(0),
            queue,
            timing,
            direction: Direction::Read,
        }
    }

    #[test]
    fn occupancy_watermark_switches_to_fairness_mode() {
        let mut s = mk(tiny_cfg());
        let t = Timing::default_timing();
        let queue: Vec<_> = (0..3u64).map(|i| mk_txn(i as u8, i as u8, i)).collect();
        assert!(!s.in_fairness_mode());
        s.on_tick(&ctx_at(&queue, &t, 10));
        assert!(s.in_fairness_mode());
        assert_eq!(s.switch_count(), 1);
    }

    #[test]
    fn stall_watermark_switches_even_at_low_occupancy() {
        let mut s = mk(tiny_cfg());
        let t = Timing::default_timing();
        let queue = vec![mk_txn(0, 0, 0)]; // arrival 0
        s.on_tick(&ctx_at(&queue, &t, 600)); // age 600 >= 500
        assert!(s.in_fairness_mode());
    }

    #[test]
    fn hysteresis_blocks_immediate_switch_back() {
        let mut s = mk(tiny_cfg());
        let t = Timing::default_timing();
        let deep: Vec<_> = (0..3u64).map(|i| mk_txn(i as u8, i as u8, i)).collect();
        s.on_tick(&ctx_at(&deep, &t, 10));
        assert!(s.in_fairness_mode());
        // Queue drains immediately, but min_residency = 50 pins us.
        s.on_tick(&ctx_at(&[], &t, 20));
        assert!(s.in_fairness_mode(), "switch-back before residency");
        s.on_tick(&ctx_at(&[], &t, 60));
        assert!(!s.in_fairness_mode(), "switch-back after residency");
        assert_eq!(s.switch_count(), 2);
    }

    #[test]
    fn select_routes_to_the_active_mode() {
        // Perf = FCFS (oldest seq), fair = FR-FCFS (row hits first):
        // the same candidate set resolves differently per mode.
        let mut s = MetaSwitch::new(Box::new(Fcfs::new()), Box::new(FrFcfs::new()), tiny_cfg());
        let t = Timing::default_timing();
        let queue = vec![mk_txn(0, 0, 1), mk_txn(1, 1, 5)];
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0), // oldest
            mk_candidate(1, CommandKind::Read, true, 0),      // row hit
        ];
        let ctx = ctx_at(&queue, &t, 10);
        assert_eq!(s.select(&ctx, &cands), Some(0), "FCFS picks the oldest");
        let deep: Vec<_> = (0..3u64).map(|i| mk_txn(i as u8, i as u8, i)).collect();
        s.on_tick(&ctx_at(&deep, &t, 10));
        assert!(s.in_fairness_mode());
        assert_eq!(
            s.select(&ctx, &cands),
            Some(1),
            "FR-FCFS prefers the row hit"
        );
    }

    #[test]
    fn horizon_covers_every_possible_switch_cycle() {
        let mut s = mk(tiny_cfg());
        // Queued transactions: ages grow per cycle, must tick each one.
        assert_eq!(s.next_event_cycle(100, 5), 101);
        // Empty queue in performance mode: nothing can fire.
        assert_eq!(s.next_event_cycle(100, 0), u64::MAX);
        // Empty queue in fairness mode: switch-back gated on residency.
        let t = Timing::default_timing();
        let deep: Vec<_> = (0..3u64).map(|i| mk_txn(i as u8, i as u8, i)).collect();
        s.on_tick(&ctx_at(&deep, &t, 10));
        assert!(s.in_fairness_mode());
        assert_eq!(s.next_event_cycle(20, 0), 60); // next_switch_ok = 10 + 50
        assert_eq!(s.next_event_cycle(70, 0), 71); // overdue: next tick
    }

    #[test]
    fn residency_metrics_advance_only_at_switches() {
        let mut s = mk(tiny_cfg());
        let t = Timing::default_timing();
        let deep: Vec<_> = (0..3u64).map(|i| mk_txn(i as u8, i as u8, i)).collect();
        s.on_tick(&ctx_at(&deep, &t, 40));
        assert_eq!(s.perf_resident, 40, "perf stint 0..40");
        assert_eq!(s.fair_resident, 0);
        s.on_tick(&ctx_at(&[], &t, 100));
        assert_eq!(s.fair_resident, 60, "fair stint 40..100");
    }

    #[test]
    fn state_round_trips_through_the_codec() {
        let mut s = MetaSwitch::new(
            Box::new(Bliss::new(4, BlissConfig::DEFAULT)),
            Box::new(FrFcfs::new()),
            tiny_cfg(),
        );
        let t = Timing::default_timing();
        let deep: Vec<_> = (0..3u64).map(|i| mk_txn(i as u8, i as u8, i)).collect();
        s.on_tick(&ctx_at(&deep, &t, 40));
        for _ in 0..4 {
            s.on_complete(&mk_txn(1, 0, 2), 41);
        }
        let mut w = ByteWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = MetaSwitch::new(
            Box::new(Bliss::new(4, BlissConfig::DEFAULT)),
            Box::new(FrFcfs::new()),
            tiny_cfg(),
        );
        fresh
            .load_state(&mut ByteReader::new(&bytes))
            .expect("round trip");
        assert!(fresh.in_fairness_mode());
        assert_eq!(fresh.switch_count(), s.switch_count());
        assert_eq!(fresh.next_switch_ok, s.next_switch_ok);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn rejects_inverted_watermarks() {
        let _ = mk(MetaSwitchConfig {
            high_occupancy: 2,
            low_occupancy: 2,
            ..MetaSwitchConfig::DEFAULT
        });
    }
}
