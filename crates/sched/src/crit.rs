//! The paper's criticality-aware FR-FCFS variants (§3.2).
//!
//! Two arrangements of the priority order:
//!
//! * [`Arrangement::CritFirst`] (**Crit-CASRAS**): (1) critical CAS,
//!   (2) critical RAS, (3) non-critical CAS, (4) non-critical RAS —
//!   needs an extra arbitration level beyond FR-FCFS.
//! * [`Arrangement::CasRasFirst`] (**CASRAS-Crit**): (1) critical CAS,
//!   (2) non-critical CAS, (3) critical RAS, (4) non-critical RAS —
//!   implementable by simply prepending the criticality magnitude to
//!   the age comparator (upper bits), which is why the paper advocates
//!   it.
//!
//! Within each group ties are broken oldest-first. With a *ranked*
//! predictor the criticality magnitude stratifies requests within the
//! critical groups; with the Binary predictor the magnitude is 0 or 1
//! and the behavior degenerates to the paper's "first take".

use critmem_dram::{Candidate, CommandScheduler, SchedContext};

/// Which priority arrangement to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrangement {
    /// Crit-CASRAS: criticality outranks CAS-over-RAS.
    CritFirst,
    /// CASRAS-Crit: CAS-over-RAS outranks criticality (the compact
    /// implementation the paper recommends).
    CasRasFirst,
}

impl Arrangement {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Arrangement::CritFirst => "Crit-CASRAS",
            Arrangement::CasRasFirst => "CASRAS-Crit",
        }
    }
}

/// Criticality-aware FR-FCFS.
///
/// The scheduler itself is stateless: all intelligence lives in the
/// processor-side predictor whose annotation rides on each request.
/// This is the paper's "lean controller" argument — the arbiter is an
/// FR-FCFS comparator a few bits wider.
///
/// # Examples
///
/// ```
/// use critmem_sched::{Arrangement, CritFrFcfs};
/// use critmem_dram::CommandScheduler;
/// let s = CritFrFcfs::new(Arrangement::CasRasFirst);
/// assert_eq!(s.name(), "CASRAS-Crit");
/// ```
#[derive(Debug, Clone)]
pub struct CritFrFcfs {
    arrangement: Arrangement,
    selections: u64,
    critical_selections: u64,
}

impl CritFrFcfs {
    /// Creates the scheduler with the given arrangement.
    pub fn new(arrangement: Arrangement) -> Self {
        CritFrFcfs {
            arrangement,
            selections: 0,
            critical_selections: 0,
        }
    }

    /// The arrangement in force.
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    /// Commands issued so far.
    pub fn selections(&self) -> u64 {
        self.selections
    }

    /// Commands issued on behalf of a critical request so far.
    pub fn critical_selections(&self) -> u64 {
        self.critical_selections
    }
}

impl CommandScheduler for CritFrFcfs {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        let pick = match self.arrangement {
            Arrangement::CritFirst => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| {
                    (
                        !c.crit.is_critical(),
                        !c.cmd.kind.is_cas(),
                        std::cmp::Reverse(c.crit.magnitude()),
                        ctx.queue[c.txn].seq,
                    )
                })
                .map(|(i, _)| i),
            Arrangement::CasRasFirst => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| {
                    (
                        !c.cmd.kind.is_cas(),
                        std::cmp::Reverse(c.crit.magnitude()),
                        ctx.queue[c.txn].seq,
                    )
                })
                .map(|(i, _)| i),
        };
        if let Some(i) = pick {
            self.selections += 1;
            if candidates[i].crit.is_critical() {
                self.critical_selections += 1;
            }
        }
        pick
    }

    fn name(&self) -> &str {
        self.arrangement.name()
    }

    fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        v.counter("sched_selections", "commands", self.selections);
        v.counter(
            "sched_critical_selections",
            "commands",
            self.critical_selections,
        );
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u64(self.selections);
        w.put_u64(self.critical_selections);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        self.selections = r.get_u64()?;
        self.critical_selections = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};
    use critmem_dram::CommandKind;

    #[test]
    fn casras_crit_prefers_cas_even_non_critical() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 0, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Candidate 0: critical ACT; candidate 1: non-critical READ.
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 100),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = CritFrFcfs::new(Arrangement::CasRasFirst);
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn crit_casras_prefers_critical_ras_over_noncrit_cas() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 0, 1)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 100),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = CritFrFcfs::new(Arrangement::CritFirst);
        assert_eq!(s.select(&ctx, &cands), Some(0));
    }

    #[test]
    fn magnitude_stratifies_within_cas_group() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 0, 1), mk_txn(2, 0, 2)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 5),
            mk_candidate(1, CommandKind::Read, true, 250),
            mk_candidate(2, CommandKind::Read, true, 0),
        ];
        for arr in [Arrangement::CasRasFirst, Arrangement::CritFirst] {
            let mut s = CritFrFcfs::new(arr);
            assert_eq!(s.select(&ctx, &cands), Some(1), "{}", arr.name());
        }
    }

    #[test]
    fn age_breaks_ties_at_equal_magnitude() {
        let queue = vec![mk_txn(0, 0, 9), mk_txn(1, 0, 4)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 7),
            mk_candidate(1, CommandKind::Read, true, 7),
        ];
        let mut s = CritFrFcfs::new(Arrangement::CasRasFirst);
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn without_criticality_both_reduce_to_frfcfs() {
        let queue = vec![mk_txn(0, 0, 5), mk_txn(1, 0, 2)];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(1, CommandKind::Activate, false, 0),
        ];
        for arr in [Arrangement::CasRasFirst, Arrangement::CritFirst] {
            let mut s = CritFrFcfs::new(arr);
            assert_eq!(s.select(&ctx, &cands), Some(0), "{}", arr.name());
        }
    }
}
