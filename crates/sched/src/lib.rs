//! Memory schedulers for the `critmem` simulator.
//!
//! Implements the paper's criticality-aware FR-FCFS variants
//! ([`CritFrFcfs`]: Crit-CASRAS and CASRAS-Crit, §3.2) together with
//! every scheduler it compares against (§5.8): plain [`FrFcfs`],
//! [`Ahb`] (Hur/Lin), [`ParBs`] (Mutlu/Moscibroda), [`Tcm`] (Kim et
//! al., plus the TCM+criticality hybrid), and the [`Morse`] RL
//! scheduler (MORSE-P / Crit-RL).
//!
//! [`SchedulerKind`] is the configuration-level enumeration used by the
//! experiment harness to instantiate one scheduler per channel.
//!
//! # Examples
//!
//! ```
//! use critmem_sched::SchedulerKind;
//!
//! let kind = SchedulerKind::CasRasCrit;
//! let sched = kind.build(8, 0);
//! assert_eq!(sched.name(), "CASRAS-Crit");
//! ```

#![warn(missing_docs)]

pub mod ahb;
pub mod atlas;
pub mod bliss;
pub mod crit;
pub mod frfcfs;
pub mod meta;
pub mod minimalist;
pub mod morse;
pub mod parbs;
pub mod tcm;

#[cfg(test)]
pub(crate) mod testutil;

pub use ahb::Ahb;
pub use atlas::Atlas;
pub use bliss::{Bliss, BlissConfig};
pub use crit::{Arrangement, CritFrFcfs};
pub use frfcfs::FrFcfs;
pub use meta::{MetaSwitch, MetaSwitchConfig};
pub use minimalist::MinimalistOpenPage;
pub use morse::{Morse, MorseConfig};
pub use parbs::ParBs;
pub use tcm::{Tcm, TcmTiebreak};

use critmem_dram::CommandScheduler;

/// Configuration-level scheduler selector.
///
/// Criticality-aware kinds rely on the *requests* carrying criticality
/// annotations from a processor-side predictor; the scheduler itself is
/// predictor-agnostic (the paper's division of labor).
#[derive(Debug, Clone, Copy, PartialEq)]
// `Wedged` is a deliberately hidden test-only variant, not a
// non-exhaustiveness marker: matching on it exhaustively is fine.
#[allow(clippy::manual_non_exhaustive)]
pub enum SchedulerKind {
    /// Strict first-come-first-served.
    Fcfs,
    /// FR-FCFS baseline (Rixner et al.).
    FrFcfs,
    /// Crit-CASRAS: criticality above CAS/RAS (§3.2).
    CritCasRas,
    /// CASRAS-Crit: CAS/RAS above criticality — the advocated design.
    CasRasCrit,
    /// Adaptive history-based (Hur/Lin).
    Ahb,
    /// ATLAS: least-attained-service ranking (Kim et al., HPCA 2010).
    Atlas,
    /// Minimalist Open-page: MLP-based thread ranking with short
    /// row-hit bursts (Kaseridis et al., MICRO 2011).
    Minimalist,
    /// Parallelism-aware batch scheduling, with marking cap.
    ParBs {
        /// Per-(thread, bank) marking cap (paper: 5).
        marking_cap: usize,
    },
    /// Thread cluster memory scheduling.
    Tcm {
        /// Tiebreak within a priority level.
        tiebreak: TcmTiebreak,
    },
    /// MORSE-style RL scheduler (MORSE-P or Crit-RL).
    Morse(MorseConfig),
    /// BLISS: the Blacklisting Memory Scheduler (Subramanian et al.).
    Bliss(BlissConfig),
    /// Mode-switching meta-scheduler: wraps a performance-mode and a
    /// fairness-mode inner scheduler and flips between them on queue
    /// occupancy / stall-time watermarks. The inner kinds are
    /// `&'static` references so this enum stays `Copy`; const
    /// promotion covers literal kinds
    /// (`&SchedulerKind::CasRasCrit`), and
    /// [`SchedulerKind::DEFAULT_META`] provides the canonical pairing.
    MetaSwitch {
        /// Inner scheduler active in performance mode.
        perf: &'static SchedulerKind,
        /// Inner scheduler active in fairness mode.
        fair: &'static SchedulerKind,
        /// Watermarks and hysteresis.
        cfg: MetaSwitchConfig,
    },
    /// A scheduler that never issues a command — an artificial
    /// livelock used by the resilience tests to exercise the
    /// forward-progress watchdog. Not a paper configuration.
    #[doc(hidden)]
    Wedged,
}

/// The artificial-livelock scheduler behind [`SchedulerKind::Wedged`]:
/// `select` always declines, so queued requests age forever while the
/// controller stays formally alive. Exists to give the watchdog tests a
/// realistic wedge without feature gates.
#[doc(hidden)]
#[derive(Debug, Default, Clone)]
pub struct Wedge;

impl CommandScheduler for Wedge {
    fn select(
        &mut self,
        _ctx: &critmem_dram::SchedContext<'_>,
        _candidates: &[critmem_dram::Candidate],
    ) -> Option<usize> {
        None
    }

    fn name(&self) -> &str {
        "Wedged"
    }
}

impl SchedulerKind {
    /// The canonical meta-scheduler pairing: CASRAS-Crit (the paper's
    /// advocated performance design) in performance mode, BLISS in
    /// fairness mode, default watermarks. This is what
    /// `"metaswitch"` parses to.
    pub const DEFAULT_META: SchedulerKind = SchedulerKind::MetaSwitch {
        perf: &SchedulerKind::CasRasCrit,
        fair: &SchedulerKind::Bliss(BlissConfig::DEFAULT),
        cfg: MetaSwitchConfig::DEFAULT,
    };

    /// Instantiates a scheduler for one channel. `num_threads` sizes
    /// the per-thread state of TCM; `channel_seed` decorrelates the
    /// seeded RNGs of different channels.
    pub fn build(self, num_threads: usize, channel_seed: u64) -> Box<dyn CommandScheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(critmem_dram::Fcfs::new()),
            SchedulerKind::FrFcfs => Box::new(FrFcfs::new()),
            SchedulerKind::CritCasRas => Box::new(CritFrFcfs::new(Arrangement::CritFirst)),
            SchedulerKind::CasRasCrit => Box::new(CritFrFcfs::new(Arrangement::CasRasFirst)),
            SchedulerKind::Ahb => Box::new(Ahb::new()),
            SchedulerKind::Atlas => Box::new(Atlas::new(num_threads)),
            SchedulerKind::Minimalist => Box::new(MinimalistOpenPage::new(num_threads)),
            SchedulerKind::ParBs { marking_cap } => Box::new(ParBs::new(marking_cap)),
            SchedulerKind::Tcm { tiebreak } => {
                Box::new(Tcm::new(num_threads, tiebreak, 0xC0FFEE ^ channel_seed))
            }
            SchedulerKind::Morse(cfg) => {
                let cfg = MorseConfig {
                    seed: cfg.seed ^ channel_seed.wrapping_mul(0x9E37),
                    ..cfg
                };
                Box::new(Morse::new(cfg))
            }
            SchedulerKind::Bliss(cfg) => Box::new(Bliss::new(num_threads, cfg)),
            SchedulerKind::MetaSwitch { perf, fair, cfg } => Box::new(MetaSwitch::new(
                perf.build(num_threads, channel_seed),
                fair.build(num_threads, channel_seed),
                cfg,
            )),
            SchedulerKind::Wedged => Box::new(Wedge),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::CritCasRas => "Crit-CASRAS",
            SchedulerKind::CasRasCrit => "CASRAS-Crit",
            SchedulerKind::Ahb => "AHB",
            SchedulerKind::Atlas => "ATLAS",
            SchedulerKind::Minimalist => "Minimalist",
            SchedulerKind::ParBs { .. } => "PAR-BS",
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            } => "TCM",
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::CritFrFcfs,
            } => "TCM+Crit",
            SchedulerKind::Morse(cfg) => {
                if cfg.use_criticality {
                    "Crit-RL"
                } else {
                    "MORSE-P"
                }
            }
            SchedulerKind::Bliss(_) => "BLISS",
            SchedulerKind::MetaSwitch { .. } => "MetaSwitch",
            SchedulerKind::Wedged => "Wedged",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = critmem_common::SimError;

    /// Parses a display name (as printed by [`SchedulerKind::name`],
    /// case-insensitive) back into a kind, using the paper's default
    /// parameters for the parameterized schedulers.
    ///
    /// # Examples
    ///
    /// ```
    /// use critmem_sched::SchedulerKind;
    /// let k: SchedulerKind = "casras-crit".parse().unwrap();
    /// assert_eq!(k, SchedulerKind::CasRasCrit);
    /// assert!("nope".parse::<SchedulerKind>().is_err());
    /// ```
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        let kind = match name.to_ascii_lowercase().as_str() {
            "fcfs" => SchedulerKind::Fcfs,
            "fr-fcfs" | "frfcfs" => SchedulerKind::FrFcfs,
            "crit-casras" | "critcasras" => SchedulerKind::CritCasRas,
            "casras-crit" | "casrascrit" => SchedulerKind::CasRasCrit,
            "ahb" => SchedulerKind::Ahb,
            "atlas" => SchedulerKind::Atlas,
            "minimalist" => SchedulerKind::Minimalist,
            "par-bs" | "parbs" => SchedulerKind::ParBs { marking_cap: 5 },
            "tcm" => SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            },
            "tcm+crit" => SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::CritFrFcfs,
            },
            "morse-p" | "morse" => SchedulerKind::Morse(MorseConfig::default()),
            "crit-rl" => SchedulerKind::Morse(MorseConfig {
                use_criticality: true,
                ..Default::default()
            }),
            "bliss" => SchedulerKind::Bliss(BlissConfig::DEFAULT),
            "metaswitch" | "meta" => SchedulerKind::DEFAULT_META,
            _ => {
                return Err(critmem_common::SimError::Config(format!(
                    "unknown scheduler '{name}' (expected one of: fcfs, fr-fcfs, \
                     crit-casras, casras-crit, ahb, atlas, minimalist, par-bs, tcm, \
                     tcm+crit, morse-p, crit-rl, bliss, metaswitch)"
                )))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_names_consistently() {
        let kinds = [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::CritCasRas,
            SchedulerKind::CasRasCrit,
            SchedulerKind::Ahb,
            SchedulerKind::Atlas,
            SchedulerKind::Minimalist,
            SchedulerKind::ParBs { marking_cap: 5 },
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            },
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::CritFrFcfs,
            },
            SchedulerKind::Morse(MorseConfig::default()),
            SchedulerKind::Morse(MorseConfig {
                use_criticality: true,
                ..Default::default()
            }),
            SchedulerKind::Bliss(BlissConfig::DEFAULT),
            SchedulerKind::DEFAULT_META,
            SchedulerKind::MetaSwitch {
                perf: &SchedulerKind::Atlas,
                fair: &SchedulerKind::FrFcfs,
                cfg: MetaSwitchConfig::DEFAULT,
            },
        ];
        for kind in kinds {
            let built = kind.build(8, 3);
            assert_eq!(built.name(), kind.name());
        }
    }

    #[test]
    fn names_round_trip_through_parse() {
        let kinds = [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::CritCasRas,
            SchedulerKind::CasRasCrit,
            SchedulerKind::Ahb,
            SchedulerKind::Atlas,
            SchedulerKind::Minimalist,
            SchedulerKind::ParBs { marking_cap: 5 },
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            },
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::CritFrFcfs,
            },
            SchedulerKind::Morse(MorseConfig::default()),
            SchedulerKind::Bliss(BlissConfig::DEFAULT),
            SchedulerKind::DEFAULT_META,
        ];
        for kind in kinds {
            let parsed: SchedulerKind = kind
                .name()
                .parse()
                .unwrap_or_else(|e| panic!("{} must parse: {e}", kind.name()));
            assert_eq!(parsed.name(), kind.name());
        }
        let err = "bogus".parse::<SchedulerKind>().unwrap_err();
        assert!(matches!(err, critmem_common::SimError::Config(_)));
    }

    #[test]
    fn default_meta_parses_to_the_canonical_pairing() {
        let parsed: SchedulerKind = "metaswitch".parse().unwrap();
        assert_eq!(parsed, SchedulerKind::DEFAULT_META);
        let alias: SchedulerKind = "meta".parse().unwrap();
        assert_eq!(alias, parsed);
        // The kind stays Copy: inner schedulers are &'static refs.
        let copied = parsed;
        assert_eq!(copied, parsed);
    }
}
