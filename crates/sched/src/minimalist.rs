//! Minimalist Open-page — Kaseridis, Stuecheli, John (MICRO 2011),
//! discussed by the paper (§6.2) as a contrasting, *memory-side*
//! notion of "criticality": threads with low memory-level parallelism
//! rank above high-MLP threads, which rank above prefetches.
//!
//! The original also fixes a short open-page burst (it precharges
//! after a small number of row hits); here the burst cap is modeled by
//! demoting a bank's further row hits once the cap is reached in favor
//! of other ready work, while the thread-MLP ranking is computed from
//! each thread's in-flight request count.

use critmem_common::AccessKind;
use critmem_dram::{Candidate, CommandScheduler, SchedContext};

/// The Minimalist Open-page scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::MinimalistOpenPage;
/// use critmem_dram::CommandScheduler;
/// assert_eq!(MinimalistOpenPage::new(4).name(), "Minimalist");
/// ```
#[derive(Debug, Clone)]
pub struct MinimalistOpenPage {
    num_threads: usize,
    /// Row hits issued in the current burst, per bank index.
    burst: Vec<u32>,
    /// Burst cap (the original uses ~4 accesses per activation).
    burst_cap: u32,
    banks_per_rank: usize,
    last_bank: Option<usize>,
}

impl MinimalistOpenPage {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "thread count must be nonzero");
        MinimalistOpenPage {
            num_threads,
            burst: Vec::new(),
            burst_cap: 4,
            banks_per_rank: 0,
            last_bank: None,
        }
    }

    /// Thread MLP = number of in-flight (queued) read requests; low
    /// MLP means each request matters more (the scheduler's notion of
    /// a "critical" thread).
    fn thread_mlp(&self, ctx: &SchedContext<'_>) -> Vec<u32> {
        let mut mlp = vec![0u32; self.num_threads];
        for txn in ctx.queue {
            if txn.is_read() {
                let t = txn.thread().index();
                if t < self.num_threads {
                    mlp[t] += 1;
                }
            }
        }
        mlp
    }
}

impl CommandScheduler for MinimalistOpenPage {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        if self.banks_per_rank != ctx.timing.banks_per_rank() {
            self.banks_per_rank = ctx.timing.banks_per_rank();
            self.burst = vec![0; ctx.timing.ranks() * self.banks_per_rank];
        }
        let mlp = self.thread_mlp(ctx);
        let choice = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let txn = &ctx.queue[c.txn];
                let t = txn.thread().index().min(self.num_threads - 1);
                let bank_idx = c.cmd.rank.index() * self.banks_per_rank + c.cmd.bank.index();
                let burst_exhausted =
                    c.row_hit && self.burst.get(bank_idx).copied().unwrap_or(0) >= self.burst_cap;
                (
                    // Prefetches always rank below demand requests.
                    txn.req.kind == AccessKind::Prefetch,
                    // Short open-page bursts: an exhausted bank's row
                    // hits yield to other ready work.
                    burst_exhausted,
                    !c.cmd.kind.is_cas(),
                    // Low-MLP threads first.
                    mlp[t],
                    txn.seq,
                )
            })
            .map(|(i, _)| i)?;
        let cand = &candidates[choice];
        let bank_idx = cand.cmd.rank.index() * self.banks_per_rank + cand.cmd.bank.index();
        if cand.cmd.kind.is_cas() {
            if self.last_bank == Some(bank_idx) && cand.row_hit {
                self.burst[bank_idx] += 1;
            } else {
                self.burst[bank_idx] = 1;
            }
            self.last_bank = Some(bank_idx);
        } else {
            self.burst[bank_idx] = 0;
        }
        Some(choice)
    }

    fn name(&self) -> &str {
        "Minimalist"
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.burst.len() as u32);
        for &b in &self.burst {
            w.put_u32(b);
        }
        w.put_u64(self.banks_per_rank as u64);
        match self.last_bank {
            Some(b) => {
                w.put_bool(true);
                w.put_u64(b as u64);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        self.burst.clear();
        for _ in 0..n {
            self.burst.push(r.get_u32()?);
        }
        self.banks_per_rank = r.get_u64()? as usize;
        self.last_bank = if r.get_bool()? {
            Some(r.get_u64()? as usize)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{mk_candidate, mk_ctx, mk_txn, Timing};
    use critmem_dram::CommandKind;

    #[test]
    fn low_mlp_thread_wins() {
        let mut s = MinimalistOpenPage::new(2);
        // Thread 0 has 3 in-flight reads; thread 1 has 1.
        let queue = vec![
            mk_txn(0, 0, 0),
            mk_txn(0, 1, 1),
            mk_txn(0, 2, 2),
            mk_txn(1, 3, 9),
        ];
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(3, CommandKind::Read, true, 0),
        ];
        assert_eq!(s.select(&ctx, &cands), Some(1), "low-MLP thread should win");
    }

    #[test]
    fn burst_cap_demotes_long_row_hit_runs() {
        let mut s = MinimalistOpenPage::new(1);
        let queue: Vec<_> = (0..8).map(|i| mk_txn(0, 0, i)).collect();
        let t = Timing::default_timing();
        let ctx = mk_ctx(&queue, &t);
        // Same-bank row hits forever; plus one ACT on another bank.
        let mut cands: Vec<_> = (0..4)
            .map(|i| mk_candidate(i, CommandKind::Read, true, 0))
            .collect();
        let mut act = mk_candidate(7, CommandKind::Activate, false, 0);
        act.cmd.bank = critmem_common::BankId(3);
        cands.push(act);
        // First four picks stay in the row-hit burst...
        for _ in 0..4 {
            let pick = s.select(&ctx, &cands).unwrap();
            assert!(cands[pick].cmd.kind.is_cas());
        }
        // ...then the burst cap forces the ACT through.
        let pick = s.select(&ctx, &cands).unwrap();
        assert_eq!(cands[pick].cmd.kind, CommandKind::Activate);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_threads() {
        let _ = MinimalistOpenPage::new(0);
    }
}
