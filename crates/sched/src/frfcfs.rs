//! FR-FCFS (Rixner et al.): first-ready, first-come-first-served — the
//! baseline scheduler the whole paper builds on.
//!
//! Priority: CAS commands (column accesses to already-open rows) over
//! RAS/PRE commands; ties broken by age (oldest first).

use critmem_dram::{Candidate, CommandScheduler, SchedContext};

/// The FR-FCFS scheduler.
///
/// # Examples
///
/// ```
/// use critmem_sched::FrFcfs;
/// use critmem_dram::CommandScheduler;
/// let s = FrFcfs::new();
/// assert_eq!(s.name(), "FR-FCFS");
/// ```
#[derive(Debug, Default, Clone)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FrFcfs
    }
}

impl CommandScheduler for FrFcfs {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (!c.cmd.kind.is_cas(), ctx.queue[c.txn].seq))
            .map(|(i, _)| i)
    }

    fn name(&self) -> &str {
        "FR-FCFS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx_with, mk_candidate, mk_txn};
    use critmem_dram::CommandKind;

    #[test]
    fn cas_beats_older_ras() {
        let queue = vec![mk_txn(0, 0, 0), mk_txn(1, 0, 10)];
        let (timing, _) = ctx_with(&queue);
        let ctx = SchedContext {
            now: 50,
            channel: critmem_common::ChannelId(0),
            queue: &queue,
            timing: &timing,
            direction: critmem_dram::Direction::Read,
        };
        let cands = vec![
            mk_candidate(0, CommandKind::Activate, false, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = FrFcfs::new();
        assert_eq!(s.select(&ctx, &cands), Some(1));
    }

    #[test]
    fn age_breaks_ties_within_cas() {
        let queue = vec![mk_txn(0, 0, 7), mk_txn(1, 0, 3)];
        let (timing, _) = ctx_with(&queue);
        let ctx = SchedContext {
            now: 50,
            channel: critmem_common::ChannelId(0),
            queue: &queue,
            timing: &timing,
            direction: critmem_dram::Direction::Read,
        };
        let cands = vec![
            mk_candidate(0, CommandKind::Read, true, 0),
            mk_candidate(1, CommandKind::Read, true, 0),
        ];
        let mut s = FrFcfs::new();
        assert_eq!(s.select(&ctx, &cands), Some(1)); // seq 3 older
    }

    #[test]
    fn empty_candidates_idle() {
        let queue: Vec<critmem_dram::Transaction> = Vec::new();
        let (timing, _) = ctx_with(&queue);
        let ctx = SchedContext {
            now: 50,
            channel: critmem_common::ChannelId(0),
            queue: &queue,
            timing: &timing,
            direction: critmem_dram::Direction::Read,
        };
        let mut s = FrFcfs::new();
        assert_eq!(s.select(&ctx, &[]), None);
    }
}
