//! Processor-side load criticality predictors.
//!
//! This crate implements the paper's central hardware contribution, the
//! **Commit Block Predictor** ([`CommitBlockPredictor`], §3): a small,
//! tagless, direct-mapped, PC-indexed SRAM per core that learns which
//! static load instructions block the head of the reorder buffer, under
//! five annotation metrics ([`CbpMetric`]). It also reproduces the
//! comparison predictor of Subramaniam et al. ([`Clpt`], §2), which
//! gauges criticality by a load's number of direct consumers.
//!
//! # Examples
//!
//! ```
//! use critmem_predict::{CbpMetric, CommitBlockPredictor, TableSize};
//!
//! let mut cbp = CommitBlockPredictor::new(CbpMetric::MaxStallTime, TableSize::Entries(64));
//! // A load at PC 0x400 blocked the ROB head for 250 cycles.
//! cbp.record_block(0x400, 250);
//! // The next dynamic instance is predicted critical with magnitude 250.
//! let crit = cbp.predict(0x400);
//! assert!(crit.is_critical());
//! assert_eq!(crit.magnitude(), 250);
//! ```

pub mod cbp;
pub mod clpt;

pub use cbp::{CbpMetric, CbpStats, CommitBlockPredictor, TableSize};
pub use clpt::{Clpt, ClptMode};
