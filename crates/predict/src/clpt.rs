//! The Critical Load Prediction Table of Subramaniam et al.,
//! reproduced as the paper does (§2, §5.3.3) for comparison against
//! the CBP.
//!
//! The CLPT observes, at rename time, how many *direct consumers* each
//! load has; loads whose consumer count meets a threshold are marked
//! critical the next time they issue. The paper evaluates two flavors:
//! a binary marking (`CLPT-Binary`, threshold 3 — and a threshold-2
//! variant in §5.3.3) and a ranked variant (`CLPT-Consumers`) where
//! the raw consumer count is sent to the scheduler as the criticality
//! magnitude.

use critmem_common::{Criticality, Pc};
use std::collections::HashMap;

/// How CLPT predictions are presented to the memory scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClptMode {
    /// Mark critical when consumer count >= threshold (paper default 3).
    Binary {
        /// Minimum direct-consumer count for a load to be marked.
        threshold: u32,
    },
    /// For loads marked critical (count >= threshold), send the
    /// consumer count itself as the criticality magnitude so the
    /// scheduler can prioritize among them (the paper's
    /// CLPT-Consumers).
    Consumers {
        /// Minimum direct-consumer count for a load to be marked.
        threshold: u32,
    },
}

/// PC-indexed table of per-load direct-consumer counts.
///
/// # Examples
///
/// ```
/// use critmem_predict::{Clpt, ClptMode};
///
/// let mut clpt = Clpt::new(ClptMode::Binary { threshold: 3 });
/// clpt.record_consumers(0x400, 4);
/// assert!(clpt.predict(0x400).is_critical());
/// clpt.record_consumers(0x404, 1); // 85% of loads look like this
/// assert!(!clpt.predict(0x404).is_critical());
/// ```
#[derive(Debug, Clone)]
pub struct Clpt {
    mode: ClptMode,
    /// Most recent consumer count per static load.
    table: HashMap<Pc, u32>,
    /// Lookups / critical marks, for the §5.3.3 analysis.
    lookups: u64,
    critical: u64,
    /// Distribution of recorded consumer counts.
    single_consumer: u64,
    recorded: u64,
}

impl Clpt {
    /// Creates an empty table.
    pub fn new(mode: ClptMode) -> Self {
        Clpt {
            mode,
            table: HashMap::new(),
            lookups: 0,
            critical: 0,
            single_consumer: 0,
            recorded: 0,
        }
    }

    /// The prediction mode in force.
    pub fn mode(&self) -> ClptMode {
        self.mode
    }

    /// Records the observed direct-consumer count of the load at `pc`
    /// (called when the load's consumers have all been renamed — in
    /// the simulator, at the load's commit).
    pub fn record_consumers(&mut self, pc: Pc, consumers: u32) {
        self.recorded += 1;
        if consumers <= 1 {
            self.single_consumer += 1;
        }
        self.table.insert(pc, consumers);
    }

    /// Looks up the criticality prediction for a load issuing at `pc`.
    pub fn predict(&mut self, pc: Pc) -> Criticality {
        self.lookups += 1;
        let count = self.table.get(&pc).copied().unwrap_or(0);
        let crit = match self.mode {
            ClptMode::Binary { threshold } => {
                if count >= threshold {
                    Criticality::binary()
                } else {
                    Criticality::non_critical()
                }
            }
            ClptMode::Consumers { threshold } => {
                if count >= threshold {
                    Criticality::ranked(u64::from(count))
                } else {
                    Criticality::non_critical()
                }
            }
        };
        if crit.is_critical() {
            self.critical += 1;
        }
        crit
    }

    /// Fraction of recorded loads that had at most one direct consumer
    /// — the paper measures roughly 85%, which is why CLPT fails to
    /// stratify loads for the memory scheduler.
    pub fn single_consumer_fraction(&self) -> f64 {
        if self.recorded == 0 {
            0.0
        } else {
            self.single_consumer as f64 / self.recorded as f64
        }
    }

    /// Fraction of lookups that produced a critical mark.
    pub fn critical_fraction(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.critical as f64 / self.lookups as f64
        }
    }
}

impl critmem_common::Snapshot for Clpt {
    /// The mode comes from the constructor; the captured state is the
    /// consumer-count table (sorted by PC for determinism) and the
    /// analysis counters.
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        let mut rows: Vec<(Pc, u32)> = self.table.iter().map(|(&k, &v)| (k, v)).collect();
        rows.sort_unstable();
        w.put_u32(rows.len() as u32);
        for (pc, count) in rows {
            w.put_u64(pc);
            w.put_u32(count);
        }
        w.put_u64(self.lookups);
        w.put_u64(self.critical);
        w.put_u64(self.single_consumer);
        w.put_u64(self.recorded);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        self.table = (0..n)
            .map(|_| Ok((r.get_u64()?, r.get_u32()?)))
            .collect::<Result<_, critmem_common::codec::CodecError>>()?;
        self.lookups = r.get_u64()?;
        self.critical = r.get_u64()?;
        self.single_consumer = r.get_u64()?;
        self.recorded = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_binary_marking() {
        let mut c = Clpt::new(ClptMode::Binary { threshold: 3 });
        c.record_consumers(0x10, 2);
        c.record_consumers(0x20, 3);
        assert!(!c.predict(0x10).is_critical());
        assert!(c.predict(0x20).is_critical());
    }

    #[test]
    fn threshold_two_variant() {
        let mut c = Clpt::new(ClptMode::Binary { threshold: 2 });
        c.record_consumers(0x10, 2);
        assert!(c.predict(0x10).is_critical());
    }

    #[test]
    fn consumers_mode_ranks_by_count_above_threshold() {
        let mut c = Clpt::new(ClptMode::Consumers { threshold: 3 });
        c.record_consumers(0x10, 7);
        c.record_consumers(0x20, 2);
        assert_eq!(c.predict(0x10).magnitude(), 7);
        assert!(
            !c.predict(0x20).is_critical(),
            "below threshold is unmarked"
        );
    }

    #[test]
    fn unseen_load_is_non_critical() {
        let mut c = Clpt::new(ClptMode::Consumers { threshold: 3 });
        assert!(!c.predict(0x999).is_critical());
    }

    #[test]
    fn latest_count_wins() {
        let mut c = Clpt::new(ClptMode::Consumers { threshold: 3 });
        c.record_consumers(0x10, 9);
        c.record_consumers(0x10, 3);
        assert_eq!(c.predict(0x10).magnitude(), 3);
    }

    #[test]
    fn single_consumer_fraction_tracks() {
        let mut c = Clpt::new(ClptMode::Consumers { threshold: 3 });
        c.record_consumers(0x10, 1);
        c.record_consumers(0x20, 0);
        c.record_consumers(0x30, 5);
        c.record_consumers(0x40, 1);
        assert!((c.single_consumer_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn critical_fraction_tracks_lookups() {
        let mut c = Clpt::new(ClptMode::Binary { threshold: 3 });
        c.record_consumers(0x10, 5);
        c.predict(0x10);
        c.predict(0x20);
        assert!((c.critical_fraction() - 0.5).abs() < 1e-9);
    }
}
