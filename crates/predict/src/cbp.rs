//! The Commit Block Predictor (CBP) — §3 of the paper.
//!
//! A per-core, PC-indexed, tagless, direct-mapped table. When a load
//! blocks at the ROB head, counter logic next to the commit stage
//! measures the stall; when the stalled load finally commits, the
//! observed value is written to the table under one of five metrics.
//! When a later dynamic load issues, its PC indexes the table and the
//! stored value travels with the memory request as its criticality
//! magnitude.
//!
//! Because the table is tagless, different static loads alias onto the
//! same entry; §5.3.1–5.3.2 of the paper study the resulting
//! mispredictions and the periodic-reset mitigation, both of which are
//! modeled here.

use critmem_common::{CpuCycle, Criticality, Histogram, Pc};
use std::collections::HashMap;

/// How a ROB-head block is recorded into the CBP (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CbpMetric {
    /// A single saturating bit: "this load has blocked before".
    Binary,
    /// Number of times the load has blocked the ROB head.
    BlockCount,
    /// The most recent observed stall duration (cycles).
    LastStallTime,
    /// The largest observed stall duration (cycles) — the paper's
    /// best-performing metric (+9.3% average).
    MaxStallTime,
    /// Accumulated stall cycles over the whole execution.
    TotalStallTime,
}

impl CbpMetric {
    /// All five metrics, in the order the paper presents them.
    pub const ALL: [CbpMetric; 5] = [
        CbpMetric::Binary,
        CbpMetric::BlockCount,
        CbpMetric::LastStallTime,
        CbpMetric::MaxStallTime,
        CbpMetric::TotalStallTime,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CbpMetric::Binary => "Binary",
            CbpMetric::BlockCount => "BlockCount",
            CbpMetric::LastStallTime => "LastStallTime",
            CbpMetric::MaxStallTime => "MaxStallTime",
            CbpMetric::TotalStallTime => "TotalStallTime",
        }
    }
}

impl std::fmt::Display for CbpMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// CBP table geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableSize {
    /// A direct-mapped, tagless table with this many entries (must be a
    /// power of two). The paper sweeps 64 / 256 / 1,024.
    Entries(usize),
    /// The paper's idealized fully-associative table with unbounded
    /// entries — no aliasing.
    Unlimited,
}

/// Observation statistics used by Table 5 (counter widths) and the
/// aliasing analysis of §5.3.2.
#[derive(Debug, Clone, Default)]
pub struct CbpStats {
    /// Distribution of values written to the table.
    pub written_values: Histogram,
    /// Lookups that returned "critical".
    pub critical_predictions: u64,
    /// Total lookups.
    pub lookups: u64,
    /// Table resets performed.
    pub resets: u64,
    /// Distinct static PCs that ever blocked the ROB head.
    pub static_blockers: u64,
}

impl CbpStats {
    /// Fraction of lookups that predicted "critical" — the paper's
    /// coverage measure. Zero before the first lookup.
    pub fn coverage(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.critical_predictions as f64 / self.lookups as f64
        }
    }
}

/// The Commit Block Predictor.
///
/// See the [module documentation](self) for the hardware analogy. All
/// cycle values are CPU cycles.
#[derive(Debug, Clone)]
pub struct CommitBlockPredictor {
    metric: CbpMetric,
    size: TableSize,
    /// Direct-mapped storage (used when `size` is `Entries`).
    table: Vec<u64>,
    index_mask: usize,
    /// Fully-associative storage (used when `size` is `Unlimited`).
    assoc: HashMap<Pc, u64>,
    /// Tracks which static PCs have been seen blocking (for stats).
    seen_blockers: HashMap<Pc, ()>,
    /// Periodic reset interval in CPU cycles (§5.3.2), if enabled.
    reset_interval: Option<CpuCycle>,
    next_reset: CpuCycle,
    stats: CbpStats,
}

impl CommitBlockPredictor {
    /// Creates a predictor with the given metric and geometry.
    ///
    /// # Panics
    ///
    /// Panics if a bounded size is zero or not a power of two.
    pub fn new(metric: CbpMetric, size: TableSize) -> Self {
        let (table, index_mask) = match size {
            TableSize::Entries(n) => {
                assert!(
                    n > 0 && n.is_power_of_two(),
                    "CBP size must be a power of two, got {n}"
                );
                (vec![0u64; n], n - 1)
            }
            TableSize::Unlimited => (Vec::new(), 0),
        };
        CommitBlockPredictor {
            metric,
            size,
            table,
            index_mask,
            assoc: HashMap::new(),
            seen_blockers: HashMap::new(),
            reset_interval: None,
            next_reset: 0,
            stats: CbpStats::default(),
        }
    }

    /// Enables periodic table reset every `interval` CPU cycles
    /// (builder style). The paper trains the interval on {fft, mg,
    /// radix} and settles on 100K cycles.
    #[must_use]
    pub fn with_reset_interval(mut self, interval: CpuCycle) -> Self {
        assert!(interval > 0, "reset interval must be nonzero");
        self.reset_interval = Some(interval);
        self.next_reset = interval;
        self
    }

    /// The annotation metric in force.
    pub fn metric(&self) -> CbpMetric {
        self.metric
    }

    /// The table geometry in force.
    pub fn size(&self) -> TableSize {
        self.size
    }

    /// Observation statistics.
    pub fn stats(&self) -> &CbpStats {
        &self.stats
    }

    /// Reports the predictor's metrics to the observability layer. The
    /// caller sets the component path (e.g. `cbp.core0`) first.
    pub fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        v.counter("lookups", "lookups", self.stats.lookups);
        v.counter(
            "critical_predictions",
            "lookups",
            self.stats.critical_predictions,
        );
        v.gauge("coverage", "ratio", self.stats.coverage());
        v.gauge("saturation", "ratio", self.saturation());
        v.counter("resets", "resets", self.stats.resets);
        v.counter("static_blockers", "pcs", self.stats.static_blockers);
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        // Instructions are word-aligned; drop the low bits like a
        // branch predictor would.
        ((pc >> 2) as usize) & self.index_mask
    }

    /// The CPU cycle at which the next periodic reset falls due, or
    /// `u64::MAX` when resets are disabled. Event-horizon accessor for
    /// skip-ahead: [`CommitBlockPredictor::tick`] is a no-op strictly
    /// before this cycle.
    pub fn next_reset_due(&self) -> CpuCycle {
        if self.reset_interval.is_some() {
            self.next_reset
        } else {
            CpuCycle::MAX
        }
    }

    /// Advances predictor-local time; performs the periodic reset when
    /// it falls due.
    pub fn tick(&mut self, now: CpuCycle) {
        if let Some(interval) = self.reset_interval {
            if now >= self.next_reset {
                self.table.iter_mut().for_each(|e| *e = 0);
                self.assoc.clear();
                self.stats.resets += 1;
                self.next_reset = now + interval;
            }
        }
    }

    /// Records that the load at `pc` blocked the ROB head for
    /// `stall_cycles` before committing. Called by the commit stage
    /// when a stalled load finally retires.
    pub fn record_block(&mut self, pc: Pc, stall_cycles: u64) {
        if self.seen_blockers.insert(pc, ()).is_none() {
            self.stats.static_blockers += 1;
        }
        let new = |old: u64| -> u64 {
            match self.metric {
                CbpMetric::Binary => 1,
                CbpMetric::BlockCount => old + 1,
                CbpMetric::LastStallTime => stall_cycles,
                CbpMetric::MaxStallTime => old.max(stall_cycles),
                CbpMetric::TotalStallTime => old + stall_cycles,
            }
        };
        let written = match self.size {
            TableSize::Entries(_) => {
                let i = self.index(pc);
                let v = new(self.table[i]);
                self.table[i] = v;
                v
            }
            TableSize::Unlimited => {
                let e = self.assoc.entry(pc).or_insert(0);
                *e = new(*e);
                *e
            }
        };
        self.stats.written_values.record(written);
    }

    /// Looks up the criticality prediction for a load at `pc`, as done
    /// when the load issues to memory.
    pub fn predict(&mut self, pc: Pc) -> Criticality {
        self.stats.lookups += 1;
        let v = match self.size {
            TableSize::Entries(_) => self.table[self.index(pc)],
            TableSize::Unlimited => self.assoc.get(&pc).copied().unwrap_or(0),
        };
        if v > 0 {
            self.stats.critical_predictions += 1;
        }
        Criticality::ranked(v)
    }

    /// Side-effect-free lookup (no statistics), for analysis passes.
    pub fn peek(&self, pc: Pc) -> Criticality {
        let v = match self.size {
            TableSize::Entries(_) => self.table[self.index(pc)],
            TableSize::Unlimited => self.assoc.get(&pc).copied().unwrap_or(0),
        };
        Criticality::ranked(v)
    }

    /// Fraction of table entries currently marked (nonzero) — the
    /// saturation measure of §5.3.2. For the unlimited table this is
    /// the number of marked static PCs.
    pub fn saturation(&self) -> f64 {
        match self.size {
            TableSize::Entries(n) => {
                self.table.iter().filter(|&&v| v > 0).count() as f64 / n as f64
            }
            TableSize::Unlimited => self.assoc.len() as f64,
        }
    }
}

impl critmem_common::Snapshot for CommitBlockPredictor {
    /// The metric, geometry, and reset interval come from the
    /// constructor; the captured state is the table contents, the
    /// associative/blocker maps (sorted by PC for determinism), the
    /// next reset cycle, and the observation statistics.
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u64_seq(&self.table);
        let mut assoc: Vec<(Pc, u64)> = self.assoc.iter().map(|(&k, &v)| (k, v)).collect();
        assoc.sort_unstable();
        w.put_u32(assoc.len() as u32);
        for (pc, v) in assoc {
            w.put_u64(pc);
            w.put_u64(v);
        }
        let mut blockers: Vec<Pc> = self.seen_blockers.keys().copied().collect();
        blockers.sort_unstable();
        w.put_u64_seq(&blockers);
        w.put_u64(self.next_reset);
        self.stats.written_values.encode(w);
        w.put_u64(self.stats.critical_predictions);
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.resets);
        w.put_u64(self.stats.static_blockers);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let table = r.get_u64_seq()?;
        if table.len() != self.table.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "CBP table holds {} entries, snapshot has {}",
                    self.table.len(),
                    table.len()
                ),
                offset: r.position(),
            });
        }
        self.table = table;
        let n = r.get_u32()? as usize;
        self.assoc = (0..n)
            .map(|_| Ok((r.get_u64()?, r.get_u64()?)))
            .collect::<Result<_, critmem_common::codec::CodecError>>()?;
        self.seen_blockers = r.get_u64_seq()?.into_iter().map(|pc| (pc, ())).collect();
        self.next_reset = r.get_u64()?;
        self.stats.written_values = Histogram::decode(r)?;
        self.stats.critical_predictions = r.get_u64()?;
        self.stats.lookups = r.get_u64()?;
        self.stats.resets = r.get_u64()?;
        self.stats.static_blockers = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_saturates_at_one() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(64));
        cbp.record_block(0x100, 500);
        cbp.record_block(0x100, 900);
        assert_eq!(cbp.predict(0x100).magnitude(), 1);
    }

    #[test]
    fn block_count_increments() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::BlockCount, TableSize::Entries(64));
        for _ in 0..5 {
            cbp.record_block(0x100, 10);
        }
        assert_eq!(cbp.predict(0x100).magnitude(), 5);
    }

    #[test]
    fn last_stall_tracks_most_recent() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::LastStallTime, TableSize::Entries(64));
        cbp.record_block(0x100, 500);
        cbp.record_block(0x100, 20);
        assert_eq!(cbp.predict(0x100).magnitude(), 20);
    }

    #[test]
    fn max_stall_keeps_maximum() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::MaxStallTime, TableSize::Entries(64));
        cbp.record_block(0x100, 500);
        cbp.record_block(0x100, 20);
        assert_eq!(cbp.predict(0x100).magnitude(), 500);
    }

    #[test]
    fn total_stall_accumulates() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::TotalStallTime, TableSize::Entries(64));
        cbp.record_block(0x100, 500);
        cbp.record_block(0x100, 20);
        assert_eq!(cbp.predict(0x100).magnitude(), 520);
    }

    #[test]
    fn unseen_pc_is_non_critical() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(64));
        assert!(!cbp.predict(0xBEEF).is_critical());
    }

    #[test]
    fn direct_mapped_table_aliases() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(64));
        // PCs 0x0 and 0x400 (= 64 words apart) share entry 0.
        cbp.record_block(0x0, 100);
        assert!(
            cbp.predict(64 * 4).is_critical(),
            "aliased PC should hit the same entry"
        );
    }

    #[test]
    fn unlimited_table_does_not_alias() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Unlimited);
        cbp.record_block(0x0, 100);
        assert!(cbp.predict(0x0).is_critical());
        assert!(!cbp.predict(64 * 4).is_critical());
    }

    #[test]
    fn periodic_reset_clears_table() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(64))
            .with_reset_interval(100_000);
        cbp.record_block(0x100, 50);
        cbp.tick(99_999);
        assert!(cbp.predict(0x100).is_critical());
        cbp.tick(100_000);
        assert!(!cbp.predict(0x100).is_critical());
        assert_eq!(cbp.stats().resets, 1);
    }

    #[test]
    fn saturation_grows_with_distinct_blockers() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(64));
        assert_eq!(cbp.saturation(), 0.0);
        for i in 0..32u64 {
            cbp.record_block(i * 4, 10);
        }
        assert_eq!(cbp.saturation(), 0.5);
    }

    #[test]
    fn stats_track_static_blockers_and_widths() {
        let mut cbp = CommitBlockPredictor::new(CbpMetric::MaxStallTime, TableSize::Unlimited);
        cbp.record_block(0x100, 13_475); // paper's max observed stall
        cbp.record_block(0x104, 5);
        cbp.record_block(0x100, 9);
        assert_eq!(cbp.stats().static_blockers, 2);
        assert_eq!(cbp.stats().written_values.required_bits(), 14);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_size() {
        let _ = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(100));
    }

    /// Seeded property sweep: the unlimited table's prediction for a
    /// PC equals the metric fold over exactly that PC's history.
    #[test]
    fn unlimited_matches_reference() {
        let mut rng = critmem_common::SmallRng::seed_from_u64(0xCB9);
        for _ in 0..32 {
            let n = rng.gen_range(1..100);
            let history: Vec<(u64, u64)> = (0..n)
                .map(|_| (rng.gen_range(0..8), rng.gen_range(1..10_000)))
                .collect();
            for metric in CbpMetric::ALL {
                let mut cbp = CommitBlockPredictor::new(metric, TableSize::Unlimited);
                for &(pc_sel, stall) in &history {
                    cbp.record_block(pc_sel * 4, stall);
                }
                // Reference fold for PC 0.
                let mine: Vec<u64> = history
                    .iter()
                    .filter(|(p, _)| *p == 0)
                    .map(|&(_, s)| s)
                    .collect();
                let expect = match metric {
                    CbpMetric::Binary => u64::from(!mine.is_empty()),
                    CbpMetric::BlockCount => mine.len() as u64,
                    CbpMetric::LastStallTime => mine.last().copied().unwrap_or(0),
                    CbpMetric::MaxStallTime => mine.iter().copied().max().unwrap_or(0),
                    CbpMetric::TotalStallTime => mine.iter().sum(),
                };
                assert_eq!(cbp.predict(0).magnitude(), expect, "{metric}");
            }
        }
    }

    /// A bounded table never reports a PC non-critical that was
    /// recorded and not reset (aliasing only *adds* marks).
    #[test]
    fn aliasing_is_conservative() {
        let mut rng = critmem_common::SmallRng::seed_from_u64(0xA11A5);
        for _ in 0..64 {
            let n = rng.gen_range(1..50);
            let pcs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100_000)).collect();
            let mut cbp = CommitBlockPredictor::new(CbpMetric::Binary, TableSize::Entries(64));
            for &pc in &pcs {
                cbp.record_block(pc, 1);
            }
            for &pc in &pcs {
                assert!(cbp.predict(pc).is_critical());
            }
        }
    }
}
