//! Single-threaded SPEC 2000 / NAS stand-ins and the eight
//! four-application multiprogrammed bundles of Table 4.
//!
//! Each app is classified as the paper does (following its Table 4
//! annotations): **P** — processor-sensitive (small footprint, high
//! ILP, branchy), **C** — cache-sensitive (working set around the L2
//! slice), **M** — memory-sensitive (footprint far beyond the L2).

use crate::spec::{AddrPattern, AppSpec, DepSpec, OpClass, Phase, StaticOp};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The paper's sensitivity classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// Processor-sensitive.
    Processor,
    /// Cache-sensitive.
    Cache,
    /// Memory-sensitive.
    Memory,
}

impl AppClass {
    /// Single-letter form used in Table 4.
    pub fn letter(self) -> char {
        match self {
            AppClass::Processor => 'P',
            AppClass::Cache => 'C',
            AppClass::Memory => 'M',
        }
    }
}

/// A multiprogrammed bundle: name plus its four applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bundle {
    /// Bundle mnemonic (Table 4 row label).
    pub name: &'static str,
    /// The four applications, in order.
    pub apps: [&'static str; 4],
}

/// Table 4: the eight four-application bundles.
pub const BUNDLES: [Bundle; 8] = [
    Bundle {
        name: "AELV",
        apps: ["ammp", "ep", "lu", "vpr"],
    },
    Bundle {
        name: "CMLI",
        apps: ["crafty", "mesa", "lu", "is"],
    },
    Bundle {
        name: "GAMV",
        apps: ["mg1", "ammp", "mesa", "vpr"],
    },
    Bundle {
        name: "GDPC",
        apps: ["mg1", "mgrid", "parser", "crafty"],
    },
    Bundle {
        name: "GSMV",
        apps: ["mg1", "sp", "mesa", "vpr"],
    },
    Bundle {
        name: "RFEV",
        apps: ["art1", "mcf", "ep", "vpr"],
    },
    Bundle {
        name: "RFGI",
        apps: ["art1", "mcf", "mg1", "is"],
    },
    Bundle {
        name: "RGTM",
        apps: ["art1", "mg1", "twolf", "mesa"],
    },
];

/// All distinct single-threaded apps appearing in the bundles.
pub const MULTI_APPS: [&str; 14] = [
    "ammp", "art1", "crafty", "ep", "is", "lu", "mcf", "mesa", "mg1", "mgrid", "parser", "sp",
    "twolf", "vpr",
];

/// The sensitivity class of a single-threaded app (per Table 4's
/// annotations). Returns `None` for unknown names.
pub fn app_class(name: &str) -> Option<AppClass> {
    Some(match name {
        "ep" | "crafty" | "mesa" => AppClass::Processor,
        "ammp" | "lu" | "vpr" | "mgrid" | "parser" | "sp" | "art1" => AppClass::Cache,
        "is" | "mg1" | "mcf" | "twolf" => AppClass::Memory,
        _ => return None,
    })
}

fn load(pat: AddrPattern) -> StaticOp {
    StaticOp::new(OpClass::Load(pat))
}

fn alu() -> StaticOp {
    StaticOp::new(OpClass::IntAlu)
}

fn fp() -> StaticOp {
    StaticOp::new(OpClass::FpAlu)
}

fn branch() -> StaticOp {
    StaticOp::new(OpClass::Branch)
}

/// A processor-sensitive kernel: small, L1/L2-resident working set,
/// lots of ALU work and branches.
fn processor_kernel(name: &'static str, accuracy: f64, fp_heavy: bool) -> AppSpec {
    let mut ops = Vec::new();
    for i in 0..4 {
        ops.push(load(AddrPattern::Stream {
            stride: 8,
            region: 96 * KB,
        }));
        let work = if fp_heavy { fp() } else { alu() };
        ops.push(work.dep(DepSpec::PrevLoad));
        ops.push(alu().dep(DepSpec::Dist(1)));
        ops.push(alu().dep(DepSpec::Dist(1)));
        if i % 2 == 0 {
            ops.push(branch().dep(DepSpec::Dist(1)));
        }
    }
    ops.push(StaticOp::new(OpClass::Store(AddrPattern::Stream {
        stride: 8,
        region: 32 * KB,
    })));
    AppSpec {
        name,
        phases: vec![Phase {
            ops,
            iterations: u64::MAX,
        }],
        branch_accuracy: accuracy,
    }
}

/// A cache-sensitive kernel: working set comparable to an L2 share.
fn cache_kernel(name: &'static str, region: u64, accuracy: f64) -> AppSpec {
    let mut ops = Vec::new();
    for _ in 0..3 {
        ops.push(load(AddrPattern::Stream { stride: 8, region }));
        ops.push(fp().dep(DepSpec::PrevLoad));
        ops.push(alu().dep(DepSpec::Dist(1)));
    }
    ops.push(load(AddrPattern::Random { region }));
    ops.push(alu().dep(DepSpec::PrevLoad));
    for _ in 0..4 {
        ops.push(alu());
    }
    ops.push(StaticOp::new(OpClass::Store(AddrPattern::Stream {
        stride: 8,
        region,
    })));
    ops.push(branch());
    AppSpec {
        name,
        phases: vec![Phase {
            ops,
            iterations: u64::MAX,
        }],
        branch_accuracy: accuracy,
    }
}

/// A memory-sensitive kernel; `chase` adds mcf-style dependent misses.
/// Hot loads are emitted as a back-to-back independent group so most
/// misses complete in the shadow of the burst leader (see the parallel
/// generators): the critical population stays sparse, as in real code.
fn memory_kernel(name: &'static str, region: u64, chase: bool, accuracy: f64) -> AppSpec {
    let mut ops = Vec::new();
    if chase {
        ops.push(load(AddrPattern::Random { region }));
        ops.push(load(AddrPattern::Chase { region }).dep(DepSpec::PrevLoad));
        ops.push(alu().dep(DepSpec::PrevLoad));
        for _ in 0..6 {
            ops.push(alu());
        }
    } else {
        // Independent unit-stride streams: aligned miss bursts.
        for _ in 0..3 {
            ops.push(load(AddrPattern::Stream { stride: 8, region }));
        }
        for k in 0..3u16 {
            ops.push(alu().dep(DepSpec::Dist(3 - k)));
        }
        ops.push(load(AddrPattern::Random { region }));
        ops.push(alu().dep(DepSpec::PrevLoad));
        for _ in 0..6 {
            ops.push(alu());
        }
    }
    ops.push(StaticOp::new(OpClass::Store(AddrPattern::Stream {
        stride: 8,
        region,
    })));
    ops.push(branch().dep(DepSpec::Dist(1)));
    AppSpec {
        name,
        phases: vec![Phase {
            ops,
            iterations: u64::MAX,
        }],
        branch_accuracy: accuracy,
    }
}

/// A pure serialized pointer chase in the lmbench `lat_mem_rd`
/// tradition: every load's address comes from the previous load, so
/// memory-level parallelism is exactly one and the core spends almost
/// the entire run stalled on a single outstanding DRAM access. Not
/// part of any paper figure or bundle — this is the latency
/// microbenchmark, and the reference workload for the event-driven
/// skip-ahead kernel (`BENCH_engine.json` `skip_ahead` block), whose
/// wins are largest exactly when the simulated machine is idle.
fn chase_kernel() -> AppSpec {
    let ops = vec![
        load(AddrPattern::Chase { region: 24 * MB }).dep(DepSpec::PrevLoad),
        alu().dep(DepSpec::PrevLoad),
        branch().dep(DepSpec::Dist(1)),
    ];
    AppSpec {
        name: "chase",
        phases: vec![Phase {
            ops,
            iterations: u64::MAX,
        }],
        branch_accuracy: 0.999,
    }
}

/// Looks up a single-threaded (multiprogrammed-bundle) app by name.
/// Returns `None` for unknown names.
pub fn multi_app(name: &str) -> Option<AppSpec> {
    let spec = match name {
        // Processor-sensitive.
        "ep" => processor_kernel("ep", 0.995, true),
        "crafty" => processor_kernel("crafty", 0.93, false),
        "mesa" => processor_kernel("mesa", 0.98, true),
        // Cache-sensitive.
        "ammp" => cache_kernel("ammp", 1_536 * KB, 0.98),
        "lu" => cache_kernel("lu", MB, 0.99),
        "vpr" => cache_kernel("vpr", 1_280 * KB, 0.95),
        "mgrid" => cache_kernel("mgrid", 2 * MB, 0.99),
        "parser" => cache_kernel("parser", MB, 0.94),
        "sp" => cache_kernel("sp", 2 * MB, 0.99),
        "art1" => cache_kernel("art1", 2_560 * KB, 0.99),
        // Memory-sensitive.
        "is" => memory_kernel("is", 16 * MB, false, 0.97),
        "mg1" => memory_kernel("mg1", 16 * MB, false, 0.99),
        "mcf" => memory_kernel("mcf", 24 * MB, true, 0.96),
        "twolf" => memory_kernel("twolf", 12 * MB, false, 0.95),
        // Latency microbenchmark (not in any bundle or figure).
        "chase" => chase_kernel(),
        _ => return None,
    };
    Some(spec)
}

/// Looks a bundle up by its Table 4 mnemonic.
pub fn bundle(name: &str) -> Option<Bundle> {
    BUNDLES.iter().copied().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppThread;
    use critmem_cpu::{InstrKind, InstrSource};

    #[test]
    fn all_multi_apps_exist_and_validate() {
        for name in MULTI_APPS {
            let spec = multi_app(name).unwrap_or_else(|| panic!("missing {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
            assert!(app_class(name).is_some(), "{name} has no class");
        }
    }

    #[test]
    fn chase_microbenchmark_is_a_serialized_pointer_chain() {
        let spec = multi_app("chase").expect("chase app exists");
        spec.validate().expect("chase validates");
        // Not part of the paper's Table 4 population.
        assert!(!MULTI_APPS.contains(&"chase"));
        // Exactly one load per iteration, and it depends on the
        // previous load — memory-level parallelism is pinned to one.
        let mut t = AppThread::new(&spec, 0, 7);
        let mut addrs = Vec::new();
        while addrs.len() < 8 {
            if let InstrKind::Load { addr } = t.next_instr().kind {
                addrs.push(addr);
            }
        }
        addrs.dedup();
        assert_eq!(
            addrs.len(),
            8,
            "chase must not repeat addresses back to back"
        );
    }

    #[test]
    fn bundles_reference_known_apps() {
        for b in BUNDLES {
            for app in b.apps {
                assert!(multi_app(app).is_some(), "{}: unknown app {app}", b.name);
            }
        }
        assert_eq!(bundle("RGTM").unwrap().apps[2], "twolf");
        assert!(bundle("XXXX").is_none());
    }

    #[test]
    fn table4_class_annotations() {
        // Spot-check against the paper's Table 4 letters.
        let classes = |b: &str| -> String {
            bundle(b)
                .unwrap()
                .apps
                .iter()
                .map(|a| app_class(a).unwrap().letter())
                .collect()
        };
        assert_eq!(classes("AELV"), "CPCC");
        assert_eq!(classes("CMLI"), "PPCM");
        assert_eq!(classes("GAMV"), "MCPC");
        assert_eq!(classes("GDPC"), "MCCP");
        assert_eq!(classes("GSMV"), "MCPC");
        assert_eq!(classes("RFEV"), "CMPC");
        assert_eq!(classes("RFGI"), "CMMM");
        assert_eq!(classes("RGTM"), "CMMP");
    }

    #[test]
    fn memory_apps_touch_far_more_lines_than_processor_apps() {
        let distinct_lines = |name: &str| -> usize {
            let spec = multi_app(name).unwrap();
            let mut t = AppThread::new(&spec, 0, 3);
            let mut lines = std::collections::HashSet::new();
            for _ in 0..20_000 {
                if let InstrKind::Load { addr } = t.next_instr().kind {
                    lines.insert(addr / 64);
                }
            }
            lines.len()
        };
        let mcf = distinct_lines("mcf");
        let crafty = distinct_lines("crafty");
        assert!(mcf > 4 * crafty, "mcf={mcf} crafty={crafty}");
    }
}
