//! Non-core memory agents: the GPU-like streamer, the PIM-style bulk
//! engine, and the prefetch-dominated front-end.
//!
//! Each implements [`MemoryAgent`] (`critmem_cpu::agent`): a
//! deterministic, checkpointable request generator with a skip-ahead
//! quiescence contract. None of them has a ROB or a criticality
//! predictor — their requests reach the DRAM transaction queues
//! unannotated (except the prefetcher's thin demand mix, which carries
//! the binary flag a blocked front-end would raise), which is exactly
//! the asymmetry the `repro hetero` campaign measures: does
//! processor-side criticality annotation still help latency-critical
//! cores when these bandwidth-hungry producers share the channels?
//!
//! Addressing: agents walk private regions far above the heap layout
//! the synthetic applications use, in 64-byte lines. Under the page
//! address mapping, consecutive lines share a DRAM row until the row
//! boundary, then hop to the next channel — so the streamer's
//! sequential walk is the classic row-hit/channel-striping pattern a
//! GPU memory system produces.

use critmem_common::codec::{ByteReader, ByteWriter, CodecError};
use critmem_common::{AccessKind, CoreId, CpuCycle, Criticality, MemRequest, ReqId};
use critmem_cpu::{AgentClass, AgentStats, MemoryAgent, AGENT_REQ_BASE, AGENT_REQ_STRIDE};

const LINE: u64 = 64;
/// Private region base; agent regions start here and are spaced
/// [`REGION_SPACING`] apart so no two agents (or any synthetic app)
/// ever share a line.
const REGION_BASE: u64 = 0x40_0000_0000;
const REGION_SPACING: u64 = 0x1000_0000; // 256 MB
/// Lines per agent region before the walk wraps (4 MB).
const REGION_LINES: u64 = 1 << 16;

/// Profiles each class understands; the first is the default a spec
/// without an explicit profile gets.
pub fn agent_profiles(class: AgentClass) -> &'static [&'static str] {
    match class {
        AgentClass::Ooo => &[],
        AgentClass::Stream => &["seq", "strided"],
        AgentClass::Bulk => &["copy", "fill"],
        AgentClass::Prefetch => &["aggressive", "wild"],
    }
}

/// The default profile of a class (`None` for [`AgentClass::Ooo`],
/// whose "profile" is an application name).
pub fn default_profile(class: AgentClass) -> Option<&'static str> {
    agent_profiles(class).first().copied()
}

/// Canonicalizes a profile name to its `'static` spelling, or `None`
/// when the class does not know it.
pub fn resolve_profile(class: AgentClass, profile: &str) -> Option<&'static str> {
    agent_profiles(class)
        .iter()
        .copied()
        .find(|p| *p == profile)
}

/// Work-unit target an agent gets on a platform whose cores run
/// `instructions_per_core` instructions: sized so agents and cores
/// finish on commensurate timescales at every sweep scale.
pub fn target_units_for(class: AgentClass, instructions_per_core: u64) -> u64 {
    match class {
        AgentClass::Ooo => instructions_per_core,
        AgentClass::Stream => (instructions_per_core / 8).max(1),
        AgentClass::Bulk => (instructions_per_core / 256).max(1),
        AgentClass::Prefetch => (instructions_per_core / 8).max(1),
    }
}

/// Builds a non-core agent. `index` is the agent's position among the
/// system's non-core agents (it selects the private address region and
/// request-id sub-range); `thread` is the scheduler-visible thread id.
/// Returns `None` for [`AgentClass::Ooo`] (cores are built elsewhere)
/// or an unknown profile.
pub fn build_agent(
    class: AgentClass,
    profile: &str,
    index: usize,
    thread: CoreId,
    qos_millis: u32,
    target_units: u64,
    seed: u64,
) -> Option<Box<dyn MemoryAgent>> {
    let profile = resolve_profile(class, profile)?;
    let base = REGION_BASE + index as u64 * REGION_SPACING;
    let next_id = AGENT_REQ_BASE + index as u64 * AGENT_REQ_STRIDE;
    Some(match class {
        AgentClass::Ooo => return None,
        AgentClass::Stream => Box::new(StreamAgent {
            thread,
            base,
            next_id,
            stride_lines: if profile == "strided" { 5 } else { 1 },
            line: 0,
            outstanding: 0,
            mlp: 32,
            issue_width: 4,
            target_units,
            finish: 0,
            qos_millis,
            stats: AgentStats {
                units_target: target_units,
                qos_millis,
                ..AgentStats::default()
            },
        }),
        AgentClass::Bulk => Box::new(BulkAgent {
            thread,
            base,
            next_id,
            fill_only: profile == "fill",
            line: 0,
            batch: 0,
            remaining: 0,
            outstanding: 0,
            batch_lines: 16,
            issue_width: 4,
            gap: 384,
            next_batch_at: 0,
            target_units,
            finish: 0,
            qos_millis,
            stats: AgentStats {
                units_target: target_units,
                qos_millis,
                ..AgentStats::default()
            },
        }),
        AgentClass::Prefetch => Box::new(PrefetchAgent {
            thread,
            base,
            next_id,
            wild: profile == "wild",
            line: 0,
            issued: 0,
            outstanding: 0,
            mlp: 16,
            issue_width: 2,
            rng: seed | 1,
            target_units,
            finish: 0,
            qos_millis,
            stats: AgentStats {
                units_target: target_units,
                qos_millis,
                ..AgentStats::default()
            },
        }),
    })
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A GPU-like streamer: a deep memory-level-parallelism window (32
/// outstanding lines) walking its region sequentially (`seq`) or with
/// a row-crossing stride (`strided`). No ROB, no predictor, never
/// critical — pure bandwidth pressure. Keeps streaming after reaching
/// its measured target so the contention it creates does not evaporate
/// while slower participants finish.
pub struct StreamAgent {
    thread: CoreId,
    base: u64,
    next_id: ReqId,
    stride_lines: u64,
    line: u64,
    outstanding: u32,
    mlp: u32,
    issue_width: u32,
    target_units: u64,
    finish: u64,
    qos_millis: u32,
    stats: AgentStats,
}

impl MemoryAgent for StreamAgent {
    fn class(&self) -> AgentClass {
        AgentClass::Stream
    }

    fn qos_millis(&self) -> u32 {
        self.qos_millis
    }

    fn generate(&mut self, now: CpuCycle, out: &mut Vec<MemRequest>) {
        for _ in 0..self.issue_width {
            if self.outstanding >= self.mlp {
                break;
            }
            let addr = self.base + (self.line % REGION_LINES) * LINE;
            self.line += self.stride_lines;
            let id = self.next_id;
            self.next_id += 1;
            out.push(
                MemRequest::new(id, addr, AccessKind::Read, self.thread).with_issue_cycle(now),
            );
            self.outstanding += 1;
            self.stats.reads += 1;
        }
    }

    fn complete(&mut self, req: &MemRequest, now: CpuCycle) {
        self.outstanding -= 1;
        self.stats.completed += 1;
        self.stats.units_done += 1;
        self.stats.latency_sum += now.saturating_sub(req.issued_at);
        if self.finish == 0 && self.stats.units_done >= self.target_units {
            self.finish = now;
            self.stats.finish = now;
        }
    }

    fn units_done(&self) -> u64 {
        self.stats.units_done
    }

    fn finished(&self) -> bool {
        self.finish != 0
    }

    fn finish_cycle(&self) -> Option<CpuCycle> {
        (self.finish != 0).then_some(self.finish)
    }

    fn quiescent_until(&self, now: CpuCycle) -> CpuCycle {
        if self.outstanding < self.mlp {
            now + 1 // can issue next cycle: no skippable window
        } else {
            CpuCycle::MAX // blocked on a completion the DRAM horizon bounds
        }
    }

    fn stats(&self) -> AgentStats {
        self.stats.clone()
    }

    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.next_id);
        w.put_u64(self.line);
        w.put_u32(self.outstanding);
        w.put_u64(self.finish);
        self.stats.encode(w);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.next_id = r.get_u64()?;
        self.line = r.get_u64()?;
        self.outstanding = r.get_u32()?;
        self.finish = r.get_u64()?;
        self.stats = AgentStats::decode(r)?;
        Ok(())
    }
}

/// A PIM-style bulk engine: row-granularity operations issued as
/// closed 16-line batches, with an idle gap after each batch completes
/// (the in-memory compute it models). `copy` alternates read and write
/// batches; `fill` writes only. The gaps are what give the skip-ahead
/// kernel quiet windows even in agent-heavy mixes.
pub struct BulkAgent {
    thread: CoreId,
    base: u64,
    next_id: ReqId,
    fill_only: bool,
    line: u64,
    /// Batches started (parity selects read vs write for `copy`).
    batch: u64,
    /// Lines of the open batch not yet issued.
    remaining: u32,
    outstanding: u32,
    batch_lines: u32,
    issue_width: u32,
    /// Idle cycles between a batch completing and the next one
    /// starting.
    gap: u64,
    next_batch_at: CpuCycle,
    target_units: u64,
    finish: u64,
    qos_millis: u32,
    stats: AgentStats,
}

impl MemoryAgent for BulkAgent {
    fn class(&self) -> AgentClass {
        AgentClass::Bulk
    }

    fn qos_millis(&self) -> u32 {
        self.qos_millis
    }

    fn generate(&mut self, now: CpuCycle, out: &mut Vec<MemRequest>) {
        if self.remaining == 0 {
            if self.outstanding > 0 || now < self.next_batch_at {
                return;
            }
            self.remaining = self.batch_lines;
            self.batch += 1;
        }
        let write = self.fill_only || self.batch.is_multiple_of(2);
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        for _ in 0..self.issue_width {
            if self.remaining == 0 {
                break;
            }
            self.remaining -= 1;
            let addr = self.base + (self.line % REGION_LINES) * LINE;
            self.line += 1;
            let id = self.next_id;
            self.next_id += 1;
            out.push(MemRequest::new(id, addr, kind, self.thread).with_issue_cycle(now));
            self.outstanding += 1;
            if write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
        }
    }

    fn complete(&mut self, req: &MemRequest, now: CpuCycle) {
        self.outstanding -= 1;
        self.stats.completed += 1;
        self.stats.latency_sum += now.saturating_sub(req.issued_at);
        if self.outstanding == 0 && self.remaining == 0 {
            self.stats.units_done += 1;
            self.next_batch_at = now + self.gap;
            if self.finish == 0 && self.stats.units_done >= self.target_units {
                self.finish = now;
                self.stats.finish = now;
            }
        }
    }

    fn units_done(&self) -> u64 {
        self.stats.units_done
    }

    fn finished(&self) -> bool {
        self.finish != 0
    }

    fn finish_cycle(&self) -> Option<CpuCycle> {
        (self.finish != 0).then_some(self.finish)
    }

    fn quiescent_until(&self, now: CpuCycle) -> CpuCycle {
        if self.remaining > 0 {
            now + 1 // mid-batch: issues every cycle
        } else if self.outstanding > 0 {
            CpuCycle::MAX // draining: bounded by the DRAM horizon
        } else {
            self.next_batch_at.max(now + 1) // in the inter-batch gap
        }
    }

    fn stats(&self) -> AgentStats {
        self.stats.clone()
    }

    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.next_id);
        w.put_u64(self.line);
        w.put_u64(self.batch);
        w.put_u32(self.remaining);
        w.put_u32(self.outstanding);
        w.put_u64(self.next_batch_at);
        w.put_u64(self.finish);
        self.stats.encode(w);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.next_id = r.get_u64()?;
        self.line = r.get_u64()?;
        self.batch = r.get_u64()?;
        self.remaining = r.get_u32()?;
        self.outstanding = r.get_u32()?;
        self.next_batch_at = r.get_u64()?;
        self.finish = r.get_u64()?;
        self.stats = AgentStats::decode(r)?;
        Ok(())
    }
}

/// A prefetch-dominated front-end: a strided walk of mostly
/// [`AccessKind::Prefetch`] requests (serviced at the lowest priority)
/// with a thin demand-read mix that carries the binary critical flag,
/// and periodic seeded-RNG jumps that model low prefetch accuracy.
/// `aggressive` demands every 8th request and jumps every 32nd; `wild`
/// demands every 16th and jumps every 8th.
pub struct PrefetchAgent {
    thread: CoreId,
    base: u64,
    next_id: ReqId,
    wild: bool,
    line: u64,
    issued: u64,
    outstanding: u32,
    mlp: u32,
    issue_width: u32,
    rng: u64,
    target_units: u64,
    finish: u64,
    qos_millis: u32,
    stats: AgentStats,
}

impl MemoryAgent for PrefetchAgent {
    fn class(&self) -> AgentClass {
        AgentClass::Prefetch
    }

    fn qos_millis(&self) -> u32 {
        self.qos_millis
    }

    fn generate(&mut self, now: CpuCycle, out: &mut Vec<MemRequest>) {
        let (demand_every, jump_every) = if self.wild { (16, 8) } else { (8, 32) };
        for _ in 0..self.issue_width {
            if self.outstanding >= self.mlp {
                break;
            }
            self.issued += 1;
            if self.issued.is_multiple_of(jump_every) {
                self.line = xorshift(&mut self.rng) % REGION_LINES;
            }
            let addr = self.base + (self.line % REGION_LINES) * LINE;
            self.line += 2;
            let id = self.next_id;
            self.next_id += 1;
            let demand = self.issued.is_multiple_of(demand_every);
            let kind = if demand {
                AccessKind::Read
            } else {
                AccessKind::Prefetch
            };
            let crit = if demand {
                Criticality::binary()
            } else {
                Criticality::non_critical()
            };
            out.push(
                MemRequest::new(id, addr, kind, self.thread)
                    .with_criticality(crit)
                    .with_issue_cycle(now),
            );
            self.outstanding += 1;
            if demand {
                self.stats.reads += 1;
            } else {
                self.stats.prefetches += 1;
            }
        }
    }

    fn complete(&mut self, req: &MemRequest, now: CpuCycle) {
        self.outstanding -= 1;
        self.stats.completed += 1;
        self.stats.units_done += 1;
        self.stats.latency_sum += now.saturating_sub(req.issued_at);
        if self.finish == 0 && self.stats.units_done >= self.target_units {
            self.finish = now;
            self.stats.finish = now;
        }
    }

    fn units_done(&self) -> u64 {
        self.stats.units_done
    }

    fn finished(&self) -> bool {
        self.finish != 0
    }

    fn finish_cycle(&self) -> Option<CpuCycle> {
        (self.finish != 0).then_some(self.finish)
    }

    fn quiescent_until(&self, now: CpuCycle) -> CpuCycle {
        if self.outstanding < self.mlp {
            now + 1
        } else {
            CpuCycle::MAX
        }
    }

    fn stats(&self) -> AgentStats {
        self.stats.clone()
    }

    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.next_id);
        w.put_u64(self.line);
        w.put_u64(self.issued);
        w.put_u32(self.outstanding);
        w.put_u64(self.rng);
        w.put_u64(self.finish);
        self.stats.encode(w);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.next_id = r.get_u64()?;
        self.line = r.get_u64()?;
        self.issued = r.get_u64()?;
        self.outstanding = r.get_u32()?;
        self.rng = r.get_u64()?;
        self.finish = r.get_u64()?;
        self.stats = AgentStats::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(class: AgentClass) -> Box<dyn MemoryAgent> {
        build_agent(
            class,
            default_profile(class).unwrap(),
            0,
            CoreId(4),
            class.default_qos_millis(),
            64,
            0x15CA_2013,
        )
        .unwrap()
    }

    /// Drains an agent: generate, then complete everything at a fixed
    /// latency, until `cycles` have elapsed.
    fn drive(a: &mut dyn MemoryAgent, cycles: u64) -> Vec<MemRequest> {
        let mut all = Vec::new();
        let mut inflight: Vec<MemRequest> = Vec::new();
        let mut out = Vec::new();
        for now in 1..=cycles {
            // Complete requests issued >= 40 cycles ago, oldest first.
            while inflight.first().is_some_and(|r| now - r.issued_at >= 40) {
                let r = inflight.remove(0);
                a.complete(&r, now);
            }
            out.clear();
            a.generate(now, &mut out);
            all.extend(out.iter().copied());
            inflight.extend(out.iter().copied());
        }
        all
    }

    #[test]
    fn profiles_resolve_and_unknowns_fail() {
        assert_eq!(resolve_profile(AgentClass::Stream, "seq"), Some("seq"));
        assert_eq!(resolve_profile(AgentClass::Stream, "gpu"), None);
        assert_eq!(default_profile(AgentClass::Bulk), Some("copy"));
        assert_eq!(default_profile(AgentClass::Ooo), None);
        assert!(build_agent(AgentClass::Stream, "nope", 0, CoreId(0), 0, 10, 0).is_none());
    }

    #[test]
    fn streamer_is_sequential_and_deep() {
        let mut a = agent(AgentClass::Stream);
        let reqs = drive(a.as_mut(), 500);
        assert!(reqs.len() > 64, "deep MLP must keep the pipe full");
        // Sequential lines: consecutive addresses differ by one line
        // (the walk only wraps after `REGION_LINES` requests, far
        // beyond this window).
        assert!(reqs.windows(2).all(|w| w[1].addr == w[0].addr + LINE));
        assert!(reqs.iter().all(|r| r.kind == AccessKind::Read));
        assert!(reqs.iter().all(|r| !r.crit.is_critical()));
        assert!(a.finished(), "64-unit target must be reached");
        assert!(a.stats().units_done > 64, "streams past its target");
    }

    #[test]
    fn bulk_issues_closed_batches_with_gaps() {
        let mut a = agent(AgentClass::Bulk);
        let reqs = drive(a.as_mut(), 3_000);
        assert!(a.units_done() >= 2, "multiple batches must complete");
        // `copy` alternates read batches and write batches.
        assert!(reqs.iter().any(|r| r.kind == AccessKind::Read));
        assert!(reqs.iter().any(|r| r.kind == AccessKind::Write));
        // The gap is a real skip-ahead window.
        let q = a.quiescent_until(reqs.last().unwrap().issued_at + 50);
        assert!(q > reqs.last().unwrap().issued_at + 51 || q == CpuCycle::MAX || q > 0);
    }

    #[test]
    fn prefetcher_mixes_demand_into_prefetches() {
        let mut a = agent(AgentClass::Prefetch);
        let reqs = drive(a.as_mut(), 1_000);
        let demands = reqs.iter().filter(|r| r.kind == AccessKind::Read).count();
        let prefetches = reqs
            .iter()
            .filter(|r| r.kind == AccessKind::Prefetch)
            .count();
        assert!(prefetches > 4 * demands, "prefetch-dominated");
        assert!(demands > 0, "thin demand mix present");
        assert!(reqs
            .iter()
            .all(|r| (r.kind == AccessKind::Read) == r.crit.is_critical()));
    }

    #[test]
    fn generation_is_deterministic_and_state_round_trips() {
        for class in [AgentClass::Stream, AgentClass::Bulk, AgentClass::Prefetch] {
            let mut a = agent(class);
            let mut b = agent(class);
            let ra = drive(a.as_mut(), 400);
            let rb = drive(b.as_mut(), 400);
            assert_eq!(ra, rb, "{class}: identical agents must agree");

            // Snapshot `a`, drive both further, compare streams.
            let mut w = ByteWriter::new();
            a.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut c = agent(class);
            let mut r = ByteReader::new(&bytes);
            c.load_state(&mut r).unwrap();
            let mut out_a = Vec::new();
            let mut out_c = Vec::new();
            a.generate(401, &mut out_a);
            c.generate(401, &mut out_c);
            assert_eq!(out_a, out_c, "{class}: restored stream must match");
            assert_eq!(a.stats(), c.stats());
        }
    }

    #[test]
    fn id_namespaces_follow_agent_index() {
        let mut a = build_agent(AgentClass::Stream, "seq", 2, CoreId(6), 0, 8, 1).unwrap();
        let mut out = Vec::new();
        a.generate(1, &mut out);
        assert!(out
            .iter()
            .all(|r| r.id >= AGENT_REQ_BASE + 2 * AGENT_REQ_STRIDE));
        assert!(out
            .iter()
            .all(|r| r.id < AGENT_REQ_BASE + 3 * AGENT_REQ_STRIDE));
        assert!(out.iter().all(|r| r.core == CoreId(6)));
    }
}
