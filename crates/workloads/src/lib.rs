//! Deterministic synthetic workload generators for the `critmem`
//! simulator.
//!
//! The paper evaluates nine memory-intensive parallel applications
//! (Table 2) and eight multiprogrammed SPEC/NAS bundles (Table 4).
//! Since those binaries cannot run here, this crate models each one as
//! a parameterized loop-template generator preserving the properties
//! the paper's mechanism depends on — see `parallel` and `multi` for
//! the per-app rationale and DESIGN.md for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use critmem_workloads::{parallel_app, AppThread, PARALLEL_APPS};
//! use critmem_cpu::InstrSource;
//!
//! assert_eq!(PARALLEL_APPS.len(), 9);
//! let spec = parallel_app("ocean").unwrap();
//! let mut thread3 = AppThread::new(&spec, 3, 0xC0FFEE);
//! let instr = thread3.next_instr();
//! assert!(instr.pc >= 0x1000);
//! ```

pub mod agents;
pub mod multi;
pub mod parallel;
pub mod spec;

pub use agents::{
    agent_profiles, build_agent, default_profile, resolve_profile, target_units_for, BulkAgent,
    PrefetchAgent, StreamAgent,
};
pub use multi::{app_class, bundle, multi_app, AppClass, Bundle, BUNDLES, MULTI_APPS};
pub use parallel::{parallel_app, PARALLEL_APPS};
pub use spec::{AddrPattern, AppSpec, AppThread, DepSpec, OpClass, Phase, StaticOp, SHARED_BASE};
