//! Synthetic stand-ins for the paper's nine memory-intensive parallel
//! applications (Table 2).
//!
//! Real SPLASH-2 / NAS-OMP / SPEC-OMP / NU-MineBench binaries cannot be
//! executed here, so each app is modeled by the traits that drive the
//! paper's results (substitution recorded in DESIGN.md): memory
//! footprint, row-buffer locality, dependence structure (pointer
//! chasing for `art`), static-load population, store fraction, branch
//! predictability, and data sharing. Every stream is deterministic
//! given (app, core, seed).
//!
//! Each loop body mixes three classes of data, as real numerical codes
//! do: *hot* arrays far larger than the L2 (unit-stride, so one load in
//! eight misses to DRAM), *warm* structures around the size of an L2
//! share, and *resident* scalars/tables that live in the L1. The hot
//! fraction is sized so the 8-core suite pressures — but does not
//! hopelessly saturate — the quad-channel DDR3 system, which is the
//! regime the paper's evaluation operates in.

use crate::spec::{AddrPattern, AppSpec, DepSpec, OpClass, Phase, StaticOp};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Names of the nine parallel applications, in the paper's order.
pub const PARALLEL_APPS: [&str; 9] = [
    "art", "cg", "equake", "fft", "mg", "ocean", "radix", "scalparc", "swim",
];

fn load(pat: AddrPattern) -> StaticOp {
    StaticOp::new(OpClass::Load(pat))
}

fn store(pat: AddrPattern) -> StaticOp {
    StaticOp::new(OpClass::Store(pat))
}

fn alu() -> StaticOp {
    StaticOp::new(OpClass::IntAlu)
}

fn fp() -> StaticOp {
    StaticOp::new(OpClass::FpAlu)
}

fn fpmul() -> StaticOp {
    StaticOp::new(OpClass::FpMul)
}

fn branch() -> StaticOp {
    StaticOp::new(OpClass::Branch)
}

/// A hot unit-stride stream load over a DRAM-sized array, with a
/// dependent consumer: misses to DRAM once every eight iterations.
/// Like most loads in real code (the paper measures ~85% single-
/// consumer), streaming values feed one operation.
#[allow(dead_code)] // kept alongside hot_group for single-stream app variants
fn hot_stream(ops: &mut Vec<StaticOp>, region: u64) {
    ops.push(load(AddrPattern::Stream { stride: 8, region }));
    ops.push(fp().dep(DepSpec::PrevLoad));
}

/// A *group* of `n` back-to-back independent hot stream loads over
/// distinct DRAM-sized arrays, with the consumers emitted after all
/// the loads. Because the loads are independent and unit-stride, their
/// DRAM misses arrive in aligned bursts: the oldest blocks the ROB
/// head while the rest complete in its shadow — the slack-rich miss
/// population the paper's mechanism exploits (only the burst leader
/// trains the CBP; the shadowed majority stays non-critical).
fn hot_group(ops: &mut Vec<StaticOp>, n: u16, region: u64) {
    for _ in 0..n {
        ops.push(load(AddrPattern::Stream { stride: 8, region }));
    }
    for k in 0..n {
        ops.push(fp().dep(DepSpec::Dist(n - k)));
    }
}

/// A warm load over an L2-share-sized structure, with one consumer.
fn warm_load(ops: &mut Vec<StaticOp>, region: u64) {
    ops.push(load(AddrPattern::Stream { stride: 8, region }));
    ops.push(fp().dep(DepSpec::PrevLoad));
}

/// An L1-resident table/scalar access: heavily consumed (3 direct
/// consumers), exactly the loads the CLPT flags — and exactly the
/// loads the memory scheduler never sees, because they hit in cache
/// (the paper's §5.3.3 "complementary load populations" explanation).
fn resident(ops: &mut Vec<StaticOp>) {
    ops.push(load(AddrPattern::Stream {
        stride: 8,
        region: 16 * KB,
    }));
    ops.push(alu().dep(DepSpec::PrevLoad));
    ops.push(alu().dep(DepSpec::Dist(2)));
    ops.push(alu().dep(DepSpec::Dist(3)));
}

/// Independent compute filler (instruction-level parallelism).
fn compute(ops: &mut Vec<StaticOp>, n: usize) {
    for i in 0..n {
        ops.push(if i % 3 == 0 {
            fpmul()
        } else if i % 3 == 1 {
            fp()
        } else {
            alu()
        });
    }
}

/// Looks up a parallel application spec by name. Returns `None` for
/// unknown names.
pub fn parallel_app(name: &str) -> Option<AppSpec> {
    let spec = match name {
        // SPEC-OMP art: self-organizing map over large dynamically
        // allocated neural nets addressed through two levels of
        // pointers — serialized dependent misses over the largest
        // footprint in the suite (§5.3.1), making it by far the most
        // memory-bound app.
        "art" => {
            // First-level pointer load, then the dependent second-level
            // load (the serial chase).
            let mut ops = vec![
                load(AddrPattern::Random { region: 12 * MB }),
                load(AddrPattern::Chase { region: 12 * MB }).dep(DepSpec::PrevLoad),
                fp().dep(DepSpec::PrevLoad),
                fpmul().dep(DepSpec::Dist(2)),
            ];
            // Weight vectors: cache-resident, unit stride.
            warm_load(&mut ops, 192 * KB);
            resident(&mut ops);
            resident(&mut ops);
            compute(&mut ops, 12);
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 128 * KB,
            }));
            ops.push(branch().dep(DepSpec::Dist(1)));
            AppSpec {
                name: "art",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.99,
            }
        }
        // NAS cg: sparse matrix-vector — index-array streams feeding
        // indirect gathers over the vector.
        "cg" => {
            let mut ops = Vec::new();
            hot_group(&mut ops, 2, 6 * MB); // matrix value arrays
            ops.push(load(AddrPattern::Stream {
                stride: 8,
                region: 6 * MB,
            })); // column indices
            ops.push(load(AddrPattern::Random { region: 2 * MB }).dep(DepSpec::PrevLoad)); // x[col]
            ops.push(fp().dep(DepSpec::PrevLoad));
            ops.push(fp().dep(DepSpec::Dist(1)));
            resident(&mut ops);
            resident(&mut ops);
            compute(&mut ops, 10);
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 512 * KB,
            }));
            ops.push(alu());
            ops.push(branch());
            AppSpec {
                name: "cg",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.985,
            }
        }
        // SPEC-OMP equake: unstructured-mesh earthquake model — mixed
        // streams and irregular accesses, fp heavy.
        "equake" => {
            let mut ops = Vec::new();
            hot_group(&mut ops, 2, 5 * MB);
            ops.push(load(AddrPattern::Random { region: 2 * MB }));
            ops.push(fpmul().dep(DepSpec::PrevLoad));
            ops.push(load(AddrPattern::SharedStream {
                stride: 8,
                region: MB,
            }));
            ops.push(fp().dep(DepSpec::PrevLoad));
            resident(&mut ops);
            resident(&mut ops);
            compute(&mut ops, 12);
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 2 * MB,
            }));
            ops.push(alu());
            ops.push(branch().dep(DepSpec::Dist(2)));
            AppSpec {
                name: "equake",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.98,
            }
        }
        // SPLASH-2 fft: a butterfly phase whose large power-of-two
        // stride opens a new row every access (poor row locality, bank
        // conflicts), alternating with a friendly streaming transpose.
        "fft" => {
            let mut butterfly = Vec::new();
            butterfly.push(load(AddrPattern::Stream {
                stride: 4 * KB,
                region: 4 * MB,
            }));
            butterfly.push(fpmul().dep(DepSpec::PrevLoad));
            hot_group(&mut butterfly, 2, 4 * MB);
            butterfly.push(fp().deps(DepSpec::Dist(2), DepSpec::Dist(4)));
            resident(&mut butterfly);
            resident(&mut butterfly);
            compute(&mut butterfly, 12);
            butterfly.push(store(AddrPattern::Stream {
                stride: 8,
                region: 4 * MB,
            }));
            butterfly.push(branch());
            let mut transpose = Vec::new();
            hot_group(&mut transpose, 3, 4 * MB);
            resident(&mut transpose);
            compute(&mut transpose, 12);
            transpose.push(store(AddrPattern::Stream {
                stride: 8,
                region: 4 * MB,
            }));
            transpose.push(branch());
            AppSpec {
                name: "fft",
                phases: vec![
                    Phase {
                        ops: butterfly,
                        iterations: 400,
                    },
                    Phase {
                        ops: transpose,
                        iterations: 400,
                    },
                ],
                branch_accuracy: 0.99,
            }
        }
        // NAS mg: multigrid — long unit-stride sweeps over several
        // grids at different scales, plus shared coarse-grid data.
        "mg" => {
            let mut ops = Vec::new();
            hot_group(&mut ops, 2, 8 * MB);
            ops.push(load(AddrPattern::SharedStream {
                stride: 8,
                region: 2 * MB,
            }));
            ops.push(fp().dep(DepSpec::PrevLoad));
            resident(&mut ops);
            resident(&mut ops);
            compute(&mut ops, 12);
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 4 * MB,
            }));
            ops.push(branch());
            AppSpec {
                name: "mg",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.99,
            }
        }
        // SPLASH-2 ocean: many-array stencil sweeps — by far the
        // largest static-load population in the suite (§5.3.1 notes
        // ~1,700 static critical loads). Most grid accesses are
        // unit-stride and warm; every sixth strides a full grid row.
        "ocean" => {
            let mut phases = Vec::new();
            for phase_idx in 0u64..3 {
                let mut ops = Vec::new();
                for g in 0..20 {
                    if g % 10 == 9 {
                        // Vertical neighbor: a grid row (2 KB) away —
                        // the DRAM-bound accesses of the stencil.
                        ops.push(load(AddrPattern::Stream {
                            stride: 2 * KB,
                            region: 4 * MB,
                        }));
                        ops.push(fp().dep(DepSpec::PrevLoad));
                    } else {
                        // Horizontal neighbors: same or adjacent line;
                        // per-array slices small enough that the whole
                        // stencil working set stays cache-resident.
                        warm_load(&mut ops, 16 * KB);
                        if g % 2 == 0 {
                            ops.push(fp().dep(DepSpec::Dist(1)));
                        }
                    }
                }
                compute(&mut ops, 10);
                ops.push(store(AddrPattern::Stream {
                    stride: 8,
                    region: 256 * KB,
                }));
                ops.push(alu());
                ops.push(branch().dep(DepSpec::Dist(1)));
                phases.push(Phase {
                    ops,
                    iterations: 300 + phase_idx * 100,
                });
            }
            AppSpec {
                name: "ocean",
                phases,
                branch_accuracy: 0.99,
            }
        }
        // SPLASH-2 radix: integer radix sort — sequential key reads,
        // L1-resident histogram updates, scattered permutation writes.
        "radix" => {
            let mut ops = Vec::new();
            hot_group(&mut ops, 2, 8 * MB); // key streams
            ops.push(alu().dep(DepSpec::Dist(1)));
            ops.push(load(AddrPattern::Random { region: 64 * KB })); // histogram
            ops.push(alu().dep(DepSpec::PrevLoad));
            resident(&mut ops);
            compute(&mut ops, 8);
            ops.push(store(AddrPattern::Random { region: 8 * MB })); // scatter
            ops.push(alu());
            ops.push(branch());
            AppSpec {
                name: "radix",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.97,
            }
        }
        // NU-MineBench scalparc: decision-tree induction — attribute
        // scans (streams) plus irregular node lookups over the shared
        // tree.
        "scalparc" => {
            let mut ops = Vec::new();
            hot_group(&mut ops, 2, 6 * MB);
            ops.push(load(AddrPattern::Random { region: MB }));
            ops.push(alu().dep(DepSpec::PrevLoad));
            ops.push(branch().dep(DepSpec::Dist(1)));
            ops.push(load(AddrPattern::SharedRandom { region: MB }));
            ops.push(alu().dep(DepSpec::PrevLoad));
            resident(&mut ops);
            compute(&mut ops, 10);
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 512 * KB,
            }));
            AppSpec {
                name: "scalparc",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.96,
            }
        }
        // SPEC-OMP swim: shallow-water model — textbook unit-stride fp
        // streaming over several large grids.
        "swim" => {
            let mut ops = Vec::new();
            hot_group(&mut ops, 4, 8 * MB);
            ops.push(fpmul().dep(DepSpec::Dist(2)));
            warm_load(&mut ops, 64 * KB);
            resident(&mut ops);
            compute(&mut ops, 14);
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 8 * MB,
            }));
            ops.push(store(AddrPattern::Stream {
                stride: 8,
                region: 256 * KB,
            }));
            ops.push(branch());
            AppSpec {
                name: "swim",
                phases: vec![Phase {
                    ops,
                    iterations: u64::MAX,
                }],
                branch_accuracy: 0.995,
            }
        }
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppThread;
    use critmem_cpu::{InstrKind, InstrSource};

    #[test]
    fn all_nine_apps_exist_and_validate() {
        for name in PARALLEL_APPS {
            let spec = parallel_app(name).unwrap_or_else(|| panic!("missing {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(parallel_app("doom").is_none());
    }

    #[test]
    fn apps_have_realistic_load_fractions() {
        for name in PARALLEL_APPS {
            let spec = parallel_app(name).unwrap();
            let mut t = AppThread::new(&spec, 0, 7);
            let loads = (0..10_000)
                .filter(|_| matches!(t.next_instr().kind, InstrKind::Load { .. }))
                .count();
            assert!(
                (1_500..5_000).contains(&loads),
                "{name}: {loads} loads per 10k instructions"
            );
        }
    }

    #[test]
    fn art_has_serial_chase_dependences() {
        let spec = parallel_app("art").unwrap();
        let mut t = AppThread::new(&spec, 0, 7);
        let mut found_chase = false;
        let mut prev_was_load = false;
        for _ in 0..100 {
            let i = t.next_instr();
            if matches!(i.kind, InstrKind::Load { .. }) && prev_was_load && i.src1 == Some(1) {
                found_chase = true;
            }
            prev_was_load = matches!(i.kind, InstrKind::Load { .. });
        }
        assert!(found_chase, "art must chain load->load dependences");
    }

    #[test]
    fn ocean_has_large_static_load_population() {
        let spec = parallel_app("ocean").unwrap();
        let others: usize = parallel_app("swim").unwrap().static_loads();
        assert!(
            spec.static_loads() > 2 * others,
            "ocean should have far more static loads ({} vs {})",
            spec.static_loads(),
            others
        );
    }

    #[test]
    fn distinct_cores_produce_distinct_private_streams() {
        let spec = parallel_app("swim").unwrap();
        let mut a = AppThread::new(&spec, 0, 7);
        let mut b = AppThread::new(&spec, 5, 7);
        let first_load = |t: &mut AppThread| loop {
            if let InstrKind::Load { addr } = t.next_instr().kind {
                break addr;
            }
        };
        assert_ne!(first_load(&mut a), first_load(&mut b));
    }
}
