//! The workload-specification machinery: loop templates of static
//! operations that unroll into deterministic dynamic instruction
//! streams.
//!
//! Each application is a set of *phases*; each phase is a loop body of
//! [`StaticOp`]s. Unrolling a phase produces recurring static PCs —
//! exactly the property the Commit Block Predictor exploits (§5.3.1 of
//! the paper: 10^5–10^7 dynamic critical loads stem from a few hundred
//! static instructions).
//!
//! Address behavior per static op is described by an [`AddrPattern`];
//! dataflow by [`DepSpec`] distances. Together with a per-(app, core)
//! seeded RNG this makes every stream fully deterministic.

use critmem_common::SmallRng;
use critmem_common::{Pc, PhysAddr};
use critmem_cpu::{Instr, InstrKind, InstrSource};

/// Private-region base address for a core: 4 GB apart so partitions
/// never collide.
pub fn core_base(core: usize) -> PhysAddr {
    0x1_0000_0000u64 * (core as u64 + 1)
}

/// Base of the region shared by all threads of a parallel app.
pub const SHARED_BASE: PhysAddr = 0x8000_0000;

/// How a static memory operation generates addresses across loop
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrPattern {
    /// Sequential walk: `base + (iter * stride) % region`, private to
    /// the core. Sixteen 64 B lines share a 1 KB DRAM row, so streams
    /// are row-buffer friendly and prefetchable.
    Stream {
        /// Step in bytes per iteration.
        stride: u64,
        /// Region size in bytes (wraps around).
        region: u64,
    },
    /// Uniform-random line within a private region (scatter/gather).
    Random {
        /// Region size in bytes.
        region: u64,
    },
    /// Pointer chase: random address *and* a serial dependence on the
    /// previous load (art's double-indirect neural nets).
    Chase {
        /// Region size in bytes.
        region: u64,
    },
    /// Sequential walk in the region shared by all threads.
    SharedStream {
        /// Step in bytes per iteration.
        stride: u64,
        /// Region size in bytes.
        region: u64,
    },
    /// Random line in the shared region.
    SharedRandom {
        /// Region size in bytes.
        region: u64,
    },
}

/// Dataflow of a static operation's source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DepSpec {
    /// No register dependence.
    #[default]
    None,
    /// Depends on the instruction `n` back in the dynamic stream.
    Dist(u16),
    /// Depends on the most recently emitted load (serializing chases).
    PrevLoad,
}

/// Operation class of a static op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Integer ALU.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Conditional branch (misprediction drawn from the app's accuracy).
    Branch,
    /// Load with the given address pattern.
    Load(AddrPattern),
    /// Store with the given address pattern.
    Store(AddrPattern),
}

/// One static instruction in a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticOp {
    /// Operation class.
    pub class: OpClass,
    /// First source operand.
    pub dep1: DepSpec,
    /// Second source operand.
    pub dep2: DepSpec,
}

impl StaticOp {
    /// A dependency-free op.
    pub fn new(class: OpClass) -> Self {
        StaticOp {
            class,
            dep1: DepSpec::None,
            dep2: DepSpec::None,
        }
    }

    /// Sets the first dependence (builder style).
    #[must_use]
    pub fn dep(mut self, d: DepSpec) -> Self {
        self.dep1 = d;
        self
    }

    /// Sets both dependences (builder style).
    #[must_use]
    pub fn deps(mut self, d1: DepSpec, d2: DepSpec) -> Self {
        self.dep1 = d1;
        self.dep2 = d2;
        self
    }
}

/// A loop: its body plus how many iterations run before the app moves
/// to the next phase (round-robin).
#[derive(Debug, Clone)]
pub struct Phase {
    /// The loop body.
    pub ops: Vec<StaticOp>,
    /// Iterations before switching to the next phase.
    pub iterations: u64,
}

/// A complete application specification.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Benchmark name as in the paper's tables.
    pub name: &'static str,
    /// Loop phases, visited round-robin.
    pub phases: Vec<Phase>,
    /// Branch-predictor accuracy (Alpha 21264-class).
    pub branch_accuracy: f64,
}

impl AppSpec {
    /// Number of static load instructions across all phases.
    pub fn static_loads(&self) -> usize {
        self.phases
            .iter()
            .map(|p| {
                p.ops
                    .iter()
                    .filter(|o| matches!(o.class, OpClass::Load(_)))
                    .count()
            })
            .sum()
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (empty phases,
    /// zero regions, out-of-range accuracy).
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("{}: no phases", self.name));
        }
        if !(0.5..=1.0).contains(&self.branch_accuracy) {
            return Err(format!(
                "{}: branch accuracy {} out of range",
                self.name, self.branch_accuracy
            ));
        }
        for (pi, p) in self.phases.iter().enumerate() {
            if p.ops.is_empty() || p.iterations == 0 {
                return Err(format!("{}: phase {pi} empty", self.name));
            }
            for op in &p.ops {
                let region = match op.class {
                    OpClass::Load(pat) | OpClass::Store(pat) => match pat {
                        AddrPattern::Stream { region, .. }
                        | AddrPattern::Random { region }
                        | AddrPattern::Chase { region }
                        | AddrPattern::SharedStream { region, .. }
                        | AddrPattern::SharedRandom { region } => Some(region),
                    },
                    _ => None,
                };
                if let Some(r) = region {
                    if r == 0 {
                        return Err(format!("{}: zero-sized region in phase {pi}", self.name));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One thread of an application, unrolled on demand — implements
/// [`InstrSource`] for a [`critmem_cpu::Core`].
///
/// # Examples
///
/// ```
/// use critmem_workloads::{parallel_app, AppThread};
/// use critmem_cpu::InstrSource;
///
/// let spec = parallel_app("fft").unwrap();
/// let mut t0 = AppThread::new(&spec, 0, 42);
/// let mut t0b = AppThread::new(&spec, 0, 42);
/// // Deterministic: two identically-seeded threads emit the same stream.
/// for _ in 0..1000 {
///     assert_eq!(t0.next_instr(), t0b.next_instr());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct AppThread {
    spec: AppSpec,
    core: usize,
    rng: SmallRng,
    phase: usize,
    iter_in_phase: u64,
    global_iter: u64,
    op_idx: usize,
    /// Dynamic instructions since the last emitted load.
    since_load: u16,
    /// Per-phase PC bases keep static PCs distinct across phases.
    phase_pc_base: Vec<Pc>,
    /// Per-phase private-region base offsets.
    phase_addr_base: Vec<PhysAddr>,
}

impl AppThread {
    /// Instantiates thread `core` of `spec` with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`AppSpec::validate`].
    pub fn new(spec: &AppSpec, core: usize, seed: u64) -> Self {
        spec.validate().expect("invalid app spec");
        let mut pc = 0x1000u64;
        let mut phase_pc_base = Vec::new();
        let mut phase_addr_base = Vec::new();
        let mut addr_off = 0u64;
        for p in &spec.phases {
            phase_pc_base.push(pc);
            pc += (p.ops.len() as u64) * 4 + 64;
            phase_addr_base.push(addr_off);
            // Give each phase its own address neighborhood, spaced by
            // the largest region any of its ops uses.
            let max_region: u64 = p
                .ops
                .iter()
                .filter_map(|o| match o.class {
                    OpClass::Load(pat) | OpClass::Store(pat) => match pat {
                        AddrPattern::Stream { region, .. }
                        | AddrPattern::Random { region }
                        | AddrPattern::Chase { region } => Some(region),
                        _ => None,
                    },
                    _ => None,
                })
                .max()
                .unwrap_or(4096);
            addr_off += max_region * p.ops.len() as u64;
        }
        let mix = (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
        AppThread {
            spec: spec.clone(),
            core,
            rng: SmallRng::seed_from_u64(mix),
            phase: 0,
            iter_in_phase: 0,
            global_iter: 0,
            op_idx: 0,
            since_load: u16::MAX,
            phase_pc_base,
            phase_addr_base,
        }
    }

    /// The app name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    fn op_addr(&mut self, op_idx: usize, pattern: AddrPattern) -> PhysAddr {
        let iter = self.global_iter;
        let align = |a: u64| a & !7;
        match pattern {
            AddrPattern::Stream { stride, region } => {
                let base = core_base(self.core)
                    + self.phase_addr_base[self.phase]
                    + op_idx as u64 * region;
                base + (iter * stride) % region
            }
            AddrPattern::Random { region } => {
                let base = core_base(self.core)
                    + self.phase_addr_base[self.phase]
                    + op_idx as u64 * region;
                base + align(self.rng.gen_range(0..region))
            }
            AddrPattern::Chase { region } => {
                let base = core_base(self.core)
                    + self.phase_addr_base[self.phase]
                    + op_idx as u64 * region;
                base + align(self.rng.gen_range(0..region))
            }
            AddrPattern::SharedStream { stride, region } => {
                SHARED_BASE + op_idx as u64 * region + (iter * stride) % region
            }
            AddrPattern::SharedRandom { region } => {
                SHARED_BASE + op_idx as u64 * region + align(self.rng.gen_range(0..region))
            }
        }
    }

    fn resolve_dep(&self, d: DepSpec) -> Option<u16> {
        match d {
            DepSpec::None => None,
            DepSpec::Dist(n) => Some(n),
            DepSpec::PrevLoad => {
                if self.since_load == u16::MAX {
                    None
                } else {
                    Some(self.since_load + 1)
                }
            }
        }
    }
}

impl InstrSource for AppThread {
    fn next_instr(&mut self) -> Instr {
        let op = self.spec.phases[self.phase].ops[self.op_idx];
        let pc = self.phase_pc_base[self.phase] + self.op_idx as u64 * 4;
        let src1 = self.resolve_dep(op.dep1);
        let src2 = self.resolve_dep(op.dep2);
        let kind = match op.class {
            OpClass::IntAlu => InstrKind::IntAlu,
            OpClass::IntMul => InstrKind::IntMul,
            OpClass::FpAlu => InstrKind::FpAlu,
            OpClass::FpMul => InstrKind::FpMul,
            OpClass::Branch => InstrKind::Branch {
                mispredict: self.rng.gen_f64() > self.spec.branch_accuracy,
            },
            OpClass::Load(pat) => InstrKind::Load {
                addr: self.op_addr(self.op_idx, pat),
            },
            OpClass::Store(pat) => InstrKind::Store {
                addr: self.op_addr(self.op_idx, pat),
            },
        };
        // Track distance to the previous load for `PrevLoad` deps.
        if matches!(kind, InstrKind::Load { .. }) {
            self.since_load = 0;
        } else if self.since_load != u16::MAX {
            self.since_load = self.since_load.saturating_add(1);
        }
        // Advance the loop cursor.
        self.op_idx += 1;
        if self.op_idx == self.spec.phases[self.phase].ops.len() {
            self.op_idx = 0;
            self.iter_in_phase += 1;
            self.global_iter += 1;
            if self.iter_in_phase >= self.spec.phases[self.phase].iterations {
                self.iter_in_phase = 0;
                self.phase = (self.phase + 1) % self.spec.phases.len();
            }
        }
        Instr {
            pc,
            kind,
            src1,
            src2,
        }
    }

    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        critmem_common::Snapshot::save_state(&self.rng, w);
        w.put_u64(self.phase as u64);
        w.put_u64(self.iter_in_phase);
        w.put_u64(self.global_iter);
        w.put_u64(self.op_idx as u64);
        w.put_u32(u32::from(self.since_load));
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        critmem_common::Snapshot::load_state(&mut self.rng, r)?;
        let phase = r.get_u64()? as usize;
        if phase >= self.spec.phases.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot phase {phase} out of range for spec with {} phases",
                    self.spec.phases.len()
                ),
                offset: r.position(),
            });
        }
        self.phase = phase;
        self.iter_in_phase = r.get_u64()?;
        self.global_iter = r.get_u64()?;
        self.op_idx = r.get_u64()? as usize;
        self.since_load = r.get_u32()? as u16;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> AppSpec {
        AppSpec {
            name: "tiny",
            phases: vec![Phase {
                ops: vec![
                    StaticOp::new(OpClass::Load(AddrPattern::Stream {
                        stride: 64,
                        region: 1 << 20,
                    })),
                    StaticOp::new(OpClass::IntAlu).dep(DepSpec::PrevLoad),
                    StaticOp::new(OpClass::Branch),
                ],
                iterations: 10,
            }],
            branch_accuracy: 1.0,
        }
    }

    #[test]
    fn static_pcs_recur_across_iterations() {
        let spec = tiny_spec();
        let mut t = AppThread::new(&spec, 0, 1);
        let first: Vec<Pc> = (0..3).map(|_| t.next_instr().pc).collect();
        let second: Vec<Pc> = (0..3).map(|_| t.next_instr().pc).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn stream_addresses_advance_by_stride() {
        let spec = tiny_spec();
        let mut t = AppThread::new(&spec, 0, 1);
        let mut loads = Vec::new();
        for _ in 0..9 {
            if let InstrKind::Load { addr } = t.next_instr().kind {
                loads.push(addr);
            }
        }
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[1] - loads[0], 64);
        assert_eq!(loads[2] - loads[1], 64);
    }

    #[test]
    fn prev_load_dep_resolves_to_distance_one_consumer() {
        let spec = tiny_spec();
        let mut t = AppThread::new(&spec, 0, 1);
        let _load = t.next_instr();
        let alu = t.next_instr();
        assert_eq!(
            alu.src1,
            Some(1),
            "ALU immediately after load depends on it"
        );
    }

    #[test]
    fn cores_get_disjoint_private_regions() {
        let spec = tiny_spec();
        let mut a = AppThread::new(&spec, 0, 1);
        let mut b = AppThread::new(&spec, 1, 1);
        let addr_a = loop {
            if let InstrKind::Load { addr } = a.next_instr().kind {
                break addr;
            }
        };
        let addr_b = loop {
            if let InstrKind::Load { addr } = b.next_instr().kind {
                break addr;
            }
        };
        assert_ne!(addr_a >> 32, addr_b >> 32);
    }

    #[test]
    fn shared_pattern_is_common_across_cores() {
        let spec = AppSpec {
            name: "shared",
            phases: vec![Phase {
                ops: vec![StaticOp::new(OpClass::Load(AddrPattern::SharedStream {
                    stride: 64,
                    region: 1 << 16,
                }))],
                iterations: 5,
            }],
            branch_accuracy: 1.0,
        };
        let mut a = AppThread::new(&spec, 0, 1);
        let mut b = AppThread::new(&spec, 3, 9);
        let ia = a.next_instr();
        let ib = b.next_instr();
        match (ia.kind, ib.kind) {
            (InstrKind::Load { addr: x }, InstrKind::Load { addr: y }) => assert_eq!(x, y),
            other => panic!("expected loads, got {other:?}"),
        }
    }

    #[test]
    fn phases_rotate() {
        let spec = AppSpec {
            name: "two-phase",
            phases: vec![
                Phase {
                    ops: vec![StaticOp::new(OpClass::IntAlu)],
                    iterations: 2,
                },
                Phase {
                    ops: vec![StaticOp::new(OpClass::FpAlu)],
                    iterations: 1,
                },
            ],
            branch_accuracy: 1.0,
        };
        let mut t = AppThread::new(&spec, 0, 1);
        let kinds: Vec<InstrKind> = (0..6).map(|_| t.next_instr().kind).collect();
        assert_eq!(
            kinds,
            vec![
                InstrKind::IntAlu,
                InstrKind::IntAlu,
                InstrKind::FpAlu,
                InstrKind::IntAlu,
                InstrKind::IntAlu,
                InstrKind::FpAlu,
            ]
        );
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = tiny_spec();
        s.branch_accuracy = 0.2;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.phases.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.phases[0].ops[0] = StaticOp::new(OpClass::Load(AddrPattern::Random { region: 0 }));
        assert!(s.validate().is_err());
    }
}
