//! Lightweight statistics primitives used throughout the evaluation:
//! event counters, running means, and fixed-bucket histograms.
//!
//! These are deliberately simple — the simulator's hot loops increment
//! them billions of times, so every operation is a handful of integer
//! instructions.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use critmem_common::Counter;
/// let mut loads = Counter::new("loads");
/// loads.add(3);
/// loads.inc();
/// assert_eq!(loads.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// An online mean over `u64` samples (e.g. per-request latencies).
///
/// Stores sum and count; exact for the magnitudes the simulator
/// produces (sums stay far below 2^64).
///
/// # Examples
///
/// ```
/// use critmem_common::RunningMean;
/// let mut m = RunningMean::default();
/// m.record(10);
/// m.record(20);
/// assert_eq!(m.mean(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunningMean {
    sum: u64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.sum += sample;
        self.count += 1;
    }

    /// The mean, or `None` before any sample was recorded.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Total of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another mean into this one (e.g. across cores).
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.sum);
        w.put_u64(self.count);
    }

    /// Deserializes a journaled mean.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(RunningMean {
            sum: r.get_u64()?,
            count: r.get_u64()?,
        })
    }
}

/// A histogram over power-of-two buckets: bucket *i* holds samples in
/// `[2^i, 2^(i+1))`, with bucket 0 holding 0 and 1.
///
/// Used for stall-time and latency distributions (Table 5 derives
/// counter bit-widths from the maximum observed values, which the
/// histogram also tracks exactly).
///
/// # Examples
///
/// ```
/// use critmem_common::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(13_475);
/// assert_eq!(h.max(), Some(13_475));
/// assert_eq!(h.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let bucket = if sample < 2 {
            0
        } else {
            63 - sample.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
        self.min = self.min.min(sample);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample, or `None` if empty.
    #[inline]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Smallest sample, or `None` if empty.
    #[inline]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Mean of all samples, or `None` if empty.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts (bucket *i* covers `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// The number of bits needed to store the largest observed value —
    /// the paper's Table 5 "Width" column.
    pub fn required_bits(&self) -> u32 {
        match self.max() {
            None | Some(0) => 1,
            Some(m) => 64 - m.leading_zeros(),
        }
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64_seq(&self.buckets);
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.max);
        w.put_u64(self.min);
    }

    /// Deserializes a journaled histogram.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream or a bucket count other than 64.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_u64_seq()?;
        let buckets: [u64; 64] = raw.try_into().map_err(|v: Vec<u64>| CodecError {
            message: format!("histogram with {} buckets (expected 64)", v.len()),
            offset: r.position(),
        })?;
        Ok(Histogram {
            buckets,
            count: r.get_u64()?,
            sum: r.get_u64()?,
            max: r.get_u64()?,
            min: r.get_u64()?,
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "x = 10");
    }

    #[test]
    fn running_mean_empty_is_none() {
        assert_eq!(RunningMean::new().mean(), None);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        let mut b = RunningMean::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.mean(), Some(20.0));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.buckets()[0], 2); // 0, 1
        assert_eq!(h.buckets()[1], 2); // 2, 3
        assert_eq!(h.buckets()[2], 1); // 4
    }

    #[test]
    fn histogram_required_bits_matches_paper_table5() {
        // Paper Table 5: max 13,475 -> 14 bits; 1,975,691 -> 21 bits;
        // 112,753,587 -> 27 bits.
        for (max, bits) in [
            (13_475u64, 14u32),
            (1_975_691, 21),
            (112_753_587, 27),
            (1, 1),
        ] {
            let mut h = Histogram::new();
            h.record(max);
            assert_eq!(h.required_bits(), bits, "max = {max}");
        }
    }

    #[test]
    fn histogram_empty_stats() {
        let h = Histogram::new();
        assert_eq!(h.max(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.required_bits(), 1);
    }

    fn random_samples(
        rng: &mut crate::SmallRng,
        bound: u64,
        min_len: u64,
        max_len: u64,
    ) -> Vec<u64> {
        let n = rng.gen_range(min_len..max_len);
        (0..n).map(|_| rng.gen_range(0..bound)).collect()
    }

    /// Seeded property sweep: recording never loses samples.
    #[test]
    fn histogram_total_preserved() {
        let mut rng = crate::SmallRng::seed_from_u64(0x4157);
        for _ in 0..64 {
            let samples = random_samples(&mut rng, 1_000_000, 0, 200);
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            assert_eq!(h.count(), samples.len() as u64);
            if let Some(max) = samples.iter().max() {
                assert_eq!(h.max(), Some(*max));
            }
            let bucket_total: u64 = h.buckets().iter().sum();
            assert_eq!(bucket_total, samples.len() as u64);
        }
    }

    /// Seeded property sweep: merge behaves like recording both sample
    /// sets into one histogram.
    #[test]
    fn merge_is_sum() {
        let mut rng = crate::SmallRng::seed_from_u64(0x6E12);
        for _ in 0..64 {
            let xs = random_samples(&mut rng, 10_000, 1, 50);
            let ys = random_samples(&mut rng, 10_000, 1, 50);
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for &x in &xs {
                a.record(x);
            }
            for &y in &ys {
                b.record(y);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            assert_eq!(merged.count(), a.count() + b.count());
            let expect_max = a.max().unwrap().max(b.max().unwrap());
            assert_eq!(merged.max(), Some(expect_max));
        }
    }
}
