//! A small, fast, deterministic PRNG for the simulator.
//!
//! The workspace is built in hermetic (offline) environments, so it
//! carries no external `rand` dependency. This module provides the one
//! generator the simulator needs: **xoshiro256++** seeded through a
//! SplitMix64 expansion — the same construction the `rand` crate uses
//! for its `SmallRng` on 64-bit targets. It is not cryptographically
//! secure and does not need to be: every use in the simulator (TCM's
//! rank shuffling, MORSE's ε-greedy exploration, the synthetic workload
//! address streams) only requires determinism per seed and good
//! statistical spread.
//!
//! # Examples
//!
//! ```
//! use critmem_common::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::Range;

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the full state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// Uses Lemire's widening-multiply rejection method, so the result
    /// is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        // Power-of-two spans (including the full u64 span wrapping to
        // 0) need no rejection.
        if span & span.wrapping_sub(1) == 0 {
            return range.start + (self.next_u64() & span.wrapping_sub(1));
        }
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(v) * u128::from(span);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo <= zone {
                return range.start + hi;
            }
        }
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range_usize(0..i + 1);
            xs.swap(i, j);
        }
    }
}

impl crate::codec::Snapshot for SmallRng {
    fn save_state(&self, w: &mut crate::codec::ByteWriter) {
        for &word in &self.s {
            w.put_u64(word);
        }
    }

    fn load_state(
        &mut self,
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        for word in &mut self.s {
            *word = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(124);
        let differs = (0..10).any(|_| a.next_u64() != c.next_u64());
        assert!(differs, "adjacent seeds must decorrelate");
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values in a small range should appear"
        );
    }

    #[test]
    fn gen_range_handles_power_of_two_spans() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = r.gen_range(0..16);
            assert!(v < 16);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let _ = SmallRng::seed_from_u64(0).gen_range(3..3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(77);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // Overwhelmingly unlikely to be identity.
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }
}
