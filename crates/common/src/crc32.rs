//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte slices.
//!
//! Used to guard on-disk artifacts against silent corruption: the CMTR
//! trace format checksums its record chunks and the sweep journal
//! frames every entry with a CRC, so a bit flip or a torn write is
//! detected at load time instead of surfacing as a wrong experiment
//! number hours later. Table-driven, dependency-free, and fast enough
//! for the multi-megabyte artifacts the harness produces.
//!
//! # Examples
//!
//! ```
//! use critmem_common::crc32;
//! assert_eq!(crc32::checksum(b"123456789"), 0xCBF4_3926); // the standard check value
//! assert_ne!(crc32::checksum(b"123456789"), crc32::checksum(b"123456788"));
//! ```

/// Reversed representation of the IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// An incremental CRC-32 accumulator for streamed data.
///
/// # Examples
///
/// ```
/// use critmem_common::crc32::{checksum, Crc32};
/// let mut crc = Crc32::new();
/// crc.update(b"hello ");
/// crc.update(b"world");
/// assert_eq!(crc.finish(), checksum(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u16..1500).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 7, 750, 1499, 1500] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), checksum(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut rng = crate::SmallRng::seed_from_u64(0xC12C);
        let data: Vec<u8> = (0..256).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let clean = checksum(&data);
        for _ in 0..64 {
            let byte = rng.gen_range(0..data.len() as u64) as usize;
            let bit = rng.gen_range(0..8) as u8;
            let mut flipped = data.clone();
            flipped[byte] ^= 1 << bit;
            assert_ne!(checksum(&flipped), clean, "flip at {byte}:{bit} undetected");
        }
    }
}
