//! Strongly-typed identifiers for the hardware structures in the
//! simulated CMP + DDR3 system.
//!
//! Newtypes (rather than bare `usize`s) keep a channel index from being
//! confused with a rank or bank index when they travel together through
//! the DRAM address-mapping and timing code.

use std::fmt;

/// Identifies one of the processor cores in the CMP (0-based).
///
/// # Examples
///
/// ```
/// use critmem_common::CoreId;
/// let c = CoreId(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "core3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Returns the zero-based index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies a hardware thread. The simulated cores are single-threaded,
/// so threads map 1:1 onto cores, but schedulers such as TCM and PAR-BS
/// reason in terms of threads, so the distinction is kept in the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Returns the zero-based index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<CoreId> for ThreadId {
    fn from(c: CoreId) -> Self {
        ThreadId(c.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a DRAM channel (the paper's system has four, two for the
/// multiprogrammed configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub u8);

impl ChannelId {
    /// Returns the zero-based index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Identifies a rank within a channel (quad-rank DIMMs in the paper's
/// baseline; Figure 8 sweeps 1/2/4 ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RankId(pub u8);

impl RankId {
    /// Returns the zero-based index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Identifies a bank within a rank (eight per rank for DDR3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u8);

impl BankId {
    /// Returns the zero-based index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(CoreId(7).index(), 7);
        assert_eq!(ThreadId(5).index(), 5);
        assert_eq!(ChannelId(3).index(), 3);
        assert_eq!(RankId(2).index(), 2);
        assert_eq!(BankId(6).index(), 6);
    }

    #[test]
    fn thread_from_core() {
        assert_eq!(ThreadId::from(CoreId(4)), ThreadId(4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CoreId(0).to_string(), "core0");
        assert_eq!(ChannelId(1).to_string(), "ch1");
        assert_eq!(RankId(2).to_string(), "rank2");
        assert_eq!(BankId(3).to_string(), "bank3");
        assert_eq!(ThreadId(4).to_string(), "t4");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CoreId(1) < CoreId(2));
        assert!(BankId(0) < BankId(7));
    }
}
