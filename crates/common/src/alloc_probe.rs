//! A counting wrapper around the system allocator, for regression
//! tests that assert a hot path performs no heap allocation.
//!
//! Install it as the `#[global_allocator]` of a dedicated integration
//! test binary (one test per binary, so no concurrent test thread can
//! perturb the counts), warm the code under test to steady state, then
//! [`CountingAllocator::reset`] and assert
//! [`CountingAllocator::allocations`] stays at zero:
//!
//! ```ignore
//! use critmem_common::alloc_probe::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! #[test]
//! fn steady_state_is_allocation_free() {
//!     warm_up();
//!     ALLOC.reset();
//!     hot_loop();
//!     assert_eq!(ALLOC.allocations(), 0);
//! }
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Delegates to [`System`] while counting every allocation event
/// (`alloc`, `realloc`) and the bytes they request.
pub struct CountingAllocator {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter (const, so it can back a `static`).
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Allocation events (alloc + realloc calls) since the last reset.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::SeqCst)
    }

    /// Bytes requested by those events since the last reset.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.allocations.store(0, Ordering::SeqCst);
        self.bytes.store(0, Ordering::SeqCst);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the counters are side metadata
// and never affect the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(layout.size() as u64, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(new_size as u64, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
