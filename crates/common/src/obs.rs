//! Unified observability layer: a per-component metrics registry, a
//! cycle-sampled time series, and JSONL/CSV export.
//!
//! Every simulated component — CPU cores, the cache hierarchy and its
//! MSHRs, the criticality predictors, the DRAM channel controllers and
//! their schedulers — maintains plain counter fields on its hot paths
//! (a handful of integer adds per event; see [`crate::stats`]). This
//! module is the *pull side*: it gives those scattered counters one
//! coherent, documented surface.
//!
//! The design is a two-pass visitor:
//!
//! 1. **Registration** (once, at system construction): each component
//!    walks its metrics through a [`MetricVisitor`], producing a
//!    [`Schema`] — an ordered list of `(component, name, kind, unit)`
//!    definitions. Registration is the only pass that allocates.
//! 2. **Sampling** (every *epoch* cycles): the same walk runs again
//!    with a row-writing visitor that appends one `f64` per registered
//!    metric to the in-memory [`SeriesSet`]. Because registration and
//!    sampling share one `observe` function per component
//!    ([`Observable::observe`]), the schema and the rows cannot drift
//!    apart.
//!
//! Nothing here runs on the per-cycle tick path: components keep
//! incrementing their own fields, and the DRAM controller's
//! allocation-free `tick_into` guarantee (enforced by
//! `crates/dram/tests/tick_alloc.rs`) is untouched. Sampling cost is
//! `O(metrics)` every epoch, amortized to nothing.
//!
//! The exported formats are documented in DESIGN.md §6e and validated
//! by a serialize → parse → compare round-trip test.
//!
//! # Examples
//!
//! ```
//! use critmem_common::obs::{MetricVisitor, Observable, Sampler, Schema};
//!
//! struct Widget { pulls: u64 }
//! impl Observable for Widget {
//!     fn observe(&self, v: &mut dyn MetricVisitor) {
//!         v.counter("pulls", "events", self.pulls);
//!         v.gauge("pull_rate", "events/cycle", self.pulls as f64 / 100.0);
//!     }
//! }
//!
//! let w = Widget { pulls: 42 };
//! let schema = Schema::build(|v| {
//!     v.component("widget");
//!     w.observe(v);
//! });
//! let mut sampler = Sampler::new(schema, 100);
//! assert!(sampler.due(100));
//! sampler.sample(100, |v| {
//!     v.component("widget");
//!     w.observe(v);
//! });
//! let series = sampler.into_series();
//! assert_eq!(series.len(), 1);
//! assert_eq!(series.value(0, "widget.pulls"), Some(42.0));
//! ```

use std::fmt::Write as _;

/// Whether a metric is a monotonically non-decreasing count or an
/// instantaneous/derived reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Cumulative since the start of the run; consumers difference
    /// adjacent samples for per-epoch rates. Exported as an integer.
    Counter,
    /// Instantaneous or derived value (occupancy, a rate, a mean).
    /// Exported as a float.
    Gauge,
}

impl MetricKind {
    /// The lowercase schema string ("counter" / "gauge").
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One registered metric: its owning component, short name, kind, and
/// unit. The full id is `component.name`, e.g. `dram.ch0.row_hits`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDef {
    /// Owning component path, e.g. `cpu.core0` or `dram.ch2`.
    pub component: String,
    /// Metric name within the component, e.g. `row_hits`.
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Unit string, e.g. `cycles`, `requests`, `ratio`.
    pub unit: &'static str,
}

impl MetricDef {
    /// The full dotted id (`component.name`).
    pub fn id(&self) -> String {
        format!("{}.{}", self.component, self.name)
    }
}

/// The visitor each component walks its metrics through. One
/// implementation collects a [`Schema`]; another writes a sample row.
///
/// Components must emit the same metrics in the same order on every
/// walk — which is automatic when both passes share one
/// [`Observable::observe`] body.
pub trait MetricVisitor {
    /// Switches the current component path for subsequent metrics.
    fn component(&mut self, path: &str);
    /// Visits a cumulative counter.
    fn counter(&mut self, name: &'static str, unit: &'static str, value: u64);
    /// Visits an instantaneous or derived gauge.
    fn gauge(&mut self, name: &'static str, unit: &'static str, value: f64);
}

/// A component that exposes metrics to the observability layer.
pub trait Observable {
    /// Walks every metric of this component through `v`, in a fixed
    /// order. Called once for registration and once per sample.
    fn observe(&self, v: &mut dyn MetricVisitor);
}

/// The ordered metric definitions of one run configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    defs: Vec<MetricDef>,
}

impl Schema {
    /// Builds a schema by running a registration pass over `walk`.
    pub fn build(walk: impl FnOnce(&mut dyn MetricVisitor)) -> Self {
        let mut c = SchemaCollector {
            defs: Vec::new(),
            component: String::new(),
        };
        walk(&mut c);
        Schema { defs: c.defs }
    }

    /// The ordered definitions.
    pub fn defs(&self) -> &[MetricDef] {
        &self.defs
    }

    /// Number of metrics per sample row.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Index of the metric with the given full dotted id.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.defs.iter().position(|d| d.id() == id)
    }
}

/// Registration-pass visitor: records definitions, ignores values.
struct SchemaCollector {
    defs: Vec<MetricDef>,
    component: String,
}

impl MetricVisitor for SchemaCollector {
    fn component(&mut self, path: &str) {
        self.component.clear();
        self.component.push_str(path);
    }
    fn counter(&mut self, name: &'static str, unit: &'static str, _value: u64) {
        self.defs.push(MetricDef {
            component: self.component.clone(),
            name,
            kind: MetricKind::Counter,
            unit,
        });
    }
    fn gauge(&mut self, name: &'static str, unit: &'static str, _value: f64) {
        self.defs.push(MetricDef {
            component: self.component.clone(),
            name,
            kind: MetricKind::Gauge,
            unit,
        });
    }
}

/// Sampling-pass visitor: appends one value per registered metric.
struct RowWriter<'a> {
    schema: &'a Schema,
    values: &'a mut Vec<f64>,
    /// Index of the next expected metric within the row.
    at: usize,
    base: usize,
}

impl MetricVisitor for RowWriter<'_> {
    fn component(&mut self, _path: &str) {}
    fn counter(&mut self, name: &'static str, _unit: &'static str, value: u64) {
        let def = &self.schema.defs[self.at];
        debug_assert_eq!(def.name, name, "sample order diverged from schema");
        debug_assert_eq!(def.kind, MetricKind::Counter);
        self.at += 1;
        self.values.push(value as f64);
        let _ = self.base;
    }
    fn gauge(&mut self, name: &'static str, _unit: &'static str, value: f64) {
        let def = &self.schema.defs[self.at];
        debug_assert_eq!(def.name, name, "sample order diverged from schema");
        debug_assert_eq!(def.kind, MetricKind::Gauge);
        debug_assert!(value.is_finite(), "gauge {name} sampled non-finite {value}");
        self.at += 1;
        self.values
            .push(if value.is_finite() { value } else { 0.0 });
    }
}

/// A cycle-stamped time series over one [`Schema`]: row *i* holds the
/// value of every registered metric at `cycles[i]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSet {
    schema: Schema,
    cycles: Vec<u64>,
    /// Row-major values, `cycles.len() * schema.len()` long.
    values: Vec<f64>,
}

impl SeriesSet {
    /// Creates an empty series over `schema`.
    pub fn new(schema: Schema) -> Self {
        SeriesSet {
            schema,
            cycles: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The schema rows follow.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The cycle stamps of all samples.
    pub fn cycles(&self) -> &[u64] {
        &self.cycles
    }

    /// The values of sample `row`, in schema order.
    pub fn row(&self, row: usize) -> &[f64] {
        let w = self.schema.len();
        &self.values[row * w..(row + 1) * w]
    }

    /// The value of the metric with dotted id `id` at sample `row`.
    pub fn value(&self, row: usize, id: &str) -> Option<f64> {
        let i = self.schema.index_of(id)?;
        self.row(row).get(i).copied()
    }

    /// Serializes for the sweep journal, reusing the lossless JSONL
    /// round trip (one single-run export under a fixed label).
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        let mut ex = SeriesExport::new(1);
        ex.push("journal", self.clone());
        w.put_str(&ex.to_jsonl());
    }

    /// Deserializes a journaled series.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream or malformed embedded JSONL.
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let offset = r.position();
        let text = r.get_str()?;
        let ex = SeriesExport::parse_jsonl(&text)
            .map_err(|message| crate::codec::CodecError { message, offset })?;
        ex.runs
            .into_iter()
            .next()
            .map(|run| run.series)
            .ok_or_else(|| crate::codec::CodecError {
                message: "journaled series export holds no run".into(),
                offset,
            })
    }

    /// The full column of a metric across all samples.
    pub fn column(&self, id: &str) -> Option<Vec<f64>> {
        let i = self.schema.index_of(id)?;
        Some(
            self.cycles
                .iter()
                .enumerate()
                .map(|(r, _)| self.row(r)[i])
                .collect(),
        )
    }
}

/// The epoch sampler: snapshots registered metrics every `epoch`
/// cycles into a [`SeriesSet`].
#[derive(Debug, Clone)]
pub struct Sampler {
    epoch: u64,
    next_at: u64,
    window: Option<usize>,
    series: SeriesSet,
}

impl Sampler {
    /// Creates a sampler that fires every `epoch` cycles (first at
    /// cycle `epoch`).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new(schema: Schema, epoch: u64) -> Self {
        assert!(epoch > 0, "sampling epoch must be nonzero");
        Sampler {
            epoch,
            next_at: epoch,
            window: None,
            series: SeriesSet::new(schema),
        }
    }

    /// Retains only the most recent `window` samples: each new sample
    /// past the cap evicts the oldest row. This bounds the sampler's
    /// memory for unbounded-horizon runs (e.g. synthesized traffic
    /// replay), turning the series into a sliding window of the run's
    /// trailing behavior instead of its full history.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "sample window must be nonzero");
        self.window = Some(window);
        self
    }

    /// The sampling epoch in cycles.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sliding-window cap, when one was set.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Whether a sample is due at `now`.
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_at
    }

    /// The cycle at which the next sample falls due. Event-horizon
    /// accessor for skip-ahead: a caller that batch-advances the clock
    /// must stop no later than this cycle.
    #[inline]
    pub fn next_due(&self) -> u64 {
        self.next_at
    }

    /// Number of samples recorded so far (after any window eviction).
    pub fn samples_taken(&self) -> usize {
        self.series.cycles.len()
    }

    /// Cycle stamp of the most recent sample, if any.
    pub fn last_sampled(&self) -> Option<u64> {
        self.series.cycles.last().copied()
    }

    /// Records one sample at `now` by running `walk` with a
    /// row-writing visitor, then schedules the next epoch.
    ///
    /// # Panics
    ///
    /// Panics if `walk` emits a different number of metrics than the
    /// schema registered.
    pub fn sample(&mut self, now: u64, walk: impl FnOnce(&mut dyn MetricVisitor)) {
        let before = self.series.values.len();
        let mut w = RowWriter {
            schema: &self.series.schema,
            values: &mut self.series.values,
            at: 0,
            base: before,
        };
        walk(&mut w);
        assert_eq!(
            self.series.values.len() - before,
            self.series.schema.len(),
            "sample row width diverged from schema"
        );
        self.series.cycles.push(now);
        if let Some(cap) = self.window {
            let extra = self.series.cycles.len().saturating_sub(cap);
            if extra > 0 {
                self.series.cycles.drain(..extra);
                self.series.values.drain(..extra * self.series.schema.len());
            }
        }
        // Epochs are anchored to the grid, not to the sample cycle, so
        // a caller that checks `due` late does not drift.
        while self.next_at <= now {
            self.next_at += self.epoch;
        }
    }

    /// Consumes the sampler, returning the recorded series.
    pub fn into_series(self) -> SeriesSet {
        self.series
    }
}

impl crate::codec::Snapshot for Sampler {
    /// The epoch and schema come from the constructor; the captured
    /// state is the next fire cycle plus every recorded row.
    fn save_state(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.next_at);
        w.put_u64_seq(&self.series.cycles);
        w.put_u32(self.series.values.len() as u32);
        for &v in &self.series.values {
            w.put_f64(v);
        }
    }

    fn load_state(
        &mut self,
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        self.next_at = r.get_u64()?;
        self.series.cycles = r.get_u64_seq()?;
        let n = r.get_u32()? as usize;
        self.series.values = (0..n).map(|_| r.get_f64()).collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// One run's labeled series within a [`SeriesExport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSeries {
    /// Unique run label (e.g. `swim|CASRAS-Crit|MaxStallTime-64`).
    pub run: String,
    /// The sampled time series.
    pub series: SeriesSet,
}

/// A deterministic, mergeable collection of sampled runs, exportable
/// as JSONL or CSV (and parseable back — see the round-trip tests).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesExport {
    /// Sampling epoch in CPU cycles (uniform across runs).
    pub epoch: u64,
    /// The runs, sorted by label (the deterministic merge order).
    pub runs: Vec<RunSeries>,
}

impl SeriesExport {
    /// Creates an empty export with the given epoch.
    pub fn new(epoch: u64) -> Self {
        SeriesExport {
            epoch,
            runs: Vec::new(),
        }
    }

    /// Adds one run's series under `label`, keeping runs sorted by
    /// label so that merge order — and therefore every export byte —
    /// is independent of execution order (worker count, completion
    /// interleaving).
    ///
    /// # Panics
    ///
    /// Panics if `label` is already present (runs must be uniquely
    /// keyed) or contains characters that would break the line formats
    /// (`"`, `\`, newline, or comma).
    pub fn push(&mut self, label: impl Into<String>, series: SeriesSet) {
        let run = label.into();
        assert!(
            !run.contains(['"', '\\', '\n', ',']),
            "run label {run:?} contains characters reserved by the export formats"
        );
        match self.runs.binary_search_by(|r| r.run.as_str().cmp(&run)) {
            Ok(_) => panic!("duplicate run label {run:?}"),
            Err(i) => self.runs.insert(i, RunSeries { run, series }),
        }
    }

    /// Merges another export into this one (e.g. per-worker exports).
    ///
    /// # Panics
    ///
    /// Panics on epoch mismatch or duplicate run labels.
    pub fn merge(&mut self, other: SeriesExport) {
        assert_eq!(
            self.epoch, other.epoch,
            "cannot merge exports with different epochs"
        );
        for r in other.runs {
            self.push(r.run, r.series);
        }
    }

    /// Serializes to JSON Lines (see DESIGN.md §6e): one `export`
    /// header line, then per run one `run` line carrying the schema
    /// followed by its `sample` lines in cycle order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"export\",\"version\":1,\"epoch\":{},\"runs\":{}}}",
            self.epoch,
            self.runs.len()
        );
        for r in &self.runs {
            let _ = write!(
                out,
                "{{\"type\":\"run\",\"run\":\"{}\",\"samples\":{},\"metrics\":[",
                r.run,
                r.series.len()
            );
            for (i, d) in r.series.schema.defs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"id\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\"}}",
                    d.id(),
                    d.kind.as_str(),
                    d.unit
                );
            }
            out.push_str("]}\n");
            for row in 0..r.series.len() {
                let _ = write!(
                    out,
                    "{{\"type\":\"sample\",\"run\":\"{}\",\"cycle\":{},\"v\":[",
                    r.run, r.series.cycles[row]
                );
                for (i, (v, d)) in r
                    .series
                    .row(row)
                    .iter()
                    .zip(r.series.schema.defs())
                    .enumerate()
                {
                    if i > 0 {
                        out.push(',');
                    }
                    format_value(&mut out, *v, d.kind);
                }
                out.push_str("]}\n");
            }
        }
        out
    }

    /// Serializes to CSV: a header of `run,cycle,<metric ids…>`, then
    /// one row per sample. Requires every run to share one schema
    /// (true whenever the runs share a system configuration).
    ///
    /// # Panics
    ///
    /// Panics if runs disagree on the schema.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.runs.first() else {
            out.push_str("run,cycle\n");
            return out;
        };
        let schema = &first.series.schema;
        out.push_str("run,cycle");
        for d in schema.defs() {
            out.push(',');
            out.push_str(&d.id());
        }
        out.push('\n');
        for r in &self.runs {
            assert_eq!(
                r.series.schema, *schema,
                "CSV export requires a uniform schema across runs"
            );
            for row in 0..r.series.len() {
                let _ = write!(out, "{},{}", r.run, r.series.cycles[row]);
                for (v, d) in r.series.row(row).iter().zip(schema.defs()) {
                    out.push(',');
                    format_value(&mut out, *v, d.kind);
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parses the JSONL produced by [`SeriesExport::to_jsonl`].
    ///
    /// This accepts exactly the subset of JSON the emitter produces
    /// (no escapes inside strings; run labels forbid them at `push`).
    pub fn parse_jsonl(text: &str) -> Result<SeriesExport, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty export")?;
        let header = json::parse(header)?;
        let epoch = header.get_u64("epoch").ok_or("header missing epoch")?;
        let mut export = SeriesExport::new(epoch);
        let mut current: Option<RunSeries> = None;
        for (ln, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let obj = json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            match obj.get_str("type") {
                Some("run") => {
                    if let Some(done) = current.take() {
                        export.push(done.run, done.series);
                    }
                    let run = obj
                        .get_str("run")
                        .ok_or_else(|| format!("line {}: run without label", ln + 1))?
                        .to_string();
                    let metrics = obj
                        .get_array("metrics")
                        .ok_or_else(|| format!("line {}: run without metrics", ln + 1))?;
                    let mut defs = Vec::with_capacity(metrics.len());
                    for m in metrics {
                        let id = m.get_str("id").ok_or("metric without id")?;
                        let (component, name) = id
                            .rsplit_once('.')
                            .ok_or_else(|| format!("metric id {id:?} has no component"))?;
                        let kind = match m.get_str("kind") {
                            Some("counter") => MetricKind::Counter,
                            Some("gauge") => MetricKind::Gauge,
                            other => return Err(format!("bad metric kind {other:?}")),
                        };
                        defs.push(MetricDef {
                            component: component.to_string(),
                            name: leak_name(name),
                            kind,
                            unit: leak_name(m.get_str("unit").unwrap_or("")),
                        });
                    }
                    current = Some(RunSeries {
                        run,
                        series: SeriesSet::new(Schema { defs }),
                    });
                }
                Some("sample") => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| format!("line {}: sample before any run", ln + 1))?;
                    let cycle = obj
                        .get_u64("cycle")
                        .ok_or_else(|| format!("line {}: sample without cycle", ln + 1))?;
                    let vals = obj
                        .get_array("v")
                        .ok_or_else(|| format!("line {}: sample without values", ln + 1))?;
                    if vals.len() != cur.series.schema.len() {
                        return Err(format!(
                            "line {}: {} values for a {}-metric schema",
                            ln + 1,
                            vals.len(),
                            cur.series.schema.len()
                        ));
                    }
                    for v in vals {
                        cur.series
                            .values
                            .push(v.as_f64().ok_or("non-numeric sample value")?);
                    }
                    cur.series.cycles.push(cycle);
                }
                other => return Err(format!("line {}: unknown type {other:?}", ln + 1)),
            }
        }
        if let Some(done) = current.take() {
            export.push(done.run, done.series);
        }
        Ok(export)
    }

    /// Parses the CSV produced by [`SeriesExport::to_csv`]. Metric
    /// kinds are inferred from the value lexemes (no decimal point →
    /// counter), which matches the emitter; units are not carried by
    /// CSV and come back empty.
    pub fn parse_csv(text: &str) -> Result<SeriesExport, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let mut cols = header.split(',');
        if cols.next() != Some("run") || cols.next() != Some("cycle") {
            return Err("CSV header must start with run,cycle".into());
        }
        let ids: Vec<&str> = cols.collect();
        let mut export = SeriesExport::new(0);
        let mut current: Option<RunSeries> = None;
        for (ln, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let run = fields
                .next()
                .ok_or_else(|| format!("row {}: no run", ln + 2))?;
            let cycle: u64 = fields
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| format!("row {}: bad cycle", ln + 2))?;
            let values: Vec<&str> = fields.collect();
            if values.len() != ids.len() {
                return Err(format!(
                    "row {}: {} values for {} columns",
                    ln + 2,
                    values.len(),
                    ids.len()
                ));
            }
            if current.as_ref().is_none_or(|c| c.run != run) {
                if let Some(done) = current.take() {
                    export.push(done.run, done.series);
                }
                let defs = ids
                    .iter()
                    .zip(&values)
                    .map(|(id, v)| {
                        let (component, name) = id
                            .rsplit_once('.')
                            .ok_or_else(|| format!("metric id {id:?} has no component"))?;
                        Ok(MetricDef {
                            component: component.to_string(),
                            name: leak_name(name),
                            kind: if v.contains('.') {
                                MetricKind::Gauge
                            } else {
                                MetricKind::Counter
                            },
                            unit: "",
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                current = Some(RunSeries {
                    run: run.to_string(),
                    series: SeriesSet::new(Schema { defs }),
                });
            }
            let cur = current.as_mut().expect("just set");
            for v in &values {
                cur.series.values.push(
                    v.parse::<f64>()
                        .map_err(|e| format!("row {}: {e}", ln + 2))?,
                );
            }
            cur.series.cycles.push(cycle);
        }
        if let Some(done) = current.take() {
            export.push(done.run, done.series);
        }
        Ok(export)
    }
}

/// Formats one value per its kind: counters as integers, gauges via
/// `f64`'s shortest round-trip representation.
fn format_value(out: &mut String, v: f64, kind: MetricKind) {
    match kind {
        MetricKind::Counter => {
            let _ = write!(out, "{}", v as u64);
        }
        MetricKind::Gauge => {
            if v == v.trunc() && v.abs() < 1e15 {
                // Keep gauges recognizably floats in CSV kind inference.
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// Interns a parsed metric name as `&'static str`. Parsing is a
/// tooling/test path (export files are small); the few leaked names
/// per parse are the price of keeping hot-path defs allocation-light.
fn leak_name(s: &str) -> &'static str {
    Box::leak(s.to_string().into_boxed_str())
}

/// A minimal JSON reader for the line format this module emits.
mod json {
    /// A parsed JSON value (subset: no string escapes).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// A string without escapes.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        /// Object field as string.
        pub fn get_str(&self, key: &str) -> Option<&str> {
            match self.get(key)? {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Object field as `u64`.
        pub fn get_u64(&self, key: &str) -> Option<u64> {
            match self.get(key)? {
                Value::Num(n) if *n >= 0.0 => Some(*n as u64),
                _ => None,
            }
        }
        /// Object field as array.
        pub fn get_array(&self, key: &str) -> Option<&[Value]> {
            match self.get(key)? {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// Numeric value.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses one JSON document from `text`.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => obj(b, pos),
            Some(b'[') => arr(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                return Err("string escapes are not supported".into());
            }
            *pos += 1;
        }
        if *pos >= b.len() {
            return Err("unterminated string".into());
        }
        let s = std::str::from_utf8(&b[start..*pos])
            .map_err(|e| e.to_string())?
            .to_string();
        *pos += 1;
        Ok(s)
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {s:?} at offset {start}"))
    }

    fn arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected , or ] at offset {pos}")),
            }
        }
    }

    fn obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at offset {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        a: u64,
        b: f64,
    }

    impl Observable for Fake {
        fn observe(&self, v: &mut dyn MetricVisitor) {
            v.counter("events", "events", self.a);
            v.gauge("level", "ratio", self.b);
        }
    }

    fn sample_fake(f: &Fake, epoch: u64, points: &[(u64, u64, f64)]) -> SeriesSet {
        let schema = Schema::build(|v| {
            v.component("fake");
            f.observe(v);
        });
        let mut s = Sampler::new(schema, epoch);
        for &(cycle, a, b) in points {
            let snap = Fake { a, b };
            s.sample(cycle, |v| {
                v.component("fake");
                snap.observe(v);
            });
        }
        s.into_series()
    }

    #[test]
    fn schema_registration_orders_metrics() {
        let f = Fake { a: 0, b: 0.0 };
        let schema = Schema::build(|v| {
            v.component("fake");
            f.observe(v);
        });
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.defs()[0].id(), "fake.events");
        assert_eq!(schema.defs()[0].kind, MetricKind::Counter);
        assert_eq!(schema.defs()[1].id(), "fake.level");
        assert_eq!(schema.defs()[1].unit, "ratio");
    }

    #[test]
    fn sampler_epoch_grid() {
        let f = Fake { a: 1, b: 0.5 };
        let schema = Schema::build(|v| f.observe(v));
        let mut s = Sampler::new(schema, 100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.sample(100, |v| f.observe(v));
        assert!(!s.due(150));
        assert!(s.due(200));
        // A late check lands back on the grid, not 250+100.
        s.sample(250, |v| f.observe(v));
        assert!(s.due(300));
    }

    #[test]
    fn windowed_sampler_keeps_only_the_tail() {
        let f = Fake { a: 0, b: 0.0 };
        let schema = Schema::build(|v| {
            v.component("fake");
            f.observe(v);
        });
        let mut s = Sampler::new(schema, 10).with_window(3);
        assert_eq!(s.window(), Some(3));
        for i in 1..=8u64 {
            let snap = Fake {
                a: i,
                b: i as f64 / 10.0,
            };
            s.sample(i * 10, |v| snap.observe(v));
        }
        let series = s.into_series();
        assert_eq!(series.len(), 3, "window must cap retained rows");
        assert_eq!(series.cycles(), &[60, 70, 80]);
        assert_eq!(series.value(0, "fake.events"), Some(6.0));
        assert_eq!(series.value(2, "fake.events"), Some(8.0));
        assert_eq!(series.value(2, "fake.level"), Some(0.8));
    }

    #[test]
    fn series_lookup_by_id() {
        let f = Fake { a: 0, b: 0.0 };
        let series = sample_fake(&f, 10, &[(10, 3, 0.25), (20, 7, 0.5)]);
        assert_eq!(series.len(), 2);
        assert_eq!(series.value(0, "fake.events"), Some(3.0));
        assert_eq!(series.value(1, "fake.level"), Some(0.5));
        assert_eq!(series.column("fake.events"), Some(vec![3.0, 7.0]));
        assert_eq!(series.value(0, "fake.nope"), None);
    }

    #[test]
    fn jsonl_round_trips() {
        let f = Fake { a: 0, b: 0.0 };
        let mut export = SeriesExport::new(10);
        export.push(
            "runB",
            sample_fake(&f, 10, &[(10, 1, 0.125), (20, 2, 1.0 / 3.0)]),
        );
        export.push("runA", sample_fake(&f, 10, &[(10, 9, 42.0)]));
        // Deterministic order: sorted by label regardless of push order.
        assert_eq!(export.runs[0].run, "runA");
        let text = export.to_jsonl();
        let parsed = SeriesExport::parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, export);
        assert_eq!(parsed.to_jsonl(), text, "re-serialization is stable");
    }

    #[test]
    fn csv_round_trips_values() {
        let f = Fake { a: 0, b: 0.0 };
        let mut export = SeriesExport::new(10);
        export.push("r1", sample_fake(&f, 10, &[(10, 1, 0.125), (20, 2, 7.0)]));
        export.push("r2", sample_fake(&f, 10, &[(10, 3, 0.75)]));
        let text = export.to_csv();
        let parsed = SeriesExport::parse_csv(&text).expect("parse");
        // CSV does not carry the epoch or units; compare the rest.
        assert_eq!(parsed.runs.len(), 2);
        for (p, e) in parsed.runs.iter().zip(&export.runs) {
            assert_eq!(p.run, e.run);
            assert_eq!(p.series.cycles(), e.series.cycles());
            assert_eq!(p.series.values, e.series.values);
            let ids: Vec<String> = p.series.schema.defs().iter().map(|d| d.id()).collect();
            let eids: Vec<String> = e.series.schema.defs().iter().map(|d| d.id()).collect();
            assert_eq!(ids, eids);
        }
        assert_eq!(parsed.to_csv(), text, "re-serialization is stable");
    }

    #[test]
    fn merge_is_order_independent() {
        let f = Fake { a: 0, b: 0.0 };
        let mk = |labels: &[&str]| {
            let mut e = SeriesExport::new(5);
            for l in labels {
                e.push(*l, sample_fake(&f, 5, &[(5, 1, 1.5)]));
            }
            e
        };
        let mut a = mk(&["x"]);
        a.merge(mk(&["z", "y"]));
        let mut b = mk(&["y"]);
        b.merge(mk(&["x", "z"]));
        assert_eq!(a, b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    #[should_panic(expected = "duplicate run label")]
    fn duplicate_labels_are_rejected() {
        let f = Fake { a: 0, b: 0.0 };
        let mut e = SeriesExport::new(5);
        e.push("x", sample_fake(&f, 5, &[]));
        e.push("x", sample_fake(&f, 5, &[]));
    }

    #[test]
    fn empty_export_parses() {
        let e = SeriesExport::new(1000);
        let parsed = SeriesExport::parse_jsonl(&e.to_jsonl()).expect("parse");
        assert_eq!(parsed, e);
        assert_eq!(
            SeriesExport::parse_csv(&e.to_csv())
                .expect("csv")
                .runs
                .len(),
            0
        );
    }

    #[test]
    fn gauge_formatting_survives_awkward_values() {
        // Shortest-repr floats and integral gauges both round-trip.
        let f = Fake { a: 0, b: 0.0 };
        let mut e = SeriesExport::new(1);
        e.push(
            "r",
            sample_fake(&f, 1, &[(1, u32::MAX as u64, 0.1 + 0.2), (2, 0, 3.0)]),
        );
        let parsed = SeriesExport::parse_jsonl(&e.to_jsonl()).expect("parse");
        assert_eq!(parsed, e);
    }

    #[test]
    fn json_reader_handles_subset() {
        let v = json::parse(r#"{"a":[1,2.5,"x"],"b":null,"c":true}"#).unwrap();
        assert_eq!(v.get_array("a").unwrap().len(), 3);
        assert_eq!(v.get("b"), Some(&json::Value::Null));
        assert_eq!(v.get("c"), Some(&json::Value::Bool(true)));
        assert!(json::parse("{oops").is_err());
        assert!(json::parse(r#""esc\"ape""#).is_err());
    }
}
