//! Clock-domain crossing between the CPU core clock and the DRAM bus
//! clock.
//!
//! The whole system is stepped at CPU-cycle granularity (4.27 GHz in the
//! paper's configuration). The DRAM subsystem runs on the memory bus
//! clock (1,066 MHz for DDR3-2133). [`ClockDivider`] converts the fast
//! clock into ticks of the slow clock using integer error accumulation,
//! so non-integral ratios (e.g. 4.27 GHz : 800 MHz for DDR3-1600) are
//! handled exactly with no drift.

/// Generates ticks of a slow clock while being stepped by a fast clock.
///
/// Classic Bresenham-style accumulator: every fast-clock cycle adds
/// `slow_hz` to an accumulator; whenever the accumulator reaches
/// `fast_hz` the slow clock ticks once. Over any window of `fast_hz`
/// fast cycles exactly `slow_hz` slow ticks are produced.
///
/// # Examples
///
/// ```
/// use critmem_common::ClockDivider;
///
/// // 4 fast cycles per slow cycle, exactly.
/// let mut div = ClockDivider::new(1, 4);
/// let ticks: Vec<bool> = (0..8).map(|_| div.tick()).collect();
/// assert_eq!(ticks.iter().filter(|&&t| t).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDivider {
    slow_hz: u64,
    fast_hz: u64,
    acc: u64,
    slow_cycles: u64,
    fast_cycles: u64,
}

impl ClockDivider {
    /// Creates a divider producing `slow_hz` ticks per `fast_hz` steps.
    ///
    /// The two arguments only need to be in the correct *ratio*; passing
    /// frequencies in MHz is as good as Hz.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is zero or if `slow_hz > fast_hz`.
    pub fn new(slow_hz: u64, fast_hz: u64) -> Self {
        assert!(
            slow_hz > 0 && fast_hz > 0,
            "clock frequencies must be nonzero"
        );
        assert!(
            slow_hz <= fast_hz,
            "slow clock ({slow_hz}) must not be faster than fast clock ({fast_hz})"
        );
        ClockDivider {
            slow_hz,
            fast_hz,
            acc: 0,
            slow_cycles: 0,
            fast_cycles: 0,
        }
    }

    /// Advances the fast clock by one cycle; returns `true` when the
    /// slow clock ticks on this fast cycle.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.fast_cycles += 1;
        self.acc += self.slow_hz;
        if self.acc >= self.fast_hz {
            self.acc -= self.fast_hz;
            self.slow_cycles += 1;
            true
        } else {
            false
        }
    }

    /// Advances the fast clock by `n` cycles at once; returns the number
    /// of slow-clock ticks produced over that window.
    ///
    /// Byte-identical to calling [`ClockDivider::tick`] `n` times: the
    /// accumulator invariant `acc < fast_hz` means each tick subtracts
    /// `fast_hz` at most once, so the closed form
    /// `ticks = (acc + n * slow_hz) / fast_hz` is exact.
    #[inline]
    pub fn advance(&mut self, n: u64) -> u64 {
        self.fast_cycles += n;
        let total = self.acc + n * self.slow_hz;
        let ticks = total / self.fast_hz;
        self.acc = total % self.fast_hz;
        self.slow_cycles += ticks;
        ticks
    }

    /// Number of fast cycles until the `ticks`-th future slow tick: the
    /// smallest `f` such that [`ClockDivider::advance`]`(f)` would return
    /// at least `ticks`. Returns 0 when `ticks` is 0 and `u64::MAX` when
    /// the product overflows (an "event at infinity" horizon).
    #[inline]
    pub fn fast_cycles_until(&self, ticks: u64) -> u64 {
        if ticks == 0 {
            return 0;
        }
        // Smallest f with acc + f * slow_hz >= ticks * fast_hz.
        let Some(need) = ticks.checked_mul(self.fast_hz) else {
            return u64::MAX;
        };
        (need - self.acc).div_ceil(self.slow_hz)
    }

    /// Number of slow-clock cycles elapsed so far.
    #[inline]
    pub fn slow_cycles(&self) -> u64 {
        self.slow_cycles
    }

    /// Number of fast-clock cycles elapsed so far.
    #[inline]
    pub fn fast_cycles(&self) -> u64 {
        self.fast_cycles
    }

    /// Converts a duration measured in slow cycles to fast cycles,
    /// rounding up. Useful for expressing DRAM-cycle thresholds (such as
    /// the paper's 6,000-DRAM-cycle starvation cap) in CPU cycles.
    #[inline]
    pub fn slow_to_fast(&self, slow: u64) -> u64 {
        // ceil(slow * fast / slow_hz)
        (slow * self.fast_hz).div_ceil(self.slow_hz)
    }

    /// Converts a duration measured in fast cycles to slow cycles,
    /// rounding down.
    #[inline]
    pub fn fast_to_slow(&self, fast: u64) -> u64 {
        fast * self.slow_hz / self.fast_hz
    }
}

impl crate::codec::Snapshot for ClockDivider {
    /// The frequencies come from the constructor; only the accumulator
    /// and the two cycle counters are mutable state.
    fn save_state(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.acc);
        w.put_u64(self.slow_cycles);
        w.put_u64(self.fast_cycles);
    }

    fn load_state(
        &mut self,
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        self.acc = r.get_u64()?;
        self.slow_cycles = r.get_u64()?;
        self.fast_cycles = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integer_ratio() {
        let mut d = ClockDivider::new(1_066, 4_264);
        // exactly 4:1
        for i in 1..=4_264u64 {
            let ticked = d.tick();
            assert_eq!(ticked, i % 4 == 0, "cycle {i}");
        }
        assert_eq!(d.slow_cycles(), 1_066);
    }

    #[test]
    fn ddr3_2133_under_4_27_ghz() {
        // 1,066 MHz under 4,270 MHz: ratio ≈ 4.006.
        let mut d = ClockDivider::new(1_066, 4_270);
        let mut ticks = 0u64;
        for _ in 0..42_70000 {
            if d.tick() {
                ticks += 1;
            }
        }
        assert_eq!(ticks, 1_066_000);
    }

    #[test]
    fn ddr3_1600_ratio_is_fractional() {
        // 800 MHz bus under 4,270 MHz core: 5.3375 CPU cycles per DRAM cycle.
        let mut d = ClockDivider::new(800, 4_270);
        for _ in 0..42_700 {
            d.tick();
        }
        assert_eq!(d.slow_cycles(), 800 * 42_700 / 4_270);
    }

    #[test]
    fn unit_ratio_ticks_every_cycle() {
        let mut d = ClockDivider::new(5, 5);
        assert!(d.tick());
        assert!(d.tick());
        assert_eq!(d.slow_cycles(), 2);
        assert_eq!(d.fast_cycles(), 2);
    }

    #[test]
    fn conversion_round_trip_bounds() {
        let d = ClockDivider::new(1_066, 4_270);
        let fast = d.slow_to_fast(6_000);
        // 6,000 DRAM cycles is a little over 24,000 CPU cycles.
        assert!((24_000..24_100).contains(&fast), "fast = {fast}");
        assert!(d.fast_to_slow(fast) >= 6_000);
    }

    #[test]
    #[should_panic(expected = "must not be faster")]
    fn rejects_inverted_ratio() {
        let _ = ClockDivider::new(10, 5);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_frequency() {
        let _ = ClockDivider::new(0, 5);
    }

    /// Over any multiple of the fast frequency, the tick count is exact
    /// (seeded property sweep).
    #[test]
    fn no_drift() {
        let mut rng = crate::SmallRng::seed_from_u64(0xD1F7);
        for _ in 0..64 {
            let slow = rng.gen_range(1..5_000);
            let mult = rng.gen_range(1..8);
            let fast = slow + (slow % 97) + 1; // fast >= slow
            let mut d = ClockDivider::new(slow, fast);
            let mut ticks = 0u64;
            for _ in 0..fast * mult {
                if d.tick() {
                    ticks += 1;
                }
            }
            assert_eq!(ticks, slow * mult, "slow={slow} mult={mult}");
        }
    }

    /// `advance(n)` matches `n` individual ticks exactly — accumulator,
    /// counters, and tick total — across random fractional ratios and
    /// batch sizes (seeded property sweep).
    #[test]
    fn advance_matches_serial_ticks() {
        let mut rng = crate::SmallRng::seed_from_u64(0xADA7);
        for _ in 0..64 {
            let slow = rng.gen_range(1..5_000);
            let fast = slow + rng.gen_range(0..5_000);
            let mut serial = ClockDivider::new(slow, fast);
            let mut batched = ClockDivider::new(slow, fast);
            for _ in 0..32 {
                let n = rng.gen_range(0..10_000);
                let mut ticks = 0u64;
                for _ in 0..n {
                    ticks += u64::from(serial.tick());
                }
                assert_eq!(batched.advance(n), ticks, "slow={slow} fast={fast} n={n}");
                assert_eq!(batched, serial);
            }
        }
    }

    /// `fast_cycles_until(d)` is the exact first-crossing point: advancing
    /// that many fast cycles yields at least `d` ticks, one fewer does not.
    #[test]
    fn fast_cycles_until_is_tight() {
        let mut rng = crate::SmallRng::seed_from_u64(0xF1A5);
        for _ in 0..64 {
            let slow = rng.gen_range(1..5_000);
            let fast = slow + rng.gen_range(0..5_000);
            let mut d = ClockDivider::new(slow, fast);
            d.advance(rng.gen_range(0..1_000)); // random accumulator phase
            let want = rng.gen_range(1..100);
            let f = d.fast_cycles_until(want);
            let mut probe = d.clone();
            assert!(probe.advance(f) >= want);
            let mut probe = d.clone();
            assert!(probe.advance(f - 1) < want, "slow={slow} fast={fast}");
        }
        let d = ClockDivider::new(1_066, 4_270);
        assert_eq!(d.fast_cycles_until(0), 0);
        assert_eq!(d.fast_cycles_until(u64::MAX), u64::MAX);
    }

    /// The accumulator never produces two slow ticks without at least
    /// one intervening fast cycle when slow <= fast/2.
    #[test]
    fn ticks_are_spread() {
        let mut rng = crate::SmallRng::seed_from_u64(0x5B12);
        for _ in 0..64 {
            let slow = rng.gen_range(1..100);
            let extra = rng.gen_range(1..100);
            let fast = slow + extra;
            let mut d = ClockDivider::new(slow, fast);
            let mut prev = false;
            let mut consecutive = 0u32;
            for _ in 0..10_000 {
                let t = d.tick();
                if t && prev {
                    consecutive += 1;
                }
                prev = t;
            }
            if slow * 2 <= fast {
                assert_eq!(consecutive, 0, "slow={slow} fast={fast}");
            }
        }
    }
}
