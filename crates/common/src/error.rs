//! The typed error hierarchy of the simulator.
//!
//! Library crates return [`SimError`] for every *operational* failure —
//! invalid configuration, unknown workloads, corrupt artifacts, a
//! livelocked simulation, a panicked sweep cell — and keep `panic!`
//! only for internal invariants ("this index came from our own table").
//! The split is what lets the experiment harness degrade gracefully: a
//! per-cell `SimError` is reported and the rest of a sweep completes,
//! where a panic used to discard hours of finished work.
//!
//! The watchdog types live here too: [`WatchdogConfig`] tunes the
//! forward-progress detector the system wires into its tick loop, and
//! a trip produces a [`WatchdogSnapshot`] — ROB head PCs, MSHR
//! occupancy, per-bank queue state — so a livelock is diagnosable from
//! the error alone, without rerunning under a debugger.

use crate::{CpuCycle, DramCycle, Pc};
use std::fmt;

/// Why the forward-progress watchdog tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogReason {
    /// No core committed an instruction for this many CPU cycles.
    NoCommit {
        /// CPU cycles since the last observed commit on any core.
        idle_cycles: u64,
    },
    /// A queued DRAM request aged far past the scheduler's starvation
    /// cap — the cap should have forced it out long ago.
    StarvedRequest {
        /// Age of the oldest queued request, in DRAM cycles.
        age: u64,
        /// The watchdog's request-age limit that was exceeded.
        limit: u64,
    },
    /// The run's hard cycle budget elapsed.
    CycleLimit {
        /// The configured budget, in CPU cycles.
        max_cycles: u64,
    },
}

impl fmt::Display for WatchdogReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogReason::NoCommit { idle_cycles } => {
                write!(f, "no core committed for {idle_cycles} CPU cycles")
            }
            WatchdogReason::StarvedRequest { age, limit } => {
                write!(
                    f,
                    "a queued request is {age} DRAM cycles old (limit {limit})"
                )
            }
            WatchdogReason::CycleLimit { max_cycles } => {
                write!(f, "cycle budget of {max_cycles} CPU cycles exhausted")
            }
        }
    }
}

/// Forward-progress watchdog thresholds.
///
/// Defaults are far outside anything a healthy configuration produces
/// (tier-1 workloads commit every few cycles and the §3.2 starvation
/// cap bounds queue age at 6,000 DRAM cycles), so the watchdog never
/// fires on working schedulers while still catching a wedged
/// controller within milliseconds of wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Trip when no core commits for this many CPU cycles. `0`
    /// disables the commit check.
    pub no_commit_cycles: u64,
    /// Trip when a queued DRAM request is older than this many DRAM
    /// cycles (set well above the starvation cap). `0` disables the
    /// age check.
    pub max_request_age: u64,
    /// How often (in CPU cycles) the checks run; a power of two keeps
    /// the hot tick path to a mask-and-compare.
    pub check_interval: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // ~0.5 ms of a 4.27 GHz core: far longer than any real
            // memory stall, far shorter than a wasted sweep.
            no_commit_cycles: 2_000_000,
            // 10x the paper's 6,000-cycle starvation cap.
            max_request_age: 60_000,
            check_interval: 4_096,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog that never fires (both checks disabled).
    pub fn disabled() -> Self {
        WatchdogConfig {
            no_commit_cycles: 0,
            max_request_age: 0,
            check_interval: u64::MAX,
        }
    }

    /// Whether any check is active.
    pub fn enabled(&self) -> bool {
        self.no_commit_cycles > 0 || self.max_request_age > 0
    }
}

/// Queue state of one DRAM bank at the moment a watchdog tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankQueueState {
    /// Channel index.
    pub channel: u8,
    /// Global bank index within the channel (rank * banks + bank).
    pub bank: u16,
    /// Transactions queued for this bank.
    pub queued: usize,
    /// Age of the oldest transaction targeting this bank, in DRAM
    /// cycles.
    pub oldest_age: DramCycle,
}

/// Everything needed to diagnose a livelock from the error value:
/// where each core is stuck, how full the miss machinery is, and what
/// every bank queue holds.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogSnapshot {
    /// What tripped the watchdog.
    pub reason: WatchdogReason,
    /// CPU cycle at which the trip occurred.
    pub cycle: CpuCycle,
    /// Per-core committed instruction counts.
    pub committed: Vec<u64>,
    /// Per-core PC of the instruction blocking the ROB head (`None`
    /// when the ROB is empty).
    pub rob_head_pc: Vec<Option<Pc>>,
    /// Occupied shared-L2 MSHR entries.
    pub mshr_occupancy: usize,
    /// Requests waiting in the cache hierarchy's outbox for a DRAM
    /// queue slot.
    pub outbox_len: usize,
    /// Per-bank transaction-queue state across every channel (only
    /// banks with at least one queued transaction are listed).
    pub bank_queues: Vec<BankQueueState>,
}

impl fmt::Display for WatchdogSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog tripped at cycle {}: {}; committed {:?}; rob head pcs {:?}; \
             l2 mshrs {} occupied, outbox {}; {} bank queue(s) non-empty",
            self.cycle,
            self.reason,
            self.committed,
            self.rob_head_pc,
            self.mshr_occupancy,
            self.outbox_len,
            self.bank_queues.len()
        )?;
        for b in &self.bank_queues {
            write!(
                f,
                "; ch{}/bank{}: {} queued, oldest {} cycles",
                b.channel, b.bank, b.queued, b.oldest_age
            )?;
        }
        Ok(())
    }
}

/// Diagnostic state captured when a runtime invariant auditor rejects
/// the simulation: which auditor fired, the invariant that failed, and
/// where. Auditors are shadow state machines — they recompute legality
/// independently of the component they watch, so a snapshot here means
/// the *model* did something the protocol (or conservation law)
/// forbids, not that an input was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSnapshot {
    /// Which auditor raised the violation (`"protocol"` for the
    /// per-bank DDR3 shadow state machine, `"conservation"` for the
    /// request-accounting auditor at the L2↔controller boundary).
    pub auditor: &'static str,
    /// The invariant that failed, with the offending values.
    pub what: String,
    /// Cycle at which the violation was detected (DRAM cycles for the
    /// protocol auditor, CPU cycles for the conservation auditor).
    pub cycle: u64,
    /// Channel the violation occurred on, when it is per-channel.
    pub channel: Option<u16>,
}

impl fmt::Display for AuditSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} audit violation at cycle {}",
            self.auditor, self.cycle
        )?;
        if let Some(ch) = self.channel {
            write!(f, " on channel {ch}")?;
        }
        write!(f, ": {}", self.what)
    }
}

/// The operational error type shared by every library crate.
#[derive(Debug)]
pub enum SimError {
    /// A configuration failed validation before any cycle ran.
    Config(String),
    /// A workload named an application or bundle this build does not
    /// know.
    UnknownWorkload {
        /// What kind of name was looked up ("parallel app", "bundle",
        /// ...).
        kind: &'static str,
        /// The unknown name.
        name: String,
    },
    /// The forward-progress watchdog detected a livelock and stopped
    /// the run; the boxed snapshot carries the diagnostic state.
    Watchdog(Box<WatchdogSnapshot>),
    /// A trace artifact was unreadable (corrupt, truncated, wrong
    /// topology); the message is the trace layer's diagnosis.
    Trace(String),
    /// A persisted artifact (journal, export) failed to decode.
    Artifact(String),
    /// An I/O failure, with the path when one is known.
    Io {
        /// The file involved, if known.
        path: Option<String>,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A sweep cell's worker panicked (after bounded retry); the
    /// payload is the panic message.
    CellPanic {
        /// The panic payload, rendered as text.
        payload: String,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// A runtime invariant auditor (protocol or conservation) rejected
    /// the simulation; the boxed snapshot names the invariant.
    AuditViolation(Box<AuditSnapshot>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownWorkload { kind, name } => {
                write!(f, "unknown {kind} {name:?}")
            }
            SimError::Watchdog(snap) => write!(f, "{snap}"),
            SimError::Trace(msg) => write!(f, "trace error: {msg}"),
            SimError::Artifact(msg) => write!(f, "artifact error: {msg}"),
            SimError::Io { path, source } => match path {
                Some(p) => write!(f, "i/o error on {p}: {source}"),
                None => write!(f, "i/o error: {source}"),
            },
            SimError::CellPanic { payload, attempts } => {
                write!(f, "worker panicked after {attempts} attempt(s): {payload}")
            }
            SimError::AuditViolation(snap) => write!(f, "{snap}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SimError {
    fn from(source: std::io::Error) -> Self {
        SimError::Io { path: None, source }
    }
}

impl From<crate::codec::CodecError> for SimError {
    fn from(e: crate::codec::CodecError) -> Self {
        SimError::Artifact(e.to_string())
    }
}

impl SimError {
    /// The process exit code this error maps to: `2` for configuration
    /// mistakes the user can fix before any cycle runs, `3` for a
    /// watchdog trip (the run itself is pathological), `4` for an audit
    /// violation (the model broke an invariant), `1` for everything
    /// else (run/artifact/worker failures).
    pub fn exit_code(&self) -> i32 {
        match self {
            SimError::Config(_) | SimError::UnknownWorkload { .. } => 2,
            SimError::Watchdog(_) => 3,
            SimError::AuditViolation(_) => 4,
            _ => 1,
        }
    }

    /// Attaches a path to a bare I/O error (no-op for other variants).
    #[must_use]
    pub fn with_path(self, path: &std::path::Path) -> Self {
        match self {
            SimError::Io { path: None, source } => SimError::Io {
                path: Some(path.display().to_string()),
                source,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> WatchdogSnapshot {
        WatchdogSnapshot {
            reason: WatchdogReason::NoCommit {
                idle_cycles: 2_000_000,
            },
            cycle: 5_000_000,
            committed: vec![100, 90],
            rob_head_pc: vec![Some(0x4000), None],
            mshr_occupancy: 64,
            outbox_len: 3,
            bank_queues: vec![BankQueueState {
                channel: 0,
                bank: 5,
                queued: 12,
                oldest_age: 80_000,
            }],
        }
    }

    #[test]
    fn display_carries_the_diagnosis() {
        let err = SimError::Watchdog(Box::new(snapshot()));
        let msg = err.to_string();
        assert!(msg.contains("no core committed"), "{msg}");
        assert!(msg.contains("ch0/bank5"), "{msg}");
        assert!(msg.contains("mshrs 64"), "{msg}");
    }

    #[test]
    fn exit_codes_are_distinct_by_class() {
        assert_eq!(SimError::Config("x".into()).exit_code(), 2);
        assert_eq!(
            SimError::UnknownWorkload {
                kind: "parallel app",
                name: "nope".into()
            }
            .exit_code(),
            2
        );
        assert_eq!(SimError::Watchdog(Box::new(snapshot())).exit_code(), 3);
        assert_eq!(
            SimError::AuditViolation(Box::new(AuditSnapshot {
                auditor: "protocol",
                what: "ACT on open bank".into(),
                cycle: 1234,
                channel: Some(0),
            }))
            .exit_code(),
            4
        );
        assert_eq!(SimError::Trace("bad".into()).exit_code(), 1);
        assert_eq!(
            SimError::CellPanic {
                payload: "boom".into(),
                attempts: 2
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn io_error_gains_path() {
        let e = SimError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
            .with_path(std::path::Path::new("/tmp/x.journal"));
        assert!(e.to_string().contains("/tmp/x.journal"));
    }

    #[test]
    fn default_watchdog_is_enabled_and_generous() {
        let w = WatchdogConfig::default();
        assert!(w.enabled());
        assert!(w.max_request_age >= 10 * 6_000);
        assert!(!WatchdogConfig::disabled().enabled());
    }
}
