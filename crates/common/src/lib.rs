//! Shared foundation types for the `critmem` simulator workspace.
//!
//! `critmem` reproduces the ISCA 2013 paper *"Improving Memory Scheduling
//! via Processor-Side Load Criticality Information"* (Ghose, Lee,
//! Martínez). This crate holds the vocabulary types that every other
//! crate speaks:
//!
//! * [`ids`] — strongly-typed identifiers ([`CoreId`], [`ChannelId`], …),
//! * [`clock`] — CPU ↔ DRAM clock-domain crossing ([`ClockDivider`]),
//! * [`mem`] — the memory-request descriptor that travels from a core's
//!   load/store queue all the way to the DRAM transaction queue,
//!   carrying the criticality annotation ([`Criticality`]) that is the
//!   heart of the paper,
//! * [`stats`] — counters and histograms used for the evaluation,
//! * [`obs`] — the unified observability layer: metric registration,
//!   epoch sampling, and JSONL/CSV time-series export,
//! * [`pool`] — the persistent [`ShardPool`] behind the sharded
//!   multi-channel DRAM tick: allocation-free per-round fan-out with a
//!   cycle-barrier handoff.
//!
//! # Examples
//!
//! ```
//! use critmem_common::{ClockDivider, CoreId, Criticality, MemRequest, AccessKind};
//!
//! // A DDR3-2133 bus (1,066 MHz) under a 4.27 GHz core clock ticks
//! // roughly once every four CPU cycles.
//! let mut div = ClockDivider::new(1_066, 4_270);
//! let dram_ticks: u32 = (0..4_270).map(|_| u32::from(div.tick())).sum();
//! assert_eq!(dram_ticks, 1_066);
//!
//! // A critical read request as the scheduler sees it.
//! let req = MemRequest::new(0, 0x4_0000, AccessKind::Read, CoreId(2))
//!     .with_criticality(Criticality::ranked(250));
//! assert!(req.crit.is_critical());
//! ```

pub mod alloc_probe;
pub mod clock;
pub mod codec;
pub mod crc32;
pub mod error;
pub mod ids;
pub mod mem;
pub mod obs;
pub mod pool;
pub mod rng;
pub mod stats;

pub use clock::ClockDivider;
pub use codec::Snapshot;
pub use error::{
    AuditSnapshot, BankQueueState, SimError, WatchdogConfig, WatchdogReason, WatchdogSnapshot,
};
pub use ids::{BankId, ChannelId, CoreId, RankId, ThreadId};
pub use mem::{AccessKind, Criticality, MemRequest, ReqId, RequestObserver};
pub use obs::{MetricVisitor, Observable, Sampler, Schema, SeriesExport, SeriesSet};
pub use pool::ShardPool;
pub use rng::SmallRng;
pub use stats::{Counter, Histogram, RunningMean};

/// A cycle count in the CPU clock domain.
pub type CpuCycle = u64;

/// A cycle count in the DRAM (bus) clock domain.
pub type DramCycle = u64;

/// A physical byte address.
pub type PhysAddr = u64;

/// A static program counter (instruction address).
pub type Pc = u64;
