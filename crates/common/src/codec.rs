//! A tiny little-endian binary codec for on-disk artifacts.
//!
//! The sweep journal persists completed simulation results so an
//! interrupted sweep can resume without re-running finished cells.
//! Rather than pull in serde (this is an offline, zero-dependency
//! build), every persisted statistics type implements a pair of
//! hand-rolled methods over [`ByteWriter`] / [`ByteReader`]. The
//! encoding is positional and versioned by its container, so decode
//! errors surface as typed [`CodecError`]s instead of garbage numbers.
//!
//! # Examples
//!
//! ```
//! use critmem_common::codec::{ByteReader, ByteWriter};
//! let mut w = ByteWriter::new();
//! w.put_u64(42);
//! w.put_str("swim");
//! w.put_f64(1.5);
//! let bytes = w.into_bytes();
//! let mut r = ByteReader::new(&bytes);
//! assert_eq!(r.get_u64().unwrap(), 42);
//! assert_eq!(r.get_str().unwrap(), "swim");
//! assert_eq!(r.get_f64().unwrap(), 1.5);
//! assert!(r.is_empty());
//! ```

use std::fmt;

/// A decode failure: what was expected and where the stream ran out or
/// went inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of the inconsistency.
    pub message: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CodecError {}

/// Architectural-state capture for checkpointed warm-start simulation.
///
/// A component implementing `Snapshot` can serialize its *mutable*
/// state into a [`ByteWriter`] and later overlay that state onto a
/// freshly constructed instance. Restore never rebuilds structure: the
/// caller reconstructs the component from its configuration through the
/// normal constructor, then calls [`Snapshot::load_state`] to replay
/// the captured fields. Anything derivable from configuration
/// (capacities, geometry, seeds baked into constructor arguments) is
/// deliberately *not* serialized.
///
/// Implementations must be deterministic: iteration over unordered
/// containers (e.g. `HashMap`) must be sorted before encoding so that
/// capturing the same state twice yields identical bytes.
pub trait Snapshot {
    /// Appends this component's mutable state to `w`.
    fn save_state(&self, w: &mut ByteWriter);

    /// Overlays previously captured state onto `self`.
    ///
    /// `self` must have been constructed with the same configuration
    /// that produced the saved state.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError>;
}

/// Growable little-endian encoder.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed raw byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn put_u64_seq(&mut self, xs: &[u64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u64(x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn err(&self, message: impl Into<String>) -> CodecError {
        CodecError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(self.err(format!("invalid bool byte {n}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8 string"))
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn get_u64_seq(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.get_u32()? as usize;
        (0..len).map(|_| self.get_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("träce");
        w.put_bytes(&[1, 2, 3]);
        w.put_u64_seq(&[10, 20, 30]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "träce");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_seq().unwrap(), vec![10, 20, 30]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        let err = r.get_u64().unwrap_err();
        assert!(err.message.contains("need 8 bytes"), "{err}");
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_0001);
        let mut w = ByteWriter::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_f64().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }
}
