//! A persistent shard pool for fine-grained, allocation-free fan-out.
//!
//! [`ShardPool`] drives the sharded DRAM tick: every memory-bus cycle
//! the `System` fans the per-channel controller work out to a fixed set
//! of workers and barriers on their completion before touching the
//! results. That dispatch happens millions of times per simulated
//! second, so the usual scoped-thread-per-batch approach (used by the
//! sweep-level pool in `critmem::pool`, which spawns threads once per
//! *sweep cell*) is far too heavy here: this pool spawns its workers
//! once, then publishes each round of work with a single atomic
//! generation bump and collects it with a single counter — no
//! allocation, no channel, no thread spawn on the hot path.
//!
//! # Protocol
//!
//! Publishing (caller, [`ShardPool::run`]):
//! 1. write the erased task pointer (plain store; happens-before via 3),
//! 2. store `remaining = workers` (release),
//! 3. bump `generation` under the park mutex (release) and notify.
//!
//! Each worker spins briefly on `generation` (acquire), parking on the
//! condvar when a round does not arrive quickly; because the publisher
//! bumps the generation *under the same mutex* the workers wait on, a
//! wakeup can never be missed. On wakeup the worker runs the task with
//! its fixed shard index, then decrements `remaining` (release). The
//! caller runs shard 0 itself and spin-waits for `remaining == 0`
//! (acquire) before returning, which is what makes the lifetime erasure
//! of the task pointer sound: the borrow the pointer was made from is
//! still live for the entire window in which any worker can touch it —
//! including the unwinding path, which waits on the same barrier via a
//! drop guard.
//!
//! A worker panic is caught ([`std::panic::catch_unwind`]), recorded,
//! and re-raised on the caller's thread after the barrier, so a fault
//! inside one shard behaves exactly like a fault in a serial tick.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// An erased `&(dyn Fn(usize) + Sync)`: raw pointers carry no lifetime,
/// and [`ShardPool::run`] guarantees the referent outlives every use.
type Task = *const (dyn Fn(usize) + Sync);

/// Spin iterations before a waiter parks (worker) or yields (caller).
/// DRAM ticks arrive every ~4 CPU cycles of simulated time, so workers
/// in a hot loop should never actually park; the limit only bounds the
/// burn when the simulation goes quiet (skip-ahead, run teardown).
const SPIN_LIMIT: u32 = 4_096;

struct Shared {
    /// Round counter; bumped under `lock` to publish work or shutdown.
    generation: AtomicU64,
    /// Workers that have not yet finished the current round.
    remaining: AtomicUsize,
    /// Set (under `lock`, before the final bump) to terminate workers.
    shutdown: AtomicBool,
    /// Latched by any worker whose task panicked this round.
    panicked: AtomicBool,
    /// The current round's task. Written only by `run` (which holds
    /// `&mut self`, so rounds never overlap) before the generation bump;
    /// read by workers after observing the bump.
    task: UnsafeCell<Option<Task>>,
    lock: Mutex<()>,
    parked: Condvar,
}

// SAFETY: `task` holds a raw pointer that is only written while no
// worker is between a generation observation and its `remaining`
// decrement (enforced by `run(&mut self)` barriering on `remaining`),
// and only read after an acquire of the generation that published it.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// A fixed set of worker threads that repeatedly execute one shared
/// closure, each with its own shard index, with a barrier per round.
///
/// Shard 0 always runs on the calling thread; a pool created with
/// `shards` executes indices `0..shards` per round. See the module
/// docs for the publication protocol.
///
/// # Examples
///
/// ```
/// use critmem_common::pool::ShardPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let mut pool = ShardPool::new(4);
/// let hits = [const { AtomicU64::new(0) }; 4];
/// for round in 1..=100u64 {
///     pool.run(&|shard| {
///         hits[shard].fetch_add(1, Ordering::Relaxed);
///     });
///     // The barrier makes every shard's work visible here.
///     assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == round));
/// }
/// ```
pub struct ShardPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    shards: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.shards)
            .finish()
    }
}

/// Blocks until every worker has acknowledged the current round, even
/// when the caller's own shard panics and unwinds through `run`.
struct RoundBarrier<'a>(&'a Shared);

impl Drop for RoundBarrier<'_> {
    fn drop(&mut self) {
        let mut spins = 0u32;
        while self.0.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins > SPIN_LIMIT {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl ShardPool {
    /// Creates a pool executing `shards` shard indices per round:
    /// `shards - 1` worker threads plus the caller.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or a worker thread cannot be spawned.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a shard pool needs at least one shard");
        let shared = Arc::new(Shared {
            generation: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            task: UnsafeCell::new(None),
            lock: Mutex::new(()),
            parked: Condvar::new(),
        });
        let workers = (1..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("critmem-shard{shard}"))
                    .spawn(move || worker(&shared, shard))
                    .expect("failed to spawn shard worker")
            })
            .collect();
        ShardPool {
            shared,
            workers,
            shards,
        }
    }

    /// Number of shard indices executed per round.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Executes `f(shard)` for every shard index in `0..shards()`,
    /// returning once all have completed. Shard 0 runs on the calling
    /// thread. `&mut self` serializes rounds, which is what lets `f`
    /// borrow local state without `'static`.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any shard (after the barrier, so the
    /// other shards still complete their work first).
    pub fn run(&mut self, f: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() {
            f(0);
            return;
        }
        let shared = &*self.shared;
        // SAFETY (write): rounds are serialized by `&mut self` and the
        // previous round's workers all decremented `remaining` before
        // its barrier released, so no worker can be reading `task` now.
        // The transmute only erases the borrow's lifetime; the barrier
        // below keeps the referent alive for every possible use.
        let task: Task =
            unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), Task>(f) };
        unsafe { *shared.task.get() = Some(task) };
        shared
            .remaining
            .store(self.workers.len(), Ordering::Release);
        {
            let _held = shared.lock.lock().expect("shard pool mutex poisoned");
            shared.generation.fetch_add(1, Ordering::Release);
        }
        shared.parked.notify_all();
        {
            let _barrier = RoundBarrier(shared);
            f(0);
            // `_barrier` drops here, waiting out the workers whether or
            // not `f(0)` unwound.
        }
        if shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("a shard pool worker panicked");
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _held = self.shared.lock.lock().expect("shard pool mutex poisoned");
            self.shared.generation.fetch_add(1, Ordering::Release);
        }
        self.shared.parked.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside `catch_unwind` is already
            // accounted for; joining only reaps the thread.
            let _ = handle.join();
        }
    }
}

fn worker(shared: &Shared, shard: usize) {
    let mut seen = 0u64;
    loop {
        // Spin briefly for the next round, then park.
        let mut spins = 0u32;
        let current = loop {
            let g = shared.generation.load(Ordering::Acquire);
            if g != seen {
                break g;
            }
            spins += 1;
            if spins > SPIN_LIMIT {
                let mut held = shared.lock.lock().expect("shard pool mutex poisoned");
                while shared.generation.load(Ordering::Acquire) == seen {
                    held = shared.parked.wait(held).expect("shard pool mutex poisoned");
                }
            }
        };
        seen = current;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY (read): the acquire load of `generation` above
        // synchronizes with the release bump in `run`, which wrote the
        // pointer first; the referent stays alive until our `remaining`
        // decrement below releases the caller's barrier.
        let task = unsafe { (*shared.task.get()).expect("round published without a task") };
        if catch_unwind(AssertUnwindSafe(|| (unsafe { &*task })(shard))).is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.remaining.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_shard_runs_inline() {
        let mut pool = ShardPool::new(1);
        assert_eq!(pool.shards(), 1);
        let mut hits = 0u32;
        let cell = Mutex::new(&mut hits);
        pool.run(&|shard| {
            assert_eq!(shard, 0);
            **cell.lock().unwrap() += 1;
        });
        let _ = cell;
        assert_eq!(hits, 1);
    }

    #[test]
    fn every_shard_runs_exactly_once_per_round() {
        let mut pool = ShardPool::new(5);
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        for round in 1..=1_000u64 {
            pool.run(&|shard| {
                hits[shard].fetch_add(1, Ordering::Relaxed);
            });
            for (shard, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), round, "shard {shard}");
            }
        }
    }

    /// The barrier publishes plain (non-atomic) writes made through
    /// disjoint `&mut` chunks — the exact shape of the sharded DRAM
    /// tick.
    #[test]
    fn barrier_publishes_disjoint_mutable_chunks() {
        let mut pool = ShardPool::new(4);
        let mut data = vec![0u64; 64];
        for round in 1..=200u64 {
            let mut rest = data.as_mut_slice();
            let mut chunks: Vec<Mutex<&mut [u64]>> = Vec::new();
            for _ in 0..4 {
                let (head, tail) = rest.split_at_mut(16);
                chunks.push(Mutex::new(head));
                rest = tail;
            }
            pool.run(&|shard| {
                for v in chunks[shard].lock().unwrap().iter_mut() {
                    *v += 1;
                }
            });
            drop(chunks);
            assert!(data.iter().all(|&v| v == round), "round {round}");
        }
    }

    #[test]
    fn worker_panic_is_reraised_after_the_barrier() {
        let mut pool = ShardPool::new(3);
        let done = [const { AtomicU64::new(0) }; 3];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|shard| {
                if shard == 1 {
                    panic!("injected shard fault");
                }
                done[shard].fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // The non-faulting shards still completed their round.
        assert_eq!(done[0].load(Ordering::Relaxed), 1);
        assert_eq!(done[2].load(Ordering::Relaxed), 1);
        // The pool is reusable after a fault.
        pool.run(&|shard| {
            done[shard].fetch_add(1, Ordering::Relaxed);
        });
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn workers_park_and_wake_across_idle_gaps() {
        let mut pool = ShardPool::new(2);
        let hits = AtomicU64::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // Long enough for the worker to exhaust its spin budget and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ShardPool::new(4);
        drop(pool); // must not hang
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = ShardPool::new(0);
    }
}
