//! The memory-request descriptor and the criticality annotation it
//! carries.
//!
//! In the paper, when a load predicted critical misses in the L2, the
//! criticality bits read from the Commit Block Predictor (CBP) are
//! piggybacked onto the request over a slightly widened address bus
//! (§3.2, Table 5). [`Criticality`] models those bits; [`MemRequest`]
//! is the request as the DRAM transaction queue sees it.

use crate::ids::{ChannelId, CoreId};
use crate::{CpuCycle, PhysAddr};
use std::fmt;

/// Globally unique request identifier, assigned at L2-miss time.
pub type ReqId = u64;

/// What kind of DRAM transaction a request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Demand read (load miss or instruction-fetch miss).
    Read,
    /// Write-back of a dirty line evicted from the L2.
    Write,
    /// Prefetcher-generated read; serviced at the lowest priority.
    Prefetch,
}

impl AccessKind {
    /// `true` for transactions that move data from DRAM to the chip
    /// (demand reads and prefetches).
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Prefetch)
    }

    /// `true` only for demand reads — the requests a blocked ROB is
    /// actually waiting on.
    #[inline]
    pub fn is_demand_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Prefetch => "prefetch",
        };
        f.write_str(s)
    }
}

/// The criticality annotation supplied by the processor-side predictor.
///
/// The paper's schedulers prepend the criticality *magnitude* to the
/// age comparator in the FR-FCFS arbiter (upper bits), so requests are
/// ordered first by magnitude and only then by age. A `Binary`
/// prediction is simply magnitude 1; the ranked CBP metrics
/// (BlockCount, LastStallTime, MaxStallTime, TotalStallTime) supply
/// wider magnitudes (Table 5: up to 27 bits).
///
/// # Examples
///
/// ```
/// use critmem_common::Criticality;
///
/// let none = Criticality::non_critical();
/// let binary = Criticality::binary();
/// let ranked = Criticality::ranked(13_475);
/// assert!(!none.is_critical());
/// assert!(binary.is_critical());
/// assert!(ranked.magnitude() > binary.magnitude());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Criticality {
    magnitude: u64,
}

impl Criticality {
    /// A request with no criticality flag (the common case).
    #[inline]
    pub fn non_critical() -> Self {
        Criticality { magnitude: 0 }
    }

    /// A binary "critical" flag, as produced by the 1-bit Binary CBP.
    #[inline]
    pub fn binary() -> Self {
        Criticality { magnitude: 1 }
    }

    /// A ranked criticality magnitude (block count or stall cycles).
    /// A magnitude of zero is, by definition, non-critical.
    #[inline]
    pub fn ranked(magnitude: u64) -> Self {
        Criticality { magnitude }
    }

    /// Whether the request was flagged critical at all.
    #[inline]
    pub fn is_critical(self) -> bool {
        self.magnitude > 0
    }

    /// The magnitude the scheduler prepends to the age comparator.
    #[inline]
    pub fn magnitude(self) -> u64 {
        self.magnitude
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_critical() {
            write!(f, "crit({})", self.magnitude)
        } else {
            f.write_str("non-crit")
        }
    }
}

/// A memory request as it travels from an L2 miss to a DRAM channel's
/// transaction queue and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Globally unique id; completion is reported by id.
    pub id: ReqId,
    /// Physical address of the 64 B line.
    pub addr: PhysAddr,
    /// Read, write-back, or prefetch.
    pub kind: AccessKind,
    /// The core (== thread) that generated the request. Write-backs
    /// carry the id of the core whose eviction triggered them.
    pub core: CoreId,
    /// Criticality annotation from the processor-side predictor.
    pub crit: Criticality,
    /// CPU cycle at which the request left the L2 for the memory
    /// controller; used for latency accounting.
    pub issued_at: CpuCycle,
}

impl MemRequest {
    /// Creates a non-critical request.
    pub fn new(id: ReqId, addr: PhysAddr, kind: AccessKind, core: CoreId) -> Self {
        MemRequest {
            id,
            addr,
            kind,
            core,
            crit: Criticality::non_critical(),
            issued_at: 0,
        }
    }

    /// Attaches a criticality annotation (builder style).
    #[must_use]
    pub fn with_criticality(mut self, crit: Criticality) -> Self {
        self.crit = crit;
        self
    }

    /// Stamps the CPU cycle at which the request entered the memory
    /// system (builder style).
    #[must_use]
    pub fn with_issue_cycle(mut self, cycle: CpuCycle) -> Self {
        self.issued_at = cycle;
        self
    }

    /// Serializes for checkpoint artifacts.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.id);
        w.put_u64(self.addr);
        w.put_u8(match self.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::Prefetch => 2,
        });
        w.put_u8(self.core.0);
        w.put_u64(self.crit.magnitude());
        w.put_u64(self.issued_at);
    }

    /// Deserializes a checkpointed request.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream or an unknown access-kind tag.
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let id = r.get_u64()?;
        let addr = r.get_u64()?;
        let kind_at = r.position();
        let kind = match r.get_u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::Prefetch,
            n => {
                return Err(crate::codec::CodecError {
                    message: format!("unknown access kind tag {n}"),
                    offset: kind_at,
                })
            }
        };
        let core = CoreId(r.get_u8()?);
        let crit = Criticality::ranked(r.get_u64()?);
        let issued_at = r.get_u64()?;
        Ok(MemRequest {
            id,
            addr,
            kind,
            core,
            crit,
            issued_at,
        })
    }
}

/// Observer of requests crossing the LLC-miss boundary into the DRAM
/// transaction queues.
///
/// This is the seam the trace-capture subsystem (and future
/// observability hooks) attach to. The system model is generic over the
/// observer type, so the no-op implementation on `()` compiles away
/// entirely — execution-driven runs without a sink pay nothing.
pub trait RequestObserver {
    /// Called once per request, at the CPU cycle on which it was
    /// accepted into a DRAM channel's transaction queue.
    fn on_enqueue(&mut self, now: CpuCycle, req: &MemRequest);
}

/// The disabled observer: every call is a no-op the optimizer removes.
impl RequestObserver for () {
    #[inline(always)]
    fn on_enqueue(&mut self, _now: CpuCycle, _req: &MemRequest) {}
}

impl<O: RequestObserver> RequestObserver for Option<O> {
    #[inline]
    fn on_enqueue(&mut self, now: CpuCycle, req: &MemRequest) {
        if let Some(obs) = self {
            obs.on_enqueue(now, req);
        }
    }
}

/// Completion notification delivered by the DRAM subsystem back to the
/// cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Which request finished.
    pub id: ReqId,
    /// The channel that serviced it.
    pub channel: ChannelId,
    /// CPU cycle at which the data burst finished.
    pub finished_at: CpuCycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criticality_ordering_follows_magnitude() {
        let a = Criticality::non_critical();
        let b = Criticality::binary();
        let c = Criticality::ranked(100);
        assert!(a < b && b < c);
    }

    #[test]
    fn zero_ranked_is_non_critical() {
        assert!(!Criticality::ranked(0).is_critical());
        assert_eq!(Criticality::ranked(0), Criticality::non_critical());
    }

    #[test]
    fn access_kind_read_classification() {
        assert!(AccessKind::Read.is_read());
        assert!(AccessKind::Prefetch.is_read());
        assert!(!AccessKind::Write.is_read());
        assert!(AccessKind::Read.is_demand_read());
        assert!(!AccessKind::Prefetch.is_demand_read());
    }

    #[test]
    fn request_builders_compose() {
        let r = MemRequest::new(7, 0x1000, AccessKind::Read, CoreId(1))
            .with_criticality(Criticality::ranked(42))
            .with_issue_cycle(99);
        assert_eq!(r.id, 7);
        assert_eq!(r.crit.magnitude(), 42);
        assert_eq!(r.issued_at, 99);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Criticality::non_critical().to_string(), "non-crit");
        assert_eq!(Criticality::ranked(9).to_string(), "crit(9)");
        assert_eq!(AccessKind::Prefetch.to_string(), "prefetch");
    }
}
