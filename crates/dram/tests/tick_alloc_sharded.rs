//! Regression test: the *sharded* steady-state tick path performs zero
//! heap allocations — the shard pool's dispatch (publish, wake, run,
//! barrier) must be as allocation-free as the serial tick it replaces.
//!
//! This file must hold exactly one test — the counting allocator is
//! process-global, so a concurrently running test would perturb the
//! counts (see `tick_alloc.rs`, the serial twin of this probe).

use critmem_common::alloc_probe::CountingAllocator;
use critmem_common::{AccessKind, CoreId, Criticality, MemRequest, ShardPool};
use critmem_dram::{DramConfig, DramSystem, Fcfs};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn enqueue(dram: &mut DramSystem, id: u64) {
    // Spread across rows, banks, and channels so every shard's chunk
    // stays busy.
    let addr = (id % 96) * 4 * 1024 + (id % 16) * 64;
    let req = MemRequest::new(id, addr, AccessKind::Read, CoreId((id % 8) as u8)).with_criticality(
        if id.is_multiple_of(3) {
            Criticality::ranked(id * 10)
        } else {
            Criticality::non_critical()
        },
    );
    let _ = dram.enqueue(req);
}

#[test]
fn steady_state_sharded_tick_is_allocation_free() {
    let cfg = DramConfig::paper_baseline();
    let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
    let mut pool = ShardPool::new(2);
    let mut next_id = 0u64;
    for _ in 0..96 {
        enqueue(&mut dram, next_id);
        next_id += 1;
    }
    // Warm up: grow every scratch buffer (per-shard completion
    // buffers, candidates, refresh ranks, the merged completion list)
    // and let the worker threads touch their lazily initialized
    // parking primitives. 20k ticks covers multiple refresh intervals.
    for _ in 0..20_000u64 {
        let completed = dram.tick_sharded(&mut pool).len();
        for _ in 0..completed {
            enqueue(&mut dram, next_id);
            next_id += 1;
        }
    }
    let completed_before: u64 = dram.channel_stats().iter().map(|c| c.reads_completed).sum();

    ALLOC.reset();
    for _ in 0..20_000u64 {
        let completed = dram.tick_sharded(&mut pool).len();
        for _ in 0..completed {
            enqueue(&mut dram, next_id);
            next_id += 1;
        }
    }
    let allocs = ALLOC.allocations();

    // The loop did real work (thousands of completions) ...
    let completed_after: u64 = dram.channel_stats().iter().map(|c| c.reads_completed).sum();
    assert!(
        completed_after > completed_before + 1_000,
        "hot loop serviced too few reads to be a meaningful probe"
    );
    // ... yet never touched the heap, on any thread.
    assert_eq!(
        allocs,
        0,
        "steady-state tick_sharded allocated {allocs} times ({} bytes)",
        ALLOC.bytes()
    );
}
