//! Regression test: the controller's steady-state tick path performs
//! zero heap allocations.
//!
//! This file must hold exactly one test — the counting allocator is
//! process-global, so a concurrently running test would perturb the
//! counts.

use critmem_common::alloc_probe::CountingAllocator;
use critmem_common::{AccessKind, ChannelId, CoreId, Criticality, MemRequest};
use critmem_dram::{AddressMapping, ChannelController, DramConfig, Fcfs, Interleaving};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn enqueue(ctl: &mut ChannelController, map: &AddressMapping, id: u64) {
    let addr = (id % 24) * 4 * 1024 + (id % 16) * 64;
    let req = MemRequest::new(id, addr, AccessKind::Read, CoreId((id % 8) as u8)).with_criticality(
        if id.is_multiple_of(3) {
            Criticality::ranked(id * 10)
        } else {
            Criticality::non_critical()
        },
    );
    let _ = ctl.enqueue(req, map.locate(addr));
}

#[test]
fn steady_state_tick_is_allocation_free() {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
    let mut next_id = 0u64;
    for _ in 0..48 {
        enqueue(&mut ctl, &map, next_id);
        next_id += 1;
    }
    // Warm up: grow every scratch buffer (candidates, refresh ranks,
    // in-flight bookkeeping, completion buffer) to steady-state size.
    // 20k ticks covers multiple refresh intervals (tREFI = 8,328).
    let mut done = Vec::with_capacity(16);
    for _ in 0..20_000u64 {
        done.clear();
        ctl.tick_into(&mut done);
        for _ in &done {
            enqueue(&mut ctl, &map, next_id);
            next_id += 1;
        }
    }
    let completed_before = ctl.stats().reads_completed;

    ALLOC.reset();
    for _ in 0..20_000u64 {
        done.clear();
        ctl.tick_into(&mut done);
        for _ in &done {
            enqueue(&mut ctl, &map, next_id);
            next_id += 1;
        }
    }
    let allocs = ALLOC.allocations();

    // The loop did real work (thousands of completions) ...
    assert!(
        ctl.stats().reads_completed > completed_before + 1_000,
        "hot loop serviced too few reads to be a meaningful probe"
    );
    // ... yet never touched the heap.
    assert_eq!(
        allocs,
        0,
        "steady-state tick_into allocated {allocs} times ({} bytes)",
        ALLOC.bytes()
    );
}
