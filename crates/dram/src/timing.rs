//! DDR3 timing parameters and device presets.
//!
//! The baseline preset reproduces Table 3 of the paper (Micron
//! DDR3-2133, quad-rank, eight banks per rank, 1 KB row buffer, burst
//! length 8). DDR3-1600 and DDR3-1066 presets support the Figure 8 rank
//! sweep and the paper's note that trends hold on slower parts.
//!
//! All parameters are in DRAM (bus) clock cycles. A DDR3-2133 part runs
//! its bus at 1,066 MHz and transfers data on both edges.

/// The set of JEDEC-style timing constraints the bank state machines
/// enforce, in DRAM cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT to internal read/write (RAS-to-CAS delay).
    pub t_rcd: u64,
    /// CAS latency: READ to first data beat.
    pub t_cl: u64,
    /// Write latency: WRITE to first data beat.
    pub t_wl: u64,
    /// CAS-to-CAS delay (same rank).
    pub t_ccd: u64,
    /// Write-to-read turnaround (same rank), from end of write data.
    pub t_wtr: u64,
    /// Write recovery: end of write data to PRECHARGE.
    pub t_wr: u64,
    /// READ to PRECHARGE.
    pub t_rtp: u64,
    /// PRECHARGE to ACT (row precharge time).
    pub t_rp: u64,
    /// ACT to ACT, different banks of the same rank.
    pub t_rrd: u64,
    /// Four-activate window: at most four ACTs to one rank within this
    /// many cycles (rolling window). `0` disables the constraint.
    pub t_faw: u64,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: u64,
    /// ACT to PRECHARGE (row active time).
    pub t_ras: u64,
    /// ACT to ACT, same bank (row cycle time).
    pub t_rc: u64,
    /// REFRESH cycle time (rank busy after REF).
    pub t_rfc: u64,
    /// Average refresh interval: 8,192 refresh commands every 64 ms.
    pub t_refi: u64,
    /// Burst length in bus transfers (8 for DDR3); data occupies the
    /// bus for `burst_len / 2` DRAM cycles.
    pub burst_len: u64,
}

impl TimingParams {
    /// Number of DRAM cycles one data burst occupies the bus.
    #[inline]
    pub fn burst_cycles(&self) -> u64 {
        self.burst_len / 2
    }

    /// Validates internal consistency (e.g. `tRAS + tRP <= tRC` is the
    /// usual JEDEC relation, `tRC >= tRAS`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras {
            return Err(format!(
                "tRC ({}) must be >= tRAS ({})",
                self.t_rc, self.t_ras
            ));
        }
        if self.burst_len == 0 || !self.burst_len.is_multiple_of(2) {
            return Err(format!(
                "burst length ({}) must be a positive even number",
                self.burst_len
            ));
        }
        if self.t_refi <= self.t_rfc {
            return Err(format!(
                "tREFI ({}) must exceed tRFC ({})",
                self.t_refi, self.t_rfc
            ));
        }
        if self.t_faw != 0 && self.t_faw < self.t_rrd * 3 {
            // Four ACTs spaced at tRRD already span 3*tRRD; a shorter
            // tFAW would never bind and almost certainly a typo.
            return Err(format!(
                "tFAW ({}) must be 0 or >= 3*tRRD ({})",
                self.t_faw,
                self.t_rrd * 3
            ));
        }
        for (name, v) in [
            ("tRCD", self.t_rcd),
            ("tCL", self.t_cl),
            ("tWL", self.t_wl),
            ("tCCD", self.t_ccd),
            ("tRP", self.t_rp),
            ("tRAS", self.t_ras),
        ] {
            if v == 0 {
                return Err(format!("{name} must be nonzero"));
            }
        }
        Ok(())
    }
}

/// A DDR3 speed grade with its bus frequency and timing set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePreset {
    /// Human-readable name, e.g. `"DDR3-2133"`.
    pub name: &'static str,
    /// Bus (command) clock in MHz; the data rate is twice this.
    pub bus_mhz: u64,
    /// Timing constraints at this speed grade.
    pub timing: TimingParams,
}

/// Micron DDR3-2133 exactly as listed in Table 3 of the paper.
pub const DDR3_2133: DevicePreset = DevicePreset {
    name: "DDR3-2133",
    bus_mhz: 1_066,
    timing: TimingParams {
        t_rcd: 14,
        t_cl: 14,
        t_wl: 7,
        t_ccd: 4,
        t_wtr: 8,
        t_wr: 16,
        t_rtp: 8,
        t_rp: 14,
        t_rrd: 6,
        // ~40 ns four-activate window at 1,066 MHz (2 KB-page DDR3).
        t_faw: 43,
        t_rtrs: 2,
        t_ras: 36,
        t_rc: 50,
        t_rfc: 118,
        // 64 ms / 8,192 refreshes = 7.8125 us; at 1,066 MHz that is
        // 8,328 DRAM cycles.
        t_refi: 8_328,
        burst_len: 8,
    },
};

/// DDR3-1600 (800 MHz bus), scaled from the same Micron part family.
pub const DDR3_1600: DevicePreset = DevicePreset {
    name: "DDR3-1600",
    bus_mhz: 800,
    timing: TimingParams {
        t_rcd: 11,
        t_cl: 11,
        t_wl: 6,
        t_ccd: 4,
        t_wtr: 6,
        t_wr: 12,
        t_rtp: 6,
        t_rp: 11,
        t_rrd: 5,
        t_faw: 32,
        t_rtrs: 2,
        t_ras: 28,
        t_rc: 39,
        t_rfc: 88,
        t_refi: 6_250,
        burst_len: 8,
    },
};

/// DDR3-1066 (533 MHz bus) — the speed grade the original MORSE design
/// targeted; the paper reports its trends hold here too.
pub const DDR3_1066: DevicePreset = DevicePreset {
    name: "DDR3-1066",
    bus_mhz: 533,
    timing: TimingParams {
        t_rcd: 7,
        t_cl: 7,
        t_wl: 4,
        t_ccd: 4,
        t_wtr: 4,
        t_wr: 8,
        t_rtp: 4,
        t_rp: 7,
        t_rrd: 4,
        t_faw: 21,
        t_rtrs: 2,
        t_ras: 20,
        t_rc: 27,
        t_rfc: 59,
        t_refi: 4_164,
        burst_len: 8,
    },
};

/// Looks a preset up by name (`"DDR3-2133"`, `"DDR3-1600"`,
/// `"DDR3-1066"`). Returns `None` for unknown names.
pub fn preset_by_name(name: &str) -> Option<DevicePreset> {
    match name {
        "DDR3-2133" => Some(DDR3_2133),
        "DDR3-1600" => Some(DDR3_1600),
        "DDR3-1066" => Some(DDR3_1066),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [DDR3_2133, DDR3_1600, DDR3_1066] {
            p.timing
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn table3_values() {
        let t = DDR3_2133.timing;
        assert_eq!(t.t_rcd, 14);
        assert_eq!(t.t_cl, 14);
        assert_eq!(t.t_wl, 7);
        assert_eq!(t.t_ccd, 4);
        assert_eq!(t.t_wtr, 8);
        assert_eq!(t.t_wr, 16);
        assert_eq!(t.t_rtp, 8);
        assert_eq!(t.t_rp, 14);
        assert_eq!(t.t_rrd, 6);
        assert_eq!(t.t_faw, 43);
        assert_eq!(t.t_rtrs, 2);
        assert_eq!(t.t_ras, 36);
        assert_eq!(t.t_rc, 50);
        assert_eq!(t.t_rfc, 118);
        assert_eq!(t.burst_len, 8);
        assert_eq!(DDR3_2133.bus_mhz, 1_066);
    }

    #[test]
    fn burst_occupies_four_cycles() {
        assert_eq!(DDR3_2133.timing.burst_cycles(), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(preset_by_name("DDR3-2133"), Some(DDR3_2133));
        assert_eq!(preset_by_name("DDR3-1600"), Some(DDR3_1600));
        assert_eq!(preset_by_name("DDR4-3200"), None);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut t = DDR3_2133.timing;
        t.t_rc = 10; // < tRAS
        assert!(t.validate().is_err());
        let mut t = DDR3_2133.timing;
        t.burst_len = 7;
        assert!(t.validate().is_err());
        let mut t = DDR3_2133.timing;
        t.t_refi = 100; // < tRFC
        assert!(t.validate().is_err());
        let mut t = DDR3_2133.timing;
        t.t_rcd = 0;
        assert!(t.validate().is_err());
        let mut t = DDR3_2133.timing;
        t.t_faw = t.t_rrd; // nonzero but below 3*tRRD
        assert!(t.validate().is_err());
        t.t_faw = 0; // disabled is fine
        assert!(t.validate().is_ok());
    }

    #[test]
    fn faw_window_binds_beyond_rrd_spacing() {
        // tFAW only matters if it exceeds the span of four tRRD-spaced
        // ACTs (3*tRRD); all presets should actually bind.
        for p in [DDR3_2133, DDR3_1600, DDR3_1066] {
            assert!(p.timing.t_faw > 3 * p.timing.t_rrd, "{}", p.name);
        }
    }

    #[test]
    fn refresh_interval_is_64ms_over_8192() {
        // 7.8125 us at 1,066 MHz.
        let expect = (7.8125e-6 * 1_066e6) as u64;
        assert!((DDR3_2133.timing.t_refi as i64 - expect as i64).abs() <= 2);
    }
}
