//! Independent shadow-state protocol auditor.
//!
//! [`ProtocolAuditor`] keeps its own per-bank/per-rank command history
//! — separate from the [`ChannelTiming`]
//! state machine the controller schedules against — and re-derives the
//! legality of every issued command directly from the raw timing table
//! (tRCD/tRP/tRAS/tRC/tCCD/tRRD/tFAW/tWTR/tWR/tRTP/tRFC, data-bus
//! occupancy, refresh-interval bounds) plus bank-state rules (ACT only
//! on a precharged bank, CAS only on the matching open row). Because it
//! never reads the model's `next_*` floors, a bug that corrupts them —
//! or an injected fault that bypasses them — surfaces as a typed
//! [`AuditSnapshot`] instead of silently skewing a figure.
//!
//! The auditor is deliberately *optimistic about unseen history*: every
//! `last_*` field starts as `None`, meaning "no constraint recorded".
//! That makes mid-run attachment (checkpoint warm-start) safe — open
//! rows are seeded from the live state, timing floors accumulate from
//! the first observed command — at the cost of not validating the first
//! command of each class per bank. A clean run must produce **zero**
//! violations; the property tests in `critmem` certify that across the
//! whole scheduler zoo.

use crate::bank::ChannelTiming;
use crate::command::{CommandKind, DramCommand};
use crate::timing::TimingParams;
use critmem_common::{AuditSnapshot, DramCycle, RankId};

/// Shadow history of one bank: when each command class last issued.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowBank {
    open_row: Option<u32>,
    last_act: Option<DramCycle>,
    last_pre: Option<DramCycle>,
    last_rd: Option<DramCycle>,
    last_wr: Option<DramCycle>,
}

/// Shadow history of one rank: cross-bank constraints.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowRank {
    /// Ring of the last four ACT cycles (tFAW window).
    faw_acts: [DramCycle; 4],
    faw_idx: u8,
    faw_count: u8,
    last_act: Option<DramCycle>,
    last_rd: Option<DramCycle>,
    last_wr: Option<DramCycle>,
    last_refresh: Option<DramCycle>,
}

/// An independent per-channel DDR3 protocol checker.
///
/// Call [`observe`](Self::observe) for every command the controller
/// issues; the first violated invariant is captured as an
/// [`AuditSnapshot`] (later commands are still tracked so state stays
/// coherent, but only the first violation is reported — it is the root
/// cause). Call [`finish`](Self::finish) at end of run for the
/// refresh-interval liveness bound.
#[derive(Debug, Clone)]
pub struct ProtocolAuditor {
    channel: u16,
    timing: TimingParams,
    banks: Vec<ShadowBank>,
    ranks: Vec<ShadowRank>,
    banks_per_rank: usize,
    /// Channel-wide data-bus shadow: cycle the bus frees up, and which
    /// rank last drove it (rank switches pay tRTRS).
    bus_free: DramCycle,
    last_data_rank: Option<RankId>,
    /// Whether to enforce the refresh-interval upper bound (off when
    /// the configuration disables refresh entirely).
    check_refresh_interval: bool,
    attach_at: DramCycle,
    last_observed: DramCycle,
    violation: Option<Box<AuditSnapshot>>,
}

/// How far a rank may run past its nominal tREFI before the auditor
/// flags the refresh cadence, in multiples of tREFI. JEDEC permits
/// postponing up to eight refresh commands; nine intervals is therefore
/// the loosest legal gap.
const REFRESH_SLACK: u64 = 9;

impl ProtocolAuditor {
    /// Creates an auditor for a `ranks` x `banks_per_rank` channel with
    /// no recorded history (every constraint starts inactive).
    pub fn new(
        channel: u16,
        ranks: usize,
        banks_per_rank: usize,
        timing: TimingParams,
        check_refresh_interval: bool,
    ) -> Self {
        ProtocolAuditor {
            channel,
            timing,
            banks: vec![ShadowBank::default(); ranks * banks_per_rank],
            ranks: vec![ShadowRank::default(); ranks],
            banks_per_rank,
            bus_free: 0,
            last_data_rank: None,
            check_refresh_interval,
            attach_at: 0,
            last_observed: 0,
            violation: None,
        }
    }

    /// Seeds the shadow open-row state from the live timing state and
    /// records the attach cycle. Required when attaching mid-run (e.g.
    /// after a checkpoint restore): CAS/PRE legality depends on which
    /// rows are open *now*, which no future command reveals.
    pub fn attach(&mut self, live: &ChannelTiming, now: DramCycle) {
        for (rank, bank, b) in live.banks() {
            let i = rank.index() * self.banks_per_rank + bank.index();
            self.banks[i].open_row = b.open_row;
        }
        self.attach_at = now;
        self.last_observed = now;
    }

    /// The first violation recorded, if any.
    pub fn violation(&self) -> Option<&AuditSnapshot> {
        self.violation.as_deref()
    }

    /// Removes and returns the first recorded violation.
    pub fn take_violation(&mut self) -> Option<Box<AuditSnapshot>> {
        self.violation.take()
    }

    fn flag(&mut self, now: DramCycle, what: String) {
        if self.violation.is_none() {
            self.violation = Some(Box::new(AuditSnapshot {
                auditor: "protocol",
                what,
                cycle: now,
                channel: Some(self.channel),
            }));
        }
    }

    /// Checks `now >= since + gap` for an optional history point.
    fn check_gap(&mut self, now: DramCycle, since: Option<DramCycle>, gap: u64, what: &str) {
        if let Some(s) = since {
            let floor = s.saturating_add(gap);
            if now < floor {
                self.flag(
                    now,
                    format!("{what}: issued at {now}, earliest legal {floor} (prev {s})"),
                );
            }
        }
    }

    /// Validates and records one issued command.
    pub fn observe(&mut self, cmd: &DramCommand, now: DramCycle) {
        if now < self.last_observed {
            self.flag(
                now,
                format!(
                    "clock ran backwards: observed cycle {now} after {}",
                    self.last_observed
                ),
            );
        }
        self.last_observed = self.last_observed.max(now);
        let t = self.timing;
        let bl = t.burst_cycles();
        let r = cmd.rank.index();
        let bi = r * self.banks_per_rank + cmd.bank.index();
        match cmd.kind {
            CommandKind::Activate => {
                if let Some(row) = self.banks[bi].open_row {
                    self.flag(
                        now,
                        format!(
                            "ACT to rank {r} bank {} with row {row} already open",
                            cmd.bank.index()
                        ),
                    );
                }
                let b = self.banks[bi];
                let rk = self.ranks[r];
                self.check_gap(now, b.last_act, t.t_rc, "tRC (ACT-to-ACT, same bank)");
                self.check_gap(now, b.last_pre, t.t_rp, "tRP (PRE-to-ACT)");
                self.check_gap(now, rk.last_act, t.t_rrd, "tRRD (ACT-to-ACT, same rank)");
                self.check_gap(now, rk.last_refresh, t.t_rfc, "tRFC (REF-to-ACT)");
                if t.t_faw > 0 && rk.faw_count >= 4 {
                    let oldest = rk.faw_acts[rk.faw_idx as usize];
                    if now < oldest + t.t_faw {
                        self.flag(
                            now,
                            format!(
                                "tFAW: fifth ACT to rank {r} at {now}, window opened at {oldest}, \
                                 earliest legal {}",
                                oldest + t.t_faw
                            ),
                        );
                    }
                }
                let rk = &mut self.ranks[r];
                rk.faw_acts[rk.faw_idx as usize] = now;
                rk.faw_idx = (rk.faw_idx + 1) % 4;
                rk.faw_count = (rk.faw_count + 1).min(4);
                rk.last_act = Some(now);
                let b = &mut self.banks[bi];
                b.open_row = Some(cmd.row);
                b.last_act = Some(now);
            }
            CommandKind::Precharge => {
                if self.banks[bi].open_row.is_none() {
                    self.flag(
                        now,
                        format!(
                            "PRE to rank {r} bank {} which is already precharged",
                            cmd.bank.index()
                        ),
                    );
                }
                let b = self.banks[bi];
                self.check_gap(now, b.last_act, t.t_ras, "tRAS (ACT-to-PRE)");
                self.check_gap(now, b.last_rd, t.t_rtp, "tRTP (RD-to-PRE)");
                self.check_gap(now, b.last_wr, t.t_wl + bl + t.t_wr, "tWR (WR-to-PRE)");
                let b = &mut self.banks[bi];
                b.open_row = None;
                b.last_pre = Some(now);
            }
            CommandKind::Read | CommandKind::Write => {
                if self.banks[bi].open_row != Some(cmd.row) {
                    self.flag(
                        now,
                        format!(
                            "{:?} to rank {r} bank {} row {}, but open row is {:?}",
                            cmd.kind,
                            cmd.bank.index(),
                            cmd.row,
                            self.banks[bi].open_row
                        ),
                    );
                }
                let b = self.banks[bi];
                let rk = self.ranks[r];
                self.check_gap(now, b.last_act, t.t_rcd, "tRCD (ACT-to-CAS)");
                if cmd.kind == CommandKind::Read {
                    self.check_gap(now, rk.last_rd, t.t_ccd, "tCCD (RD-to-RD, same rank)");
                    self.check_gap(
                        now,
                        rk.last_wr,
                        t.t_wl + bl + t.t_wtr,
                        "tWTR (WR-to-RD, same rank)",
                    );
                } else {
                    self.check_gap(now, rk.last_wr, t.t_ccd, "tCCD (WR-to-WR, same rank)");
                    self.check_gap(
                        now,
                        rk.last_rd,
                        (t.t_cl + bl + t.t_rtrs).saturating_sub(t.t_wl),
                        "RD-to-WR turnaround (same rank)",
                    );
                }
                // Shared data bus: the burst must start after the bus
                // frees (plus tRTRS on a rank switch) and then owns it.
                let data_lat = if cmd.kind == CommandKind::Read {
                    t.t_cl
                } else {
                    t.t_wl
                };
                let mut bus_ready = self.bus_free;
                if let Some(last) = self.last_data_rank {
                    if last != cmd.rank {
                        bus_ready += t.t_rtrs;
                    }
                }
                let data_start = now + data_lat;
                if data_start < bus_ready {
                    self.flag(
                        now,
                        format!(
                            "data-bus overlap: burst starts at {data_start}, bus busy until {bus_ready}"
                        ),
                    );
                }
                self.bus_free = self.bus_free.max(data_start + bl);
                self.last_data_rank = Some(cmd.rank);
                let rk = &mut self.ranks[r];
                if cmd.kind == CommandKind::Read {
                    rk.last_rd = Some(now);
                    self.banks[bi].last_rd = Some(now);
                } else {
                    rk.last_wr = Some(now);
                    self.banks[bi].last_wr = Some(now);
                }
            }
            CommandKind::Refresh => {
                let base = r * self.banks_per_rank;
                for (j, b) in self.banks[base..base + self.banks_per_rank]
                    .iter()
                    .enumerate()
                {
                    if let Some(row) = b.open_row {
                        self.flag(
                            now,
                            format!("REF to rank {r} with bank {j} open (row {row})"),
                        );
                        break;
                    }
                }
                for j in 0..self.banks_per_rank {
                    let b = self.banks[base + j];
                    self.check_gap(now, b.last_pre, t.t_rp, "tRP (PRE-to-REF)");
                    self.check_gap(now, b.last_act, t.t_rc, "tRC (ACT-to-REF)");
                }
                let rk = self.ranks[r];
                self.check_gap(now, rk.last_refresh, t.t_rfc, "tRFC (REF-to-REF)");
                if self.check_refresh_interval {
                    let since = rk.last_refresh.unwrap_or(self.attach_at);
                    let bound = REFRESH_SLACK * t.t_refi;
                    if now.saturating_sub(since) > bound {
                        self.flag(
                            now,
                            format!(
                                "refresh interval exceeded on rank {r}: {} cycles since last REF \
                                 (bound {bound})",
                                now - since
                            ),
                        );
                    }
                }
                self.ranks[r].last_refresh = Some(now);
            }
        }
    }

    /// End-of-run liveness check: every rank must have refreshed
    /// recently enough (within nine tREFI intervals, the loosest gap
    /// JEDEC's postponement rule permits) when refresh is enabled and
    /// the run lasted long enough to require it.
    pub fn finish(&mut self, now: DramCycle) {
        if !self.check_refresh_interval {
            return;
        }
        let bound = REFRESH_SLACK * self.timing.t_refi;
        for r in 0..self.ranks.len() {
            let since = self.ranks[r].last_refresh.unwrap_or(self.attach_at);
            if now.saturating_sub(since) > bound {
                self.flag(
                    now,
                    format!(
                        "refresh overdue on rank {r}: {} cycles since last REF (bound {bound})",
                        now - since
                    ),
                );
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DDR3_2133;
    use critmem_common::BankId;

    fn auditor() -> ProtocolAuditor {
        ProtocolAuditor::new(0, 4, 8, DDR3_2133.timing, true)
    }

    fn cmd(kind: CommandKind, rank: u8, bank: u8, row: u32) -> DramCommand {
        DramCommand {
            kind,
            rank: RankId(rank),
            bank: BankId(bank),
            row,
        }
    }

    #[test]
    fn legal_sequence_is_silent() {
        let t = DDR3_2133.timing;
        let mut a = auditor();
        a.observe(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        a.observe(&cmd(CommandKind::Read, 0, 0, 5), t.t_rcd);
        a.observe(&cmd(CommandKind::Precharge, 0, 0, 0), t.t_ras);
        a.observe(&cmd(CommandKind::Activate, 0, 0, 6), t.t_rc);
        assert!(a.violation().is_none(), "{:?}", a.violation());
    }

    #[test]
    fn act_on_open_bank_is_flagged() {
        let mut a = auditor();
        a.observe(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        a.observe(&cmd(CommandKind::Activate, 0, 0, 6), 1_000);
        let v = a.violation().expect("expected a violation");
        assert!(v.what.contains("already open"), "{}", v.what);
        assert_eq!(v.channel, Some(0));
    }

    #[test]
    fn early_cas_violates_trcd() {
        let mut a = auditor();
        a.observe(&cmd(CommandKind::Activate, 0, 0, 5), 100);
        a.observe(&cmd(CommandKind::Read, 0, 0, 5), 101);
        let v = a.violation().expect("expected a violation");
        assert!(v.what.contains("tRCD"), "{}", v.what);
    }

    #[test]
    fn cas_to_wrong_row_is_flagged() {
        let t = DDR3_2133.timing;
        let mut a = auditor();
        a.observe(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        a.observe(&cmd(CommandKind::Read, 0, 0, 9), t.t_rcd);
        let v = a.violation().expect("expected a violation");
        assert!(v.what.contains("open row"), "{}", v.what);
    }

    #[test]
    fn fifth_act_in_faw_window_is_flagged() {
        let t = DDR3_2133.timing;
        let mut a = auditor();
        for b in 0..4u8 {
            a.observe(&cmd(CommandKind::Activate, 0, b, 1), b as u64 * t.t_rrd);
        }
        a.observe(&cmd(CommandKind::Activate, 0, 4, 1), 4 * t.t_rrd);
        let v = a.violation().expect("expected a violation");
        assert!(v.what.contains("tFAW"), "{}", v.what);
    }

    #[test]
    fn only_first_violation_is_kept() {
        let mut a = auditor();
        a.observe(&cmd(CommandKind::Read, 0, 0, 5), 0); // no open row
        a.observe(&cmd(CommandKind::Precharge, 0, 1, 0), 1); // also illegal
        let v = a.violation().expect("expected a violation");
        assert!(v.what.contains("Read"), "{}", v.what);
    }

    #[test]
    fn finish_flags_overdue_refresh() {
        let t = DDR3_2133.timing;
        let mut a = auditor();
        a.finish(100 * t.t_refi);
        assert!(a.violation().is_some());
        let mut quiet = ProtocolAuditor::new(0, 4, 8, t, false);
        quiet.finish(100 * t.t_refi);
        assert!(quiet.violation().is_none());
    }

    #[test]
    fn backwards_clock_is_flagged() {
        let t = DDR3_2133.timing;
        let mut a = auditor();
        a.observe(&cmd(CommandKind::Activate, 0, 0, 5), 500);
        a.observe(&cmd(CommandKind::Read, 0, 0, 5), 500 + t.t_rcd);
        a.observe(&cmd(CommandKind::Precharge, 0, 0, 0), 400);
        let v = a.violation().expect("expected a violation");
        assert!(v.what.contains("backwards"), "{}", v.what);
    }
}
