//! DRAM system configuration: organization (channels/ranks/banks/row
//! size) plus device preset and controller policies.

use crate::mapping::Interleaving;
use crate::timing::{DevicePreset, DDR3_2133};

/// Physical organization of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramOrganization {
    /// Independent channels, each with its own controller (Table 3:
    /// four; two for the quad-core multiprogrammed runs).
    pub channels: u8,
    /// Ranks per channel (Table 3: quad-rank; Figure 8 sweeps 1/2/4).
    pub ranks_per_channel: u8,
    /// Banks per rank (8 for DDR3).
    pub banks_per_rank: u8,
    /// Row-buffer size in bytes (Table 3: 1 KB).
    pub row_bytes: u64,
    /// Transfer granularity — the L2 line size (64 B).
    pub line_bytes: u64,
}

impl DramOrganization {
    /// The paper's Table 3 baseline: 4 channels x 4 ranks x 8 banks,
    /// 1 KB rows, 64 B lines.
    pub fn paper_baseline() -> Self {
        DramOrganization {
            channels: 4,
            ranks_per_channel: 4,
            banks_per_rank: 8,
            row_bytes: 1_024,
            line_bytes: 64,
        }
    }

    /// Total banks within one channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks_per_channel as usize * self.banks_per_rank as usize
    }
}

impl Default for DramOrganization {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Complete DRAM subsystem configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Physical organization.
    pub org: DramOrganization,
    /// Speed grade and timing set.
    pub preset: DevicePreset,
    /// Address interleaving policy.
    pub interleaving: Interleaving,
    /// Transaction-queue capacity per channel (Table 3: 64).
    pub queue_capacity: usize,
    /// Write-drain high watermark: when this many writes are queued the
    /// controller switches to write mode.
    pub write_high_watermark: usize,
    /// Write-drain low watermark: write mode ends when the write count
    /// falls to this level.
    pub write_low_watermark: usize,
    /// Starvation cap in DRAM cycles: a request older than this is
    /// treated as maximally critical (§3.2: 6,000 cycles, "never
    /// reached" in the paper's experiments).
    pub starvation_cap: u64,
    /// Whether periodic refresh is modeled.
    pub refresh_enabled: bool,
}

impl DramConfig {
    /// The paper's baseline configuration (DDR3-2133, Table 3 values).
    pub fn paper_baseline() -> Self {
        DramConfig {
            org: DramOrganization::paper_baseline(),
            preset: DDR3_2133,
            interleaving: Interleaving::Page,
            queue_capacity: 64,
            write_high_watermark: 28,
            write_low_watermark: 12,
            starvation_cap: 6_000,
            refresh_enabled: true,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (bad
    /// watermarks, invalid timing, zero-sized structures).
    pub fn validate(&self) -> Result<(), String> {
        self.preset.timing.validate()?;
        if self.queue_capacity == 0 {
            return Err("transaction queue capacity must be nonzero".into());
        }
        if self.write_high_watermark <= self.write_low_watermark {
            return Err(format!(
                "write high watermark ({}) must exceed low watermark ({})",
                self.write_high_watermark, self.write_low_watermark
            ));
        }
        if self.write_high_watermark >= self.queue_capacity {
            return Err(format!(
                "write high watermark ({}) must be below queue capacity ({})",
                self.write_high_watermark, self.queue_capacity
            ));
        }
        if self.org.channels == 0 || self.org.ranks_per_channel == 0 || self.org.banks_per_rank == 0
        {
            return Err("organization dimensions must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        DramConfig::paper_baseline().validate().unwrap();
    }

    #[test]
    fn baseline_matches_table3() {
        let c = DramConfig::paper_baseline();
        assert_eq!(c.org.channels, 4);
        assert_eq!(c.org.ranks_per_channel, 4);
        assert_eq!(c.org.banks_per_rank, 8);
        assert_eq!(c.org.row_bytes, 1_024);
        assert_eq!(c.queue_capacity, 64);
        assert_eq!(c.starvation_cap, 6_000);
        assert_eq!(c.org.banks_per_channel(), 32);
    }

    #[test]
    fn validation_catches_watermark_inversion() {
        let mut c = DramConfig::paper_baseline();
        c.write_high_watermark = 5;
        c.write_low_watermark = 10;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_queue() {
        let mut c = DramConfig::paper_baseline();
        c.queue_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_watermark_above_capacity() {
        let mut c = DramConfig::paper_baseline();
        c.write_high_watermark = 64;
        assert!(c.validate().is_err());
    }
}
