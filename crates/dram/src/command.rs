//! DRAM command vocabulary.

use critmem_common::{BankId, RankId};

/// A DRAM command kind as issued on the command bus.
///
/// `Read`/`Write` are the column (CAS) commands, `Activate` is the row
/// (RAS) command, `Precharge` closes a row, and `Refresh` is the
/// all-bank per-rank refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open (activate) a row in a bank.
    Activate,
    /// Close (precharge) a bank's open row.
    Precharge,
    /// Column read burst (CAS).
    Read,
    /// Column write burst (CAS-W).
    Write,
    /// All-bank refresh for one rank.
    Refresh,
}

impl CommandKind {
    /// Whether this is a column (CAS) command — the commands FR-FCFS
    /// prioritizes first.
    #[inline]
    pub fn is_cas(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }

    /// Whether this is the row-activate (RAS) command.
    #[inline]
    pub fn is_ras(self) -> bool {
        matches!(self, CommandKind::Activate)
    }
}

/// A fully specified command: what, where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCommand {
    /// Command kind.
    pub kind: CommandKind,
    /// Target rank.
    pub rank: RankId,
    /// Target bank (ignored for `Refresh`).
    pub bank: BankId,
    /// Target row (meaningful for `Activate` only).
    pub row: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_classification() {
        assert!(CommandKind::Read.is_cas());
        assert!(CommandKind::Write.is_cas());
        assert!(!CommandKind::Activate.is_cas());
        assert!(!CommandKind::Precharge.is_cas());
        assert!(!CommandKind::Refresh.is_cas());
        assert!(CommandKind::Activate.is_ras());
        assert!(!CommandKind::Read.is_ras());
    }
}
