//! The command-scheduler interface — the extension point this whole
//! reproduction revolves around.
//!
//! Every DRAM cycle the controller assembles the set of *ready*
//! commands (one candidate per queued transaction that could legally
//! issue this cycle) and asks the scheduler to pick one. FR-FCFS, the
//! criticality-aware variants, AHB, PAR-BS, TCM, and the MORSE-style
//! reinforcement-learning scheduler all implement [`CommandScheduler`]
//! (in the `critmem-sched` crate).

use crate::bank::ChannelTiming;
use crate::command::DramCommand;
use crate::queue::{Direction, Transaction};
use critmem_common::{ChannelId, Criticality, DramCycle, MetricVisitor};

/// One issuable command, tied to the transaction it advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index into [`SchedContext::queue`] of the owning transaction.
    pub txn: usize,
    /// The command that would issue this cycle.
    pub cmd: DramCommand,
    /// `true` when `cmd` is a CAS to an already-open row — the
    /// "first-ready" commands FR-FCFS prefers.
    pub row_hit: bool,
    /// Criticality after starvation promotion (§3.2).
    pub crit: Criticality,
}

/// Everything a scheduler may inspect when choosing a command.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Current DRAM cycle.
    pub now: DramCycle,
    /// The channel this decision is for.
    pub channel: ChannelId,
    /// All queued transactions (reads and writes).
    pub queue: &'a [Transaction],
    /// Bank/bus timing state, for schedulers that reason about it.
    pub timing: &'a ChannelTiming,
    /// Current service direction.
    pub direction: Direction,
}

/// A DRAM command scheduler.
///
/// Implementations must be deterministic given their construction
/// parameters (seeded RNG where randomness is part of the algorithm,
/// e.g. TCM's rank shuffling) so that experiments are reproducible.
///
/// The `Send` bound lets a channel controller (which owns its scheduler
/// box) migrate to a shard-pool worker for the sharded multi-channel
/// tick; schedulers are still only ever *used* by one thread at a time.
pub trait CommandScheduler: Send {
    /// Chooses one of `candidates` (by index) to issue this cycle, or
    /// `None` to idle. All candidates are timing-ready; returning an
    /// out-of-range index is a logic error and panics in the
    /// controller.
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize>;

    /// Notification: a transaction entered the queue.
    fn on_enqueue(&mut self, _txn: &Transaction, _now: DramCycle) {}

    /// Notification: a transaction's CAS completed (data transferred).
    fn on_complete(&mut self, _txn: &Transaction, _now: DramCycle) {}

    /// Called once per DRAM cycle before candidate selection; lets
    /// quantum-based schedulers (TCM, PAR-BS batching) advance state.
    fn on_tick(&mut self, _ctx: &SchedContext<'_>) {}

    /// The earliest future cycle at which [`Self::on_tick`] would do
    /// observable work given `queue_len` queued transactions, or
    /// `DramCycle::MAX` when its tick is a no-op (the default).
    /// Event-horizon accessor for the skip-ahead kernel: ticks strictly
    /// before the returned cycle may be batched without calling
    /// `on_tick` for each. Quantum-based schedulers return their next
    /// quantum/shuffle boundary; schedulers that accumulate per-cycle
    /// state while transactions are queued must return `now + 1`
    /// whenever `queue_len > 0`.
    fn next_event_cycle(&self, _now: DramCycle, _queue_len: usize) -> DramCycle {
        DramCycle::MAX
    }

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Reports scheduler-internal metrics to the observability layer.
    ///
    /// Implementations should emit metric names prefixed with `sched_`
    /// so they group with (and cannot collide with) the owning
    /// channel's [`crate::ChannelStats`] metrics inside the same
    /// `dram.chN` component. The default reports nothing.
    fn observe_metrics(&self, _v: &mut dyn MetricVisitor) {}

    /// Serializes mutable scheduler state into a checkpoint. Stateless
    /// schedulers keep the default no-op; stateful ones must write every
    /// field that influences future [`Self::select`] decisions, in a
    /// deterministic order.
    fn save_state(&self, _w: &mut critmem_common::codec::ByteWriter) {}

    /// Restores state written by [`Self::save_state`] into a
    /// freshly constructed scheduler of the same kind and parameters.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or shape-mismatched snapshot.
    fn load_state(
        &mut self,
        _r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        Ok(())
    }
}

/// Strict first-come-first-served: always the oldest ready command.
/// Mostly useful as a lower-bound reference and for controller tests.
#[derive(Debug, Default, Clone)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Fcfs
    }
}

impl CommandScheduler for Fcfs {
    fn select(&mut self, ctx: &SchedContext<'_>, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| ctx.queue[c.txn].seq)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &str {
        "FCFS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandKind;
    use crate::timing::DDR3_2133;
    use critmem_common::{AccessKind, BankId, CoreId, MemRequest, RankId};

    fn mk_ctx<'a>(queue: &'a [Transaction], timing: &'a ChannelTiming) -> SchedContext<'a> {
        SchedContext {
            now: 100,
            channel: ChannelId(0),
            queue,
            timing,
            direction: Direction::Read,
        }
    }

    fn mk_txn(seq: u64) -> Transaction {
        let req = MemRequest::new(seq, 0x40 * seq, AccessKind::Read, CoreId(0));
        let loc = crate::mapping::DramLocation {
            channel: ChannelId(0),
            rank: RankId(0),
            bank: BankId(0),
            row: 0,
            column: seq as u32,
        };
        Transaction::new(req, loc, seq, seq)
    }

    #[test]
    fn fcfs_picks_oldest() {
        let queue = vec![mk_txn(5), mk_txn(2), mk_txn(9)];
        let timing = ChannelTiming::new(1, 8, DDR3_2133.timing);
        let ctx = mk_ctx(&queue, &timing);
        let cand = |i: usize| Candidate {
            txn: i,
            cmd: DramCommand {
                kind: CommandKind::Read,
                rank: RankId(0),
                bank: BankId(0),
                row: 0,
            },
            row_hit: true,
            crit: Criticality::non_critical(),
        };
        let cands = vec![cand(0), cand(1), cand(2)];
        let mut s = Fcfs::new();
        assert_eq!(s.select(&ctx, &cands), Some(1)); // seq 2 is oldest
        assert_eq!(s.select(&ctx, &[]), None);
    }
}
