//! The per-channel memory controller: transaction queue management,
//! refresh sequencing, read/write direction policy, candidate
//! generation, and command issue.
//!
//! The controller is deliberately "lean" in the paper's sense: per DRAM
//! cycle it generates the set of timing-ready commands and delegates the
//! *choice* to a pluggable [`CommandScheduler`]. All criticality
//! machinery lives in the scheduler and in the annotation carried by
//! each transaction.

use crate::bank::ChannelTiming;
use crate::command::{CommandKind, DramCommand};
use crate::config::DramConfig;
use crate::mapping::DramLocation;
use crate::queue::{Direction, Transaction};
use crate::scheduler::{Candidate, CommandScheduler, SchedContext};
use critmem_common::{ChannelId, DramCycle, MemRequest, RankId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A completed transaction handed back to the cache hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTxn {
    /// The original request.
    pub req: MemRequest,
    /// DRAM cycle at which the data burst finished.
    pub done_at: DramCycle,
    /// DRAM cycle at which the request entered the transaction queue.
    pub arrival: DramCycle,
}

/// Aggregate statistics for one channel.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    /// Demand + prefetch reads completed.
    pub reads_completed: u64,
    /// Write-backs completed.
    pub writes_completed: u64,
    /// CAS commands that found their row already open.
    pub row_hits: u64,
    /// CAS commands that needed an ACTIVATE first (bank was closed).
    pub row_misses: u64,
    /// CAS commands that needed a PRECHARGE first (row conflict).
    pub row_conflicts: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Total DRAM cycles simulated.
    pub ticks: u64,
    /// Sum over ticks of queue occupancy (for mean occupancy).
    pub occupancy_sum: u64,
    /// Ticks during which at least one queued read was flagged critical.
    pub ticks_with_critical: u64,
    /// Ticks during which more than one queued read was flagged critical.
    pub ticks_with_multiple_critical: u64,
    /// Sum of read service latencies (arrival to data) in DRAM cycles.
    pub read_latency_sum: u64,
    /// Number of starvation-cap promotions that occurred.
    pub starvation_promotions: u64,
    /// Transactions rejected because the queue was full.
    pub rejected_full: u64,
}

impl ChannelStats {
    /// Mean transaction-queue occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.ticks as f64
        }
    }

    /// Row-buffer hit rate among all CAS commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// One DRAM channel: transaction queue + timing state + scheduler.
pub struct ChannelController {
    channel: ChannelId,
    cfg: DramConfig,
    timing: ChannelTiming,
    queue: Vec<Transaction>,
    inflight: BinaryHeap<Reverse<(DramCycle, u64)>>,
    inflight_txns: Vec<(u64, CompletedTxn)>,
    scheduler: Box<dyn CommandScheduler>,
    now: DramCycle,
    seq: u64,
    direction: Direction,
    draining: bool,
    stats: ChannelStats,
}

impl std::fmt::Debug for ChannelController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelController")
            .field("channel", &self.channel)
            .field("now", &self.now)
            .field("queue_len", &self.queue.len())
            .field("scheduler", &self.scheduler.name())
            .finish_non_exhaustive()
    }
}

impl ChannelController {
    /// Creates a controller for `channel` with the given scheduler.
    pub fn new(channel: ChannelId, cfg: DramConfig, scheduler: Box<dyn CommandScheduler>) -> Self {
        let timing = ChannelTiming::new(
            cfg.org.ranks_per_channel as usize,
            cfg.org.banks_per_rank as usize,
            cfg.preset.timing,
        );
        ChannelController {
            channel,
            cfg,
            timing,
            queue: Vec::with_capacity(cfg.queue_capacity),
            inflight: BinaryHeap::new(),
            inflight_txns: Vec::new(),
            scheduler,
            now: 0,
            seq: 0,
            direction: Direction::Read,
            draining: false,
            stats: ChannelStats::default(),
        }
    }

    /// Current DRAM cycle.
    pub fn now(&self) -> DramCycle {
        self.now
    }

    /// Number of queued transactions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the transaction queue can accept another entry.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Enqueues a request. Returns the request back if the queue is
    /// full (the caller retries later).
    ///
    /// # Panics
    ///
    /// Panics if the request's address maps to a different channel.
    pub fn enqueue(&mut self, req: MemRequest, loc: DramLocation) -> Result<(), MemRequest> {
        assert_eq!(loc.channel, self.channel, "request routed to wrong channel");
        if !self.has_space() {
            self.stats.rejected_full += 1;
            return Err(req);
        }
        let txn = Transaction::new(req, loc, self.now, self.seq);
        self.seq += 1;
        self.scheduler.on_enqueue(&txn, self.now);
        self.queue.push(txn);
        Ok(())
    }

    /// Raises the criticality annotation of an already-queued request,
    /// identified by request id. Returns `true` if the request was
    /// still queued. This models the §5.1 "naive" scheme where the
    /// ROB-block event itself is forwarded to the controller over a
    /// side channel.
    pub fn promote_request(
        &mut self,
        id: critmem_common::ReqId,
        crit: critmem_common::Criticality,
    ) -> bool {
        for txn in &mut self.queue {
            if txn.req.id == id {
                if crit > txn.req.crit {
                    txn.req.crit = crit;
                }
                return true;
            }
        }
        false
    }

    /// Raises the criticality of a queued read matching `(line
    /// address, core)` — same purpose as [`Self::promote_request`]
    /// when the sender only knows the address.
    pub fn promote_by_addr(
        &mut self,
        addr: critmem_common::PhysAddr,
        core: critmem_common::CoreId,
        crit: critmem_common::Criticality,
    ) -> bool {
        for txn in &mut self.queue {
            if txn.req.addr == addr && txn.req.core == core && txn.is_read() {
                if crit > txn.req.crit {
                    txn.req.crit = crit;
                }
                return true;
            }
        }
        false
    }

    /// Advances the channel by one DRAM cycle; returns transactions
    /// whose data finished transferring this cycle.
    pub fn tick(&mut self) -> Vec<CompletedTxn> {
        self.now += 1;
        let now = self.now;
        self.stats.ticks += 1;
        self.stats.occupancy_sum += self.queue.len() as u64;
        self.track_criticality_occupancy();
        self.update_direction();

        // Refresh has hard priority: a rank whose refresh has fallen
        // due stops accepting new work until the REF has issued.
        let pending_ranks = if self.cfg.refresh_enabled {
            self.timing.update_refresh(now)
        } else {
            Vec::new()
        };
        let mut issued = false;
        if !pending_ranks.is_empty() {
            issued = self.try_refresh_sequence(&pending_ranks);
        }

        if !issued {
            let candidates = self.build_candidates(&pending_ranks);
            if !candidates.is_empty() {
                let ctx = SchedContext {
                    now,
                    channel: self.channel,
                    queue: &self.queue,
                    timing: &self.timing,
                    direction: self.direction,
                };
                self.scheduler.on_tick(&ctx);
                if let Some(choice) = self.scheduler.select(&ctx, &candidates) {
                    let cand = candidates[choice];
                    self.issue_candidate(cand);
                }
            } else {
                let ctx = SchedContext {
                    now,
                    channel: self.channel,
                    queue: &self.queue,
                    timing: &self.timing,
                    direction: self.direction,
                };
                self.scheduler.on_tick(&ctx);
            }
        }

        self.collect_completions()
    }

    fn track_criticality_occupancy(&mut self) {
        let crit = self
            .queue
            .iter()
            .filter(|t| t.is_read() && t.req.crit.is_critical())
            .count();
        if crit >= 1 {
            self.stats.ticks_with_critical += 1;
        }
        if crit > 1 {
            self.stats.ticks_with_multiple_critical += 1;
        }
    }

    fn update_direction(&mut self) {
        let writes = self.queue.iter().filter(|t| !t.is_read()).count();
        let reads = self.queue.len() - writes;
        match self.direction {
            Direction::Read => {
                if writes >= self.cfg.write_high_watermark {
                    self.direction = Direction::Write;
                    self.draining = true;
                } else if reads == 0 && writes > 0 {
                    self.direction = Direction::Write;
                    self.draining = false;
                }
            }
            Direction::Write => {
                if writes == 0
                    || (self.draining && writes <= self.cfg.write_low_watermark)
                    || (!self.draining && reads > 0)
                {
                    self.direction = Direction::Read;
                    self.draining = false;
                }
            }
        }
    }

    /// Attempts to advance the refresh sequence for the first pending
    /// rank; returns `true` if a command slot was consumed.
    fn try_refresh_sequence(&mut self, pending: &[RankId]) -> bool {
        let now = self.now;
        for &rank in pending {
            let refresh = DramCommand {
                kind: CommandKind::Refresh,
                rank,
                bank: critmem_common::BankId(0),
                row: 0,
            };
            if let Some(t) = self.timing.earliest_issue(&refresh) {
                if t <= now {
                    self.timing.issue(&refresh, now);
                    self.stats.refreshes += 1;
                    return true;
                }
                continue;
            }
            // Some bank is still open: precharge the first ready one.
            let bpr = self.timing.banks_per_rank();
            for b in 0..bpr {
                let bank = critmem_common::BankId(b as u8);
                if self.timing.bank(rank, bank).open_row.is_none() {
                    continue;
                }
                let pre = DramCommand {
                    kind: CommandKind::Precharge,
                    rank,
                    bank,
                    row: 0,
                };
                if let Some(t) = self.timing.earliest_issue(&pre) {
                    if t <= now {
                        self.timing.issue(&pre, now);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Generates the ready-command candidate list for this cycle.
    ///
    /// Starvation enforcement is the controller's job, not the
    /// scheduler's (§3.2's 6,000-cycle cap): if any *ready* command
    /// belongs to a transaction that has aged past the cap, only those
    /// commands are offered to the scheduler, so even schedulers that
    /// ignore the criticality annotation (plain FR-FCFS, AHB, …)
    /// cannot starve a request indefinitely behind a stream of row
    /// hits.
    fn build_candidates(&mut self, refresh_ranks: &[RankId]) -> Vec<Candidate> {
        let now = self.now;
        let cap = self.cfg.starvation_cap;
        // Count starvation promotions once per transaction.
        for txn in &mut self.queue {
            if !txn.starved && txn.age(now) > cap {
                txn.starved = true;
                self.stats.starvation_promotions += 1;
            }
        }
        // One pass: which banks' open rows are still wanted by a
        // same-direction transaction (so a PRE would waste row hits),
        // and which banks have a starved transaction (those banks are
        // quiesced: no non-starved work may issue there, or the
        // starved PRE's tRTP window would keep sliding forever).
        let bpr = self.timing.banks_per_rank();
        let nbanks = self.timing.ranks() * bpr;
        let mut open_row_wanted = vec![false; nbanks];
        let mut starved_bank = vec![false; nbanks];
        for txn in &self.queue {
            if !txn.matches_direction(self.direction) {
                continue;
            }
            let idx = txn.loc.rank.index() * bpr + txn.loc.bank.index();
            if self.timing.bank(txn.loc.rank, txn.loc.bank).open_row == Some(txn.loc.row) {
                open_row_wanted[idx] = true;
            }
            if txn.starved {
                starved_bank[idx] = true;
            }
        }
        let mut candidates = Vec::new();
        for (i, txn) in self.queue.iter().enumerate() {
            if !txn.matches_direction(self.direction) {
                continue;
            }
            if refresh_ranks.contains(&txn.loc.rank) {
                continue;
            }
            // Bank quiescence for the starvation cap (§3.2).
            let idx = txn.loc.rank.index() * bpr + txn.loc.bank.index();
            if starved_bank[idx] && !txn.starved {
                continue;
            }
            let crit = txn.effective_criticality(now, cap);
            let bank_state = self.timing.bank(txn.loc.rank, txn.loc.bank);
            let (kind, row_hit) = match bank_state.open_row {
                Some(r) if r == txn.loc.row => {
                    let k = if txn.is_read() {
                        CommandKind::Read
                    } else {
                        CommandKind::Write
                    };
                    (k, true)
                }
                Some(_) => {
                    // Row conflict: precharge, but not while another
                    // serviceable transaction still wants the open row
                    // — unless this transaction is starved, in which
                    // case it may close the row regardless.
                    let idx = txn.loc.rank.index() * bpr + txn.loc.bank.index();
                    if open_row_wanted[idx] && !txn.starved {
                        continue;
                    }
                    (CommandKind::Precharge, false)
                }
                None => (CommandKind::Activate, false),
            };
            let cmd = DramCommand {
                kind,
                rank: txn.loc.rank,
                bank: txn.loc.bank,
                row: txn.loc.row,
            };
            if let Some(t) = self.timing.earliest_issue(&cmd) {
                if t <= now {
                    candidates.push(Candidate {
                        txn: i,
                        cmd,
                        row_hit,
                        crit,
                    });
                }
            }
        }
        candidates
    }

    fn issue_candidate(&mut self, cand: Candidate) {
        let now = self.now;
        self.timing.issue(&cand.cmd, now);
        match cand.cmd.kind {
            CommandKind::Activate => {
                self.queue[cand.txn].caused_activate = true;
            }
            CommandKind::Precharge => {
                self.queue[cand.txn].caused_precharge = true;
            }
            CommandKind::Read | CommandKind::Write => {
                let txn = self.queue.swap_remove(cand.txn);
                if txn.caused_precharge {
                    self.stats.row_conflicts += 1;
                } else if txn.caused_activate {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                let done_at = self.timing.cas_done_at(cand.cmd.kind, now);
                self.scheduler.on_complete(&txn, now);
                let completed = CompletedTxn {
                    req: txn.req,
                    done_at,
                    arrival: txn.arrival,
                };
                let key = self.seq;
                self.seq += 1;
                self.inflight.push(Reverse((done_at, key)));
                self.inflight_txns.push((key, completed));
            }
            CommandKind::Refresh => unreachable!("refresh issued outside candidate path"),
        }
    }

    fn collect_completions(&mut self) -> Vec<CompletedTxn> {
        let now = self.now;
        let mut out = Vec::new();
        while let Some(&Reverse((done, key))) = self.inflight.peek() {
            if done > now {
                break;
            }
            self.inflight.pop();
            let pos = self
                .inflight_txns
                .iter()
                .position(|(k, _)| *k == key)
                .expect("in-flight bookkeeping out of sync");
            let (_, txn) = self.inflight_txns.swap_remove(pos);
            if txn.req.kind.is_read() {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += txn.done_at - txn.arrival;
            } else {
                self.stats.writes_completed += 1;
            }
            out.push(txn);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{AddressMapping, Interleaving};
    use crate::scheduler::Fcfs;
    use critmem_common::{AccessKind, CoreId};

    fn controller() -> (ChannelController, AddressMapping) {
        let cfg = DramConfig::paper_baseline();
        let map = AddressMapping::new(cfg.org, Interleaving::Page);
        (
            ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new())),
            map,
        )
    }

    fn read_req(id: u64, addr: u64) -> MemRequest {
        MemRequest::new(id, addr, AccessKind::Read, CoreId(0))
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let (mut ctl, map) = controller();
        let addr = 0u64;
        ctl.enqueue(read_req(1, addr), map.locate(addr)).unwrap();
        let mut done = None;
        for _ in 0..200 {
            let completions = ctl.tick();
            if let Some(c) = completions.into_iter().next() {
                done = Some(c);
                break;
            }
        }
        let c = done.expect("read never completed");
        // Closed bank: ACT at cycle 1, READ at 1+tRCD, data at +tCL+4.
        let t = DDR3_2133_T;
        assert_eq!(c.done_at, 1 + t.0 + t.1 + 4);
        assert_eq!(c.req.id, 1);
    }

    const DDR3_2133_T: (u64, u64) = (14, 14); // (tRCD, tCL)

    #[test]
    fn row_hit_second_read_is_faster() {
        let (mut ctl, map) = controller();
        ctl.enqueue(read_req(1, 0), map.locate(0)).unwrap();
        ctl.enqueue(read_req(2, 64), map.locate(64)).unwrap();
        let mut done = Vec::new();
        for _ in 0..200 {
            done.extend(ctl.tick());
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(ctl.stats().row_hits, 1);
        // Second read issues tCCD after the first, not tRCD.
        let gap = done[1].done_at - done[0].done_at;
        assert_eq!(gap, 4); // tCCD
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ctl, map) = controller();
        for i in 0..64 {
            ctl.enqueue(read_req(i, i * 4096), map.locate(0))
                .unwrap_or_else(|_| panic!("queue should accept 64 entries, failed at {i}"));
        }
        assert!(ctl.enqueue(read_req(99, 0), map.locate(0)).is_err());
        assert_eq!(ctl.stats().rejected_full, 1);
    }

    #[test]
    fn writes_drain_when_no_reads() {
        let (mut ctl, map) = controller();
        let req = MemRequest::new(1, 0, AccessKind::Write, CoreId(0));
        ctl.enqueue(req, map.locate(0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..200 {
            done.extend(ctl.tick());
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(ctl.stats().writes_completed, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let (mut ctl, map) = controller();
        // One write, then a read: the read should finish first because
        // the controller stays in read mode.
        let w = MemRequest::new(1, 4096, AccessKind::Write, CoreId(0));
        ctl.enqueue(w, map.locate(4096)).unwrap();
        ctl.enqueue(read_req(2, 0), map.locate(0)).unwrap();
        let mut order = Vec::new();
        for _ in 0..500 {
            for c in ctl.tick() {
                order.push(c.req.id);
            }
            if order.len() == 2 {
                break;
            }
        }
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn refresh_eventually_issues() {
        let (mut ctl, _map) = controller();
        let trefi = 8_328u64;
        for _ in 0..trefi + 200 {
            ctl.tick();
        }
        assert!(ctl.stats().refreshes >= 1, "no refresh after tREFI");
    }

    #[test]
    fn starvation_cap_promotes_old_requests() {
        // A stream of row hits to bank 0 must not starve a conflicting
        // request forever once the cap kicks in.
        let mut cfg = DramConfig::paper_baseline();
        cfg.starvation_cap = 200;
        cfg.refresh_enabled = false;
        let map = AddressMapping::new(cfg.org, Interleaving::Page);
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        let victim = 16 * 1024 * 1024; // same bank, different row (big offset)
        let vloc = map.locate(victim);
        let base = map.locate(0);
        assert_eq!(vloc.channel, base.channel);
        ctl.enqueue(read_req(1, victim), vloc).unwrap();
        let mut completed = false;
        for i in 0..4_000u64 {
            for c in ctl.tick() {
                if c.req.id == 1 {
                    completed = true;
                }
            }
            if completed {
                break;
            }
            // Keep feeding row hits to row 0 (FCFS will serve oldest
            // first anyway; this exercises the promotion accounting).
            if i % 8 == 0 {
                let addr = (i % 16) * 64;
                let _ = ctl.enqueue(read_req(100 + i, addr), map.locate(addr));
            }
        }
        assert!(completed, "victim request starved");
    }

    #[test]
    fn occupancy_tracks_queue() {
        let (mut ctl, map) = controller();
        ctl.enqueue(read_req(1, 0), map.locate(0)).unwrap();
        ctl.tick();
        assert!(ctl.stats().occupancy_sum >= 1);
        assert_eq!(ctl.stats().ticks, 1);
    }
}

#[cfg(test)]
mod refresh_gate_tests {
    use super::*;
    use crate::scheduler::Fcfs;
    use critmem_common::ChannelId;

    #[test]
    fn disabling_refresh_suppresses_ref_commands() {
        let mut cfg = DramConfig::paper_baseline();
        cfg.refresh_enabled = false;
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        for _ in 0..cfg.preset.timing.t_refi * 3 {
            ctl.tick();
        }
        assert_eq!(ctl.stats().refreshes, 0);
    }
}
