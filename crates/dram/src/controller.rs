//! The per-channel memory controller: transaction queue management,
//! refresh sequencing, read/write direction policy, candidate
//! generation, and command issue.
//!
//! The controller is deliberately "lean" in the paper's sense: per DRAM
//! cycle it generates the set of timing-ready commands and delegates the
//! *choice* to a pluggable [`CommandScheduler`]. All criticality
//! machinery lives in the scheduler and in the annotation carried by
//! each transaction.

use crate::audit::ProtocolAuditor;
use crate::bank::ChannelTiming;
use crate::command::{CommandKind, DramCommand};
use crate::config::DramConfig;
use crate::mapping::DramLocation;
use crate::queue::{Direction, Transaction};
use crate::scheduler::{Candidate, CommandScheduler, SchedContext};
use critmem_common::{
    AuditSnapshot, ChannelId, DramCycle, MemRequest, MetricVisitor, Observable, RankId, Snapshot,
};
use std::cmp::Reverse;

/// Queue-depth ceiling for the post-issue emptiness proof in
/// [`ChannelController::tick_into`]. Above this, a second candidate
/// build per issued command costs more than the skipped ticks it could
/// prove away; below it (the DRAM-bound single-program regime the
/// skip-ahead kernel targets), it converts the post-command timing
/// shadow into an immediately visible quiet window.
const POST_ISSUE_PROOF_MAX_QUEUE: usize = 8;

use std::collections::BinaryHeap;

/// A completed transaction handed back to the cache hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTxn {
    /// The original request.
    pub req: MemRequest,
    /// DRAM cycle at which the data burst finished.
    pub done_at: DramCycle,
    /// DRAM cycle at which the request entered the transaction queue.
    pub arrival: DramCycle,
}

/// Aggregate statistics for one channel.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    /// Demand + prefetch reads completed.
    pub reads_completed: u64,
    /// Write-backs completed.
    pub writes_completed: u64,
    /// CAS commands that found their row already open.
    pub row_hits: u64,
    /// CAS commands that needed an ACTIVATE first (bank was closed).
    pub row_misses: u64,
    /// CAS commands that needed a PRECHARGE first (row conflict).
    pub row_conflicts: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Total DRAM cycles simulated.
    pub ticks: u64,
    /// Sum over ticks of queue occupancy (for mean occupancy).
    pub occupancy_sum: u64,
    /// Ticks during which at least one queued read was flagged critical.
    pub ticks_with_critical: u64,
    /// Ticks during which more than one queued read was flagged critical.
    pub ticks_with_multiple_critical: u64,
    /// Sum of read service latencies (arrival to data) in DRAM cycles.
    pub read_latency_sum: u64,
    /// Number of starvation-cap promotions that occurred.
    pub starvation_promotions: u64,
    /// Transactions rejected because the queue was full.
    pub rejected_full: u64,
    /// DRAM cycles the data bus spent transferring CAS bursts
    /// (`burst_len / 2` cycles per completed read or write).
    pub bus_busy_cycles: u64,
    /// Demand reads completed that carried a critical annotation.
    pub critical_reads_completed: u64,
    /// Sum of critical-read service latencies (arrival to data) in
    /// DRAM cycles.
    pub critical_read_latency_sum: u64,
}

impl ChannelStats {
    /// Mean transaction-queue occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.ticks as f64
        }
    }

    /// Row-buffer hit rate among all CAS commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean read service latency (arrival to data) in DRAM cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_completed as f64
        }
    }

    /// Fraction of simulated DRAM cycles the data bus was transferring
    /// a burst.
    pub fn bus_utilization(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.ticks as f64
        }
    }

    /// Mean service latency of critical reads in DRAM cycles.
    pub fn mean_critical_read_latency(&self) -> f64 {
        if self.critical_reads_completed == 0 {
            0.0
        } else {
            self.critical_read_latency_sum as f64 / self.critical_reads_completed as f64
        }
    }

    /// Mean service latency of non-critical reads in DRAM cycles.
    pub fn mean_noncritical_read_latency(&self) -> f64 {
        let n = self.reads_completed - self.critical_reads_completed;
        if n == 0 {
            0.0
        } else {
            (self.read_latency_sum - self.critical_read_latency_sum) as f64 / n as f64
        }
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut critmem_common::codec::ByteWriter) {
        for v in [
            self.reads_completed,
            self.writes_completed,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.refreshes,
            self.ticks,
            self.occupancy_sum,
            self.ticks_with_critical,
            self.ticks_with_multiple_critical,
            self.read_latency_sum,
            self.starvation_promotions,
            self.rejected_full,
            self.bus_busy_cycles,
            self.critical_reads_completed,
            self.critical_read_latency_sum,
        ] {
            w.put_u64(v);
        }
    }

    /// Deserializes journaled channel statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream.
    pub fn decode(
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<Self, critmem_common::codec::CodecError> {
        Ok(ChannelStats {
            reads_completed: r.get_u64()?,
            writes_completed: r.get_u64()?,
            row_hits: r.get_u64()?,
            row_misses: r.get_u64()?,
            row_conflicts: r.get_u64()?,
            refreshes: r.get_u64()?,
            ticks: r.get_u64()?,
            occupancy_sum: r.get_u64()?,
            ticks_with_critical: r.get_u64()?,
            ticks_with_multiple_critical: r.get_u64()?,
            read_latency_sum: r.get_u64()?,
            starvation_promotions: r.get_u64()?,
            rejected_full: r.get_u64()?,
            bus_busy_cycles: r.get_u64()?,
            critical_reads_completed: r.get_u64()?,
            critical_read_latency_sum: r.get_u64()?,
        })
    }
}

impl Observable for ChannelStats {
    fn observe(&self, v: &mut dyn MetricVisitor) {
        v.counter("ticks", "dram-cycles", self.ticks);
        v.counter("reads_completed", "requests", self.reads_completed);
        v.counter("writes_completed", "requests", self.writes_completed);
        v.counter(
            "critical_reads_completed",
            "requests",
            self.critical_reads_completed,
        );
        v.counter("row_hits", "cas-commands", self.row_hits);
        v.counter("row_misses", "cas-commands", self.row_misses);
        v.counter("row_conflicts", "cas-commands", self.row_conflicts);
        v.gauge("row_hit_rate", "ratio", self.row_hit_rate());
        v.counter("bus_busy_cycles", "dram-cycles", self.bus_busy_cycles);
        v.gauge("bus_utilization", "ratio", self.bus_utilization());
        v.gauge("mean_occupancy", "transactions", self.mean_occupancy());
        v.gauge("mean_read_latency", "dram-cycles", self.mean_read_latency());
        v.gauge(
            "mean_critical_read_latency",
            "dram-cycles",
            self.mean_critical_read_latency(),
        );
        v.gauge(
            "mean_noncritical_read_latency",
            "dram-cycles",
            self.mean_noncritical_read_latency(),
        );
        v.counter("refreshes", "commands", self.refreshes);
        v.counter(
            "starvation_promotions",
            "transactions",
            self.starvation_promotions,
        );
        v.counter("rejected_full", "requests", self.rejected_full);
        v.counter(
            "ticks_with_critical",
            "dram-cycles",
            self.ticks_with_critical,
        );
    }
}

/// One DRAM channel: transaction queue + timing state + scheduler.
pub struct ChannelController {
    channel: ChannelId,
    cfg: DramConfig,
    timing: ChannelTiming,
    queue: Vec<Transaction>,
    inflight: BinaryHeap<Reverse<(DramCycle, u64)>>,
    inflight_txns: Vec<(u64, CompletedTxn)>,
    scheduler: Box<dyn CommandScheduler>,
    now: DramCycle,
    seq: u64,
    direction: Direction,
    draining: bool,
    stats: ChannelStats,
    /// Queued write-backs, maintained incrementally so the per-cycle
    /// direction policy never rescans the queue.
    queued_writes: usize,
    /// Queued reads currently flagged critical (incremental mirror of
    /// the occupancy scan the stats used to do each cycle).
    queued_crit_reads: usize,
    /// Cycle at which the refresh bookkeeping next needs a look; while
    /// `now` is below this and nothing is pending, the per-rank refresh
    /// scan is skipped entirely.
    refresh_check_at: DramCycle,
    /// While `now` is strictly below this, the candidate set is
    /// provably empty and generation is skipped. Valid only between
    /// state changes: any enqueue, command issue, refresh activity, or
    /// direction flip resets it to 0 (always rebuild).
    no_cand_until: DramCycle,
    // Scratch buffers reused across ticks: cleared, never shrunk.
    refresh_ranks: Vec<RankId>,
    cand_buf: Vec<Candidate>,
    open_row_wanted: Vec<bool>,
    starved_bank: Vec<bool>,
    bus_floor: Vec<DramCycle>,
    /// Shadow protocol auditor (`None` when auditing is off — the hot
    /// path pays one branch and the zero-allocation guarantee holds).
    audit: Option<Box<ProtocolAuditor>>,
}

impl std::fmt::Debug for ChannelController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelController")
            .field("channel", &self.channel)
            .field("now", &self.now)
            .field("queue_len", &self.queue.len())
            .field("scheduler", &self.scheduler.name())
            .finish_non_exhaustive()
    }
}

impl ChannelController {
    /// Creates a controller for `channel` with the given scheduler.
    pub fn new(channel: ChannelId, cfg: DramConfig, scheduler: Box<dyn CommandScheduler>) -> Self {
        let timing = ChannelTiming::new(
            cfg.org.ranks_per_channel as usize,
            cfg.org.banks_per_rank as usize,
            cfg.preset.timing,
        );
        let nbanks = timing.ranks() * timing.banks_per_rank();
        ChannelController {
            channel,
            cfg,
            timing,
            queue: Vec::with_capacity(cfg.queue_capacity),
            inflight: BinaryHeap::with_capacity(cfg.queue_capacity),
            inflight_txns: Vec::with_capacity(cfg.queue_capacity),
            scheduler,
            now: 0,
            seq: 0,
            direction: Direction::Read,
            draining: false,
            stats: ChannelStats::default(),
            queued_writes: 0,
            queued_crit_reads: 0,
            refresh_check_at: 0,
            no_cand_until: 0,
            refresh_ranks: Vec::with_capacity(nbanks),
            cand_buf: Vec::with_capacity(cfg.queue_capacity),
            open_row_wanted: vec![false; nbanks],
            starved_bank: vec![false; nbanks],
            bus_floor: Vec::with_capacity(nbanks),
            audit: None,
        }
    }

    /// Attaches a fresh shadow protocol auditor, seeded from the live
    /// bank state at the current cycle. Every subsequently issued
    /// command is independently re-validated against the timing table;
    /// the first violation is held until [`Self::take_audit_violation`].
    pub fn enable_audit(&mut self) {
        let mut a = Box::new(ProtocolAuditor::new(
            u16::from(self.channel.0),
            self.timing.ranks(),
            self.timing.banks_per_rank(),
            *self.timing.timing(),
            self.cfg.refresh_enabled,
        ));
        a.attach(&self.timing, self.now);
        self.audit = Some(a);
    }

    /// Whether a shadow auditor is attached.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// The auditor's first recorded violation, if any.
    pub fn audit_violation(&self) -> Option<&AuditSnapshot> {
        self.audit.as_ref().and_then(|a| a.violation())
    }

    /// Removes and returns the auditor's first recorded violation.
    pub fn take_audit_violation(&mut self) -> Option<Box<AuditSnapshot>> {
        self.audit.as_mut().and_then(|a| a.take_violation())
    }

    /// Runs the auditor's end-of-run checks (refresh-interval bounds).
    pub fn finish_audit(&mut self) {
        let now = self.now;
        if let Some(a) = self.audit.as_deref_mut() {
            a.finish(now);
        }
    }

    /// Transactions the channel currently owns: queued plus in-flight
    /// CAS bursts. The conservation auditor reconciles this against its
    /// own request accounting.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.inflight_txns.len()
    }

    /// Fault-injection seam (`WedgeBank`): freezes one bank so no
    /// command ever becomes issuable to it again. Requests queued for
    /// it starve; the forward-progress watchdog must trip.
    pub fn wedge_bank(&mut self, rank: RankId, bank: critmem_common::BankId) {
        self.timing.wedge_bank(rank, bank);
        self.no_cand_until = 0;
    }

    /// Fault-injection seam (`CorruptSchedulerDecision`): mutates the
    /// bank timing state with a rogue pair of back-to-back ACTs to rank
    /// 0 bank 0 in the same cycle — the second lands on the bank the
    /// first just opened, which no legal scheduler decision can
    /// produce. The model's own assertions are bypassed on purpose:
    /// without the auditor this silently perturbs timing (exactly the
    /// corruption class the audit exists to catch); with it, the
    /// violation surfaces as a typed error.
    pub fn corrupt_decision(&mut self) {
        let now = self.now;
        for row in [1, 2] {
            let cmd = DramCommand {
                kind: CommandKind::Activate,
                rank: RankId(0),
                bank: critmem_common::BankId(0),
                row,
            };
            if let Some(a) = self.audit.as_deref_mut() {
                a.observe(&cmd, now);
            }
            self.timing.issue_unchecked(&cmd, now);
        }
        self.no_cand_until = 0;
    }

    /// Current DRAM cycle.
    pub fn now(&self) -> DramCycle {
        self.now
    }

    /// Number of queued transactions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the transaction queue can accept another entry.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Age (in DRAM cycles) of the oldest queued transaction, or
    /// `None` when the queue is empty. The forward-progress watchdog
    /// compares this against its request-age limit: the §3.2
    /// starvation cap should have forced anything this old out long
    /// ago, so an ancient entry means the scheduler is wedged.
    pub fn oldest_queued_age(&self) -> Option<DramCycle> {
        self.queue.iter().map(|t| t.age(self.now)).max()
    }

    /// Appends the per-bank transaction-queue state (count and oldest
    /// age per bank; only non-empty banks) for a watchdog diagnostic
    /// snapshot.
    pub fn bank_queue_snapshot(&self, out: &mut Vec<critmem_common::BankQueueState>) {
        let bpr = self.timing.banks_per_rank();
        let nbanks = self.timing.ranks() * bpr;
        let mut queued = vec![0usize; nbanks];
        let mut oldest = vec![0u64; nbanks];
        for txn in &self.queue {
            let idx = txn.loc.rank.index() * bpr + txn.loc.bank.index();
            queued[idx] += 1;
            oldest[idx] = oldest[idx].max(txn.age(self.now));
        }
        for (idx, &n) in queued.iter().enumerate() {
            if n > 0 {
                out.push(critmem_common::BankQueueState {
                    channel: self.channel.0,
                    bank: idx as u16,
                    queued: n,
                    oldest_age: oldest[idx],
                });
            }
        }
    }

    /// Reports channel statistics plus scheduler-internal metrics (the
    /// latter `sched_`-prefixed) to the observability layer. The caller
    /// is expected to have set the component path (e.g. `dram.ch0`).
    pub fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        self.stats.observe(v);
        v.gauge("queue_depth", "transactions", self.queue.len() as f64);
        self.scheduler.observe_metrics(v);
    }

    /// Enqueues a request. Returns the request back if the queue is
    /// full (the caller retries later).
    ///
    /// # Panics
    ///
    /// Panics if the request's address maps to a different channel.
    pub fn enqueue(&mut self, req: MemRequest, loc: DramLocation) -> Result<(), MemRequest> {
        assert_eq!(loc.channel, self.channel, "request routed to wrong channel");
        if !self.has_space() {
            self.stats.rejected_full += 1;
            return Err(req);
        }
        let txn = Transaction::new(req, loc, self.now, self.seq);
        self.seq += 1;
        self.no_cand_until = 0;
        if !txn.is_read() {
            self.queued_writes += 1;
        } else if txn.req.crit.is_critical() {
            self.queued_crit_reads += 1;
        }
        self.scheduler.on_enqueue(&txn, self.now);
        self.queue.push(txn);
        Ok(())
    }

    /// Raises the criticality annotation of an already-queued request,
    /// identified by request id. Returns `true` if the request was
    /// still queued. This models the §5.1 "naive" scheme where the
    /// ROB-block event itself is forwarded to the controller over a
    /// side channel.
    pub fn promote_request(
        &mut self,
        id: critmem_common::ReqId,
        crit: critmem_common::Criticality,
    ) -> bool {
        for txn in &mut self.queue {
            if txn.req.id == id {
                if crit > txn.req.crit {
                    if txn.is_read() && crit.is_critical() && !txn.req.crit.is_critical() {
                        self.queued_crit_reads += 1;
                    }
                    txn.req.crit = crit;
                }
                return true;
            }
        }
        false
    }

    /// Raises the criticality of a queued read matching `(line
    /// address, core)` — same purpose as [`Self::promote_request`]
    /// when the sender only knows the address.
    pub fn promote_by_addr(
        &mut self,
        addr: critmem_common::PhysAddr,
        core: critmem_common::CoreId,
        crit: critmem_common::Criticality,
    ) -> bool {
        for txn in &mut self.queue {
            if txn.req.addr == addr && txn.req.core == core && txn.is_read() {
                if crit > txn.req.crit {
                    if crit.is_critical() && !txn.req.crit.is_critical() {
                        self.queued_crit_reads += 1;
                    }
                    txn.req.crit = crit;
                }
                return true;
            }
        }
        false
    }

    /// Advances the channel by one DRAM cycle; returns transactions
    /// whose data finished transferring this cycle.
    ///
    /// Convenience wrapper over [`Self::tick_into`]; hot callers should
    /// pass a reused buffer to `tick_into` instead (the returned `Vec`
    /// only allocates when completions actually occur).
    pub fn tick(&mut self) -> Vec<CompletedTxn> {
        let mut out = Vec::new();
        self.tick_into(&mut out);
        out
    }

    /// Advances the channel by one DRAM cycle, appending transactions
    /// whose data finished transferring this cycle to `out`.
    ///
    /// This is the allocation-free hot path: all per-cycle working sets
    /// (candidate list, refresh ranks, per-bank masks) live in scratch
    /// buffers owned by the controller, so steady-state ticks perform
    /// no heap allocation at all.
    pub fn tick_into(&mut self, out: &mut Vec<CompletedTxn>) {
        self.now += 1;
        let now = self.now;
        self.stats.ticks += 1;
        self.stats.occupancy_sum += self.queue.len() as u64;
        if self.queued_crit_reads >= 1 {
            self.stats.ticks_with_critical += 1;
            if self.queued_crit_reads > 1 {
                self.stats.ticks_with_multiple_critical += 1;
            }
        }
        self.update_direction();

        // Refresh has hard priority: a rank whose refresh has fallen
        // due stops accepting new work until the REF has issued. The
        // per-rank scan is gated on a cached horizon: below
        // `refresh_check_at` with nothing pending it is a no-op, so the
        // common case skips it entirely.
        self.refresh_ranks.clear();
        if self.cfg.refresh_enabled && now >= self.refresh_check_at {
            self.timing
                .update_refresh_into(now, &mut self.refresh_ranks);
            self.refresh_check_at = if self.refresh_ranks.is_empty() {
                self.timing.earliest_refresh_due()
            } else {
                now // stay hot until the REF actually issues
            };
        }
        let mut issued = false;
        if !self.refresh_ranks.is_empty() {
            // Refresh filtering perturbs candidacy: drop any
            // proven-empty window while a refresh is in progress.
            self.no_cand_until = 0;
            let ranks = std::mem::take(&mut self.refresh_ranks);
            issued = self.try_refresh_sequence(&ranks);
            self.refresh_ranks = ranks;
        }

        if !issued {
            if self.queue.is_empty() || now < self.no_cand_until {
                // Fast path — the queue is empty, or a previous build
                // proved no command can become ready before
                // `no_cand_until` and nothing has changed since. The
                // scheduler still observes the cycle.
                let ctx = SchedContext {
                    now,
                    channel: self.channel,
                    queue: &self.queue,
                    timing: &self.timing,
                    direction: self.direction,
                };
                self.scheduler.on_tick(&ctx);
            } else {
                let next_cand_at = self.build_candidates();
                let candidates = std::mem::take(&mut self.cand_buf);
                let choice = {
                    let ctx = SchedContext {
                        now,
                        channel: self.channel,
                        queue: &self.queue,
                        timing: &self.timing,
                        direction: self.direction,
                    };
                    self.scheduler.on_tick(&ctx);
                    if candidates.is_empty() {
                        None
                    } else {
                        self.scheduler.select(&ctx, &candidates)
                    }
                };
                let mut issued_cmd = false;
                if let Some(i) = choice {
                    self.issue_candidate(candidates[i]);
                    issued_cmd = true;
                } else if candidates.is_empty() && self.refresh_ranks.is_empty() {
                    // No refresh exclusions were in force, so the
                    // emptiness proof holds until `next_cand_at`.
                    self.no_cand_until = next_cand_at;
                }
                self.cand_buf = candidates;
                // Post-issue emptiness proof: issuing wipes the window
                // (`issue_candidate` resets it), which used to leave
                // the event horizon pinned to the very next tick just
                // to rebuild the proof — turning every command into a
                // one-tick skip barrier on otherwise-idle channels.
                // Rebuilding right here, against the just-updated bank
                // timing, lets a lightly loaded channel publish the
                // full post-command quiet window (tRCD, tRP, CAS
                // latency) immediately. Gated on queue depth so busy
                // channels — where the next tick almost certainly has
                // a candidate anyway — never pay a second build.
                if issued_cmd
                    && self.refresh_ranks.is_empty()
                    && !self.queue.is_empty()
                    && self.queue.len() <= POST_ISSUE_PROOF_MAX_QUEUE
                {
                    let next = self.build_candidates();
                    if self.cand_buf.is_empty() {
                        self.no_cand_until = next;
                    }
                }
            }
        }

        self.collect_completions_into(out);
    }

    /// The earliest future DRAM cycle at which [`Self::tick_into`]
    /// could do anything beyond the per-cycle bookkeeping that
    /// [`Self::skip`] replays in closed form. Returns at least
    /// `now + 1`; `DramCycle::MAX` means the channel is inert until new
    /// work arrives.
    ///
    /// This is the channel's half of the skip-ahead contract,
    /// generalizing the proven-empty candidate-window optimization
    /// (`no_cand_until`) into a full event horizon. A tick is pure
    /// bookkeeping exactly when every stage of `tick_into` is provably
    /// a no-op, so the horizon is the min over:
    ///
    /// * the earliest in-flight CAS completion,
    /// * the refresh scan gate (`refresh_check_at`; the gate "stays
    ///   hot" — equals `now` — while a REF is pending, pinning the
    ///   horizon to `now + 1` until it issues),
    /// * the proven-empty candidate window (`no_cand_until`) when
    ///   transactions are queued — a window of 0 means "rebuild next
    ///   tick". `build_candidates` already folds starvation-cap
    ///   crossings into this bound, so a promotion-counting cycle is
    ///   never jumped,
    /// * a pending read/write direction switch (would fire next tick),
    /// * the scheduler's own quantum/shuffle horizon
    ///   ([`CommandScheduler::next_event_cycle`]).
    pub fn next_event_cycle(&self) -> DramCycle {
        let nxt = self.now + 1;
        let mut horizon = DramCycle::MAX;
        if let Some(&Reverse((done, _))) = self.inflight.peek() {
            horizon = horizon.min(done);
        }
        if self.cfg.refresh_enabled {
            horizon = horizon.min(self.refresh_check_at.max(nxt));
        }
        if !self.queue.is_empty() {
            horizon = horizon.min(self.no_cand_until.max(nxt));
        }
        if self.direction_would_change() {
            horizon = horizon.min(nxt);
        }
        horizon = horizon.min(
            self.scheduler
                .next_event_cycle(self.now, self.queue.len())
                .max(nxt),
        );
        horizon.max(nxt)
    }

    /// Whether the next [`Self::tick_into`]'s `update_direction` would
    /// flip the service direction or the draining flag. Non-mutating
    /// replica of `update_direction`'s transition conditions; both
    /// fields are checkpointed state, so a skipped cycle must not
    /// change them.
    fn direction_would_change(&self) -> bool {
        let writes = self.queued_writes;
        let reads = self.queue.len() - writes;
        match self.direction {
            Direction::Read => {
                writes >= self.cfg.write_high_watermark || (reads == 0 && writes > 0)
            }
            Direction::Write => {
                writes == 0
                    || (self.draining && writes <= self.cfg.write_low_watermark)
                    || (!self.draining && reads > 0)
            }
        }
    }

    /// Batch-advances `d` DRAM cycles that [`Self::next_event_cycle`]
    /// proved inert (the caller guarantees
    /// `now + d < next_event_cycle()`), replaying exactly the per-cycle
    /// statistics a serial run of `d` such ticks would have
    /// accumulated. Timing state, the transaction queue, the scheduler,
    /// and the direction machine are untouched — that is what the
    /// horizon proved.
    pub fn skip(&mut self, d: DramCycle) {
        self.now += d;
        self.stats.ticks += d;
        self.stats.occupancy_sum += self.queue.len() as u64 * d;
        if self.queued_crit_reads >= 1 {
            self.stats.ticks_with_critical += d;
            if self.queued_crit_reads > 1 {
                self.stats.ticks_with_multiple_critical += d;
            }
        }
    }

    fn update_direction(&mut self) {
        debug_assert_eq!(
            self.queued_writes,
            self.queue.iter().filter(|t| !t.is_read()).count(),
            "incremental write count out of sync"
        );
        debug_assert_eq!(
            self.queued_crit_reads,
            self.queue
                .iter()
                .filter(|t| t.is_read() && t.req.crit.is_critical())
                .count(),
            "incremental critical-read count out of sync"
        );
        let writes = self.queued_writes;
        let reads = self.queue.len() - writes;
        let before = self.direction;
        match self.direction {
            Direction::Read => {
                if writes >= self.cfg.write_high_watermark {
                    self.direction = Direction::Write;
                    self.draining = true;
                } else if reads == 0 && writes > 0 {
                    self.direction = Direction::Write;
                    self.draining = false;
                }
            }
            Direction::Write => {
                if writes == 0
                    || (self.draining && writes <= self.cfg.write_low_watermark)
                    || (!self.draining && reads > 0)
                {
                    self.direction = Direction::Read;
                    self.draining = false;
                }
            }
        }
        if self.direction != before {
            self.no_cand_until = 0;
        }
    }

    /// Attempts to advance the refresh sequence for the first pending
    /// rank; returns `true` if a command slot was consumed.
    fn try_refresh_sequence(&mut self, pending: &[RankId]) -> bool {
        let now = self.now;
        for &rank in pending {
            let refresh = DramCommand {
                kind: CommandKind::Refresh,
                rank,
                bank: critmem_common::BankId(0),
                row: 0,
            };
            if let Some(t) = self.timing.earliest_issue(&refresh) {
                if t <= now {
                    if let Some(a) = self.audit.as_deref_mut() {
                        a.observe(&refresh, now);
                    }
                    self.timing.issue(&refresh, now);
                    self.stats.refreshes += 1;
                    return true;
                }
                continue;
            }
            // Some bank is still open: precharge the first ready one.
            let bpr = self.timing.banks_per_rank();
            for b in 0..bpr {
                let bank = critmem_common::BankId(b as u8);
                if self.timing.bank(rank, bank).open_row.is_none() {
                    continue;
                }
                let pre = DramCommand {
                    kind: CommandKind::Precharge,
                    rank,
                    bank,
                    row: 0,
                };
                if let Some(t) = self.timing.earliest_issue(&pre) {
                    if t <= now {
                        if let Some(a) = self.audit.as_deref_mut() {
                            a.observe(&pre, now);
                        }
                        self.timing.issue(&pre, now);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Generates the ready-command candidate list for this cycle.
    ///
    /// Starvation enforcement is the controller's job, not the
    /// scheduler's (§3.2's 6,000-cycle cap): if any *ready* command
    /// belongs to a transaction that has aged past the cap, only those
    /// commands are offered to the scheduler, so even schedulers that
    /// ignore the criticality annotation (plain FR-FCFS, AHB, …)
    /// cannot starve a request indefinitely behind a stream of row
    /// hits.
    /// Fills `cand_buf` with this cycle's ready commands. Returns the
    /// earliest future cycle at which the candidate set could become
    /// non-empty *absent any state change* — the caller may skip
    /// generation until then if the set came back empty.
    fn build_candidates(&mut self) -> DramCycle {
        let now = self.now;
        let cap = self.cfg.starvation_cap;
        let bpr = self.timing.banks_per_rank();
        let ranks = self.timing.ranks();
        let nbanks = ranks * bpr;
        let mut next_cand_at = u64::MAX;
        self.open_row_wanted.clear();
        self.open_row_wanted.resize(nbanks, false);
        self.starved_bank.clear();
        self.starved_bank.resize(nbanks, false);
        // One pass: count starvation promotions (once per transaction),
        // and record which banks' open rows are still wanted by a
        // same-direction transaction (so a PRE would waste row hits)
        // and which banks have a starved transaction (those banks are
        // quiesced: no non-starved work may issue there, or the
        // starved PRE's tRTP window would keep sliding forever).
        for txn in &mut self.queue {
            if !txn.starved {
                if txn.age(now) > cap {
                    txn.starved = true;
                    self.stats.starvation_promotions += 1;
                } else {
                    // A starvation crossing changes candidacy (and is
                    // counted at an exact cycle): cap any emptiness
                    // window at the next crossing.
                    next_cand_at = next_cand_at.min(txn.arrival.saturating_add(cap + 1));
                }
            }
            if !txn.matches_direction(self.direction) {
                continue;
            }
            let idx = txn.loc.rank.index() * bpr + txn.loc.bank.index();
            if self.timing.bank(txn.loc.rank, txn.loc.bank).open_row == Some(txn.loc.row) {
                self.open_row_wanted[idx] = true;
            }
            if txn.starved {
                self.starved_bank[idx] = true;
            }
        }
        // All CAS candidates this cycle share one direction, so the
        // data-bus floor only depends on the rank: compute it once per
        // rank instead of once per queued transaction.
        let cas_kind = match self.direction {
            Direction::Read => CommandKind::Read,
            Direction::Write => CommandKind::Write,
        };
        self.bus_floor.clear();
        for r in 0..ranks {
            self.bus_floor
                .push(self.timing.cas_bus_floor(cas_kind, RankId(r as u8)));
        }
        self.cand_buf.clear();
        for (i, txn) in self.queue.iter().enumerate() {
            if !txn.matches_direction(self.direction) {
                continue;
            }
            if self.refresh_ranks.contains(&txn.loc.rank) {
                continue;
            }
            // Bank quiescence for the starvation cap (§3.2).
            let idx = txn.loc.rank.index() * bpr + txn.loc.bank.index();
            if self.starved_bank[idx] && !txn.starved {
                continue;
            }
            let bank = self.timing.bank(txn.loc.rank, txn.loc.bank);
            let (kind, ready, row_hit) = match bank.open_row {
                Some(r) if r == txn.loc.row => {
                    let own = if txn.is_read() {
                        bank.next_rd
                    } else {
                        bank.next_wr
                    };
                    (
                        cas_kind,
                        own.max(self.bus_floor[txn.loc.rank.index()]),
                        true,
                    )
                }
                Some(_) => {
                    // Row conflict: precharge, but not while another
                    // serviceable transaction still wants the open row
                    // — unless this transaction is starved, in which
                    // case it may close the row regardless.
                    if self.open_row_wanted[idx] && !txn.starved {
                        continue;
                    }
                    (CommandKind::Precharge, bank.next_pre, false)
                }
                None => (CommandKind::Activate, bank.next_act, false),
            };
            if ready > now {
                next_cand_at = next_cand_at.min(ready);
                continue;
            }
            self.cand_buf.push(Candidate {
                txn: i,
                cmd: DramCommand {
                    kind,
                    rank: txn.loc.rank,
                    bank: txn.loc.bank,
                    row: txn.loc.row,
                },
                row_hit,
                crit: txn.effective_criticality(now, cap),
            });
        }
        next_cand_at
    }

    fn issue_candidate(&mut self, cand: Candidate) {
        let now = self.now;
        self.no_cand_until = 0;
        if let Some(a) = self.audit.as_deref_mut() {
            a.observe(&cand.cmd, now);
        }
        self.timing.issue(&cand.cmd, now);
        match cand.cmd.kind {
            CommandKind::Activate => {
                self.queue[cand.txn].caused_activate = true;
            }
            CommandKind::Precharge => {
                self.queue[cand.txn].caused_precharge = true;
            }
            CommandKind::Read | CommandKind::Write => {
                let txn = self.queue.swap_remove(cand.txn);
                if !txn.is_read() {
                    self.queued_writes -= 1;
                } else if txn.req.crit.is_critical() {
                    self.queued_crit_reads -= 1;
                }
                if txn.caused_precharge {
                    self.stats.row_conflicts += 1;
                } else if txn.caused_activate {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                self.stats.bus_busy_cycles += self.timing.timing().burst_cycles();
                let done_at = self.timing.cas_done_at(cand.cmd.kind, now);
                self.scheduler.on_complete(&txn, now);
                let completed = CompletedTxn {
                    req: txn.req,
                    done_at,
                    arrival: txn.arrival,
                };
                let key = self.seq;
                self.seq += 1;
                self.inflight.push(Reverse((done_at, key)));
                self.inflight_txns.push((key, completed));
            }
            CommandKind::Refresh => unreachable!("refresh issued outside candidate path"),
        }
    }

    fn collect_completions_into(&mut self, out: &mut Vec<CompletedTxn>) {
        let now = self.now;
        while let Some(&Reverse((done, key))) = self.inflight.peek() {
            if done > now {
                break;
            }
            self.inflight.pop();
            let pos = self
                .inflight_txns
                .iter()
                .position(|(k, _)| *k == key)
                .expect("in-flight bookkeeping out of sync");
            let (_, txn) = self.inflight_txns.swap_remove(pos);
            if txn.req.kind.is_read() {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += txn.done_at - txn.arrival;
                if txn.req.crit.is_critical() {
                    self.stats.critical_reads_completed += 1;
                    self.stats.critical_read_latency_sum += txn.done_at - txn.arrival;
                }
            } else {
                self.stats.writes_completed += 1;
            }
            out.push(txn);
        }
    }

    /// Swaps in a different scheduler, discarding the old one's state.
    /// Used when restoring a checkpoint into a cell that studies a
    /// different scheduling policy than the one that warmed it.
    pub fn replace_scheduler(&mut self, scheduler: Box<dyn CommandScheduler>) {
        self.scheduler = scheduler;
        self.no_cand_until = 0;
    }

    /// Serializes the channel's architectural state (timing, queue,
    /// in-flight CAS bursts, direction policy, statistics) plus the
    /// scheduler's own state as a length-prefixed block — so a restore
    /// may discard the block when swapping policies.
    pub fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        self.timing.save_state(w);
        w.put_u32(self.queue.len() as u32);
        for txn in &self.queue {
            txn.encode(w);
        }
        // BinaryHeap iteration order is unspecified: serialize sorted.
        let mut inflight: Vec<(DramCycle, u64)> =
            self.inflight.iter().map(|Reverse(p)| *p).collect();
        inflight.sort_unstable();
        w.put_u32(inflight.len() as u32);
        for (done, key) in inflight {
            w.put_u64(done);
            w.put_u64(key);
        }
        w.put_u32(self.inflight_txns.len() as u32);
        for (key, txn) in &self.inflight_txns {
            w.put_u64(*key);
            txn.req.encode(w);
            w.put_u64(txn.done_at);
            w.put_u64(txn.arrival);
        }
        w.put_u64(self.now);
        w.put_u64(self.seq);
        w.put_bool(self.direction == Direction::Write);
        w.put_bool(self.draining);
        self.stats.encode(w);
        w.put_u64(self.queued_writes as u64);
        w.put_u64(self.queued_crit_reads as u64);
        w.put_u64(self.refresh_check_at);
        let mut sched = critmem_common::codec::ByteWriter::new();
        self.scheduler.save_state(&mut sched);
        w.put_bytes(&sched.into_bytes());
    }

    /// Restores state written by [`Self::save_state`]. When
    /// `load_scheduler` is `false` the scheduler block is skipped and
    /// the freshly constructed scheduler keeps its initial state (the
    /// policy-override hook).
    ///
    /// # Errors
    ///
    /// Fails on a truncated or shape-mismatched snapshot.
    pub fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
        load_scheduler: bool,
    ) -> Result<(), critmem_common::codec::CodecError> {
        self.timing.load_state(r)?;
        let n = r.get_u32()? as usize;
        if n > self.cfg.queue_capacity {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {n} transactions, queue capacity is {}",
                    self.cfg.queue_capacity
                ),
                offset: r.position(),
            });
        }
        self.queue.clear();
        for _ in 0..n {
            self.queue.push(Transaction::decode(r)?);
        }
        self.inflight.clear();
        for _ in 0..r.get_u32()? {
            let done = r.get_u64()?;
            let key = r.get_u64()?;
            self.inflight.push(Reverse((done, key)));
        }
        self.inflight_txns.clear();
        for _ in 0..r.get_u32()? {
            let key = r.get_u64()?;
            let req = MemRequest::decode(r)?;
            let done_at = r.get_u64()?;
            let arrival = r.get_u64()?;
            self.inflight_txns.push((
                key,
                CompletedTxn {
                    req,
                    done_at,
                    arrival,
                },
            ));
        }
        self.now = r.get_u64()?;
        self.seq = r.get_u64()?;
        self.direction = if r.get_bool()? {
            Direction::Write
        } else {
            Direction::Read
        };
        self.draining = r.get_bool()?;
        self.stats = ChannelStats::decode(r)?;
        self.queued_writes = r.get_u64()? as usize;
        self.queued_crit_reads = r.get_u64()? as usize;
        self.refresh_check_at = r.get_u64()?;
        // Candidate-emptiness proofs do not survive a restore; rebuild.
        self.no_cand_until = 0;
        let sched = r.get_bytes()?;
        if load_scheduler {
            let mut sr = critmem_common::codec::ByteReader::new(&sched);
            self.scheduler.load_state(&mut sr)?;
        }
        // Shadow history does not survive a restore either: re-seed
        // from the freshly loaded bank state (open rows; timing floors
        // re-accumulate from the first observed command).
        if self.audit.is_some() {
            self.enable_audit();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{AddressMapping, Interleaving};
    use crate::scheduler::Fcfs;
    use critmem_common::{AccessKind, CoreId};

    fn controller() -> (ChannelController, AddressMapping) {
        let cfg = DramConfig::paper_baseline();
        let map = AddressMapping::new(cfg.org, Interleaving::Page);
        (
            ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new())),
            map,
        )
    }

    fn read_req(id: u64, addr: u64) -> MemRequest {
        MemRequest::new(id, addr, AccessKind::Read, CoreId(0))
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let (mut ctl, map) = controller();
        let addr = 0u64;
        ctl.enqueue(read_req(1, addr), map.locate(addr)).unwrap();
        let mut done = None;
        for _ in 0..200 {
            let completions = ctl.tick();
            if let Some(c) = completions.into_iter().next() {
                done = Some(c);
                break;
            }
        }
        let c = done.expect("read never completed");
        // Closed bank: ACT at cycle 1, READ at 1+tRCD, data at +tCL+4.
        let t = DDR3_2133_T;
        assert_eq!(c.done_at, 1 + t.0 + t.1 + 4);
        assert_eq!(c.req.id, 1);
    }

    const DDR3_2133_T: (u64, u64) = (14, 14); // (tRCD, tCL)

    #[test]
    fn row_hit_second_read_is_faster() {
        let (mut ctl, map) = controller();
        ctl.enqueue(read_req(1, 0), map.locate(0)).unwrap();
        ctl.enqueue(read_req(2, 64), map.locate(64)).unwrap();
        let mut done = Vec::new();
        for _ in 0..200 {
            done.extend(ctl.tick());
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(ctl.stats().row_hits, 1);
        // Second read issues tCCD after the first, not tRCD.
        let gap = done[1].done_at - done[0].done_at;
        assert_eq!(gap, 4); // tCCD
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ctl, map) = controller();
        for i in 0..64 {
            ctl.enqueue(read_req(i, i * 4096), map.locate(0))
                .unwrap_or_else(|_| panic!("queue should accept 64 entries, failed at {i}"));
        }
        assert!(ctl.enqueue(read_req(99, 0), map.locate(0)).is_err());
        assert_eq!(ctl.stats().rejected_full, 1);
    }

    #[test]
    fn writes_drain_when_no_reads() {
        let (mut ctl, map) = controller();
        let req = MemRequest::new(1, 0, AccessKind::Write, CoreId(0));
        ctl.enqueue(req, map.locate(0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..200 {
            done.extend(ctl.tick());
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(ctl.stats().writes_completed, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let (mut ctl, map) = controller();
        // One write, then a read: the read should finish first because
        // the controller stays in read mode.
        let w = MemRequest::new(1, 4096, AccessKind::Write, CoreId(0));
        ctl.enqueue(w, map.locate(4096)).unwrap();
        ctl.enqueue(read_req(2, 0), map.locate(0)).unwrap();
        let mut order = Vec::new();
        for _ in 0..500 {
            for c in ctl.tick() {
                order.push(c.req.id);
            }
            if order.len() == 2 {
                break;
            }
        }
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn refresh_eventually_issues() {
        let (mut ctl, _map) = controller();
        let trefi = 8_328u64;
        for _ in 0..trefi + 200 {
            ctl.tick();
        }
        assert!(ctl.stats().refreshes >= 1, "no refresh after tREFI");
    }

    #[test]
    fn starvation_cap_promotes_old_requests() {
        // A stream of row hits to bank 0 must not starve a conflicting
        // request forever once the cap kicks in.
        let mut cfg = DramConfig::paper_baseline();
        cfg.starvation_cap = 200;
        cfg.refresh_enabled = false;
        let map = AddressMapping::new(cfg.org, Interleaving::Page);
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        let victim = 16 * 1024 * 1024; // same bank, different row (big offset)
        let vloc = map.locate(victim);
        let base = map.locate(0);
        assert_eq!(vloc.channel, base.channel);
        ctl.enqueue(read_req(1, victim), vloc).unwrap();
        let mut completed = false;
        for i in 0..4_000u64 {
            for c in ctl.tick() {
                if c.req.id == 1 {
                    completed = true;
                }
            }
            if completed {
                break;
            }
            // Keep feeding row hits to row 0 (FCFS will serve oldest
            // first anyway; this exercises the promotion accounting).
            if i % 8 == 0 {
                let addr = (i % 16) * 64;
                let _ = ctl.enqueue(read_req(100 + i, addr), map.locate(addr));
            }
        }
        assert!(completed, "victim request starved");
    }

    #[test]
    fn zero_tick_stats_do_not_divide_by_zero() {
        let stats = ChannelStats::default();
        assert_eq!(stats.mean_occupancy(), 0.0);
        assert_eq!(stats.row_hit_rate(), 0.0);
        assert_eq!(stats.mean_read_latency(), 0.0);
    }

    #[test]
    fn tick_into_reuses_caller_buffer() {
        let (mut ctl, map) = controller();
        ctl.enqueue(read_req(1, 0), map.locate(0)).unwrap();
        let mut out = Vec::with_capacity(4);
        let mut done = Vec::new();
        for _ in 0..200 {
            out.clear();
            ctl.tick_into(&mut out);
            done.append(&mut out);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].req.id, 1);
    }

    #[test]
    fn promotion_keeps_critical_occupancy_stats() {
        let (mut ctl, map) = controller();
        let addr = 16 * 1024 * 1024;
        ctl.enqueue(read_req(1, addr), map.locate(addr)).unwrap();
        ctl.tick();
        assert_eq!(ctl.stats().ticks_with_critical, 0);
        assert!(ctl.promote_request(1, critmem_common::Criticality::ranked(7)));
        ctl.tick();
        assert_eq!(ctl.stats().ticks_with_critical, 1);
    }

    #[test]
    fn occupancy_tracks_queue() {
        let (mut ctl, map) = controller();
        ctl.enqueue(read_req(1, 0), map.locate(0)).unwrap();
        ctl.tick();
        assert!(ctl.stats().occupancy_sum >= 1);
        assert_eq!(ctl.stats().ticks, 1);
    }
}

#[cfg(test)]
mod refresh_gate_tests {
    use super::*;
    use crate::scheduler::Fcfs;
    use critmem_common::ChannelId;

    #[test]
    fn disabling_refresh_suppresses_ref_commands() {
        let mut cfg = DramConfig::paper_baseline();
        cfg.refresh_enabled = false;
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        for _ in 0..cfg.preset.timing.t_refi * 3 {
            ctl.tick();
        }
        assert_eq!(ctl.stats().refreshes, 0);
    }
}
