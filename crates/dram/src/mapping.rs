//! Physical-address to DRAM-coordinate mapping.
//!
//! The paper's configuration uses *page interleaving* (Table 3):
//! consecutive addresses stay within one row buffer until the row is
//! exhausted, and consecutive rows are spread across channels, then
//! banks, then ranks. This maximizes row-buffer locality for streaming
//! access patterns, which is what makes FR-FCFS's CAS-over-RAS rule
//! profitable.
//!
//! A cache-line interleaving alternative is provided for the ablation
//! benches (design decision 5 in DESIGN.md).

use crate::config::DramOrganization;
use critmem_common::{BankId, ChannelId, PhysAddr, RankId};

/// Where a physical address lands in the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel servicing the address.
    pub channel: ChannelId,
    /// Rank within the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: u32,
    /// Column (cache-line granularity) within the row.
    pub column: u32,
}

/// Interleaving policy for splitting an address into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interleaving {
    /// Row bits above channel/bank/rank bits: a whole row's worth of
    /// consecutive addresses map to the same bank (the paper's policy).
    #[default]
    Page,
    /// Channel/bank bits directly above the line offset: consecutive
    /// lines round-robin across channels and banks.
    CacheLine,
}

/// Address mapper for a given DRAM organization.
///
/// # Examples
///
/// ```
/// use critmem_dram::{AddressMapping, DramOrganization, Interleaving};
///
/// let org = DramOrganization::paper_baseline();
/// let map = AddressMapping::new(org, Interleaving::Page);
/// let a = map.locate(0x0000);
/// let b = map.locate(0x0040); // next cache line
/// // Page interleaving: same row, adjacent column.
/// assert_eq!(a.row, b.row);
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(b.column, a.column + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    org: DramOrganization,
    interleaving: Interleaving,
    line_bits: u32,
    col_bits: u32,
    chan_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
}

impl AddressMapping {
    /// Builds a mapper for the organization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of the organization is not a power of
    /// two (hardware address slicing requires it).
    pub fn new(org: DramOrganization, interleaving: Interleaving) -> Self {
        let pow2 = |n: u64, what: &str| -> u32 {
            assert!(n.is_power_of_two(), "{what} ({n}) must be a power of two");
            n.trailing_zeros()
        };
        let line_bits = pow2(org.line_bytes, "line size");
        let lines_per_row = org.row_bytes / org.line_bytes;
        AddressMapping {
            org,
            interleaving,
            line_bits,
            col_bits: pow2(lines_per_row, "lines per row"),
            chan_bits: pow2(org.channels as u64, "channel count"),
            bank_bits: pow2(org.banks_per_rank as u64, "banks per rank"),
            rank_bits: pow2(org.ranks_per_channel as u64, "ranks per channel"),
        }
    }

    /// The organization this mapper was built for.
    pub fn organization(&self) -> DramOrganization {
        self.org
    }

    /// Maps a physical address to its DRAM coordinates.
    pub fn locate(&self, addr: PhysAddr) -> DramLocation {
        let mut a = addr >> self.line_bits;
        let mut take = |bits: u32| -> u64 {
            let v = a & ((1u64 << bits) - 1);
            a >>= bits;
            v
        };
        match self.interleaving {
            Interleaving::Page => {
                let column = take(self.col_bits) as u32;
                let channel = ChannelId(take(self.chan_bits) as u8);
                let bank = BankId(take(self.bank_bits) as u8);
                let rank = RankId(take(self.rank_bits) as u8);
                let row = (a & 0xFFFF_FFFF) as u32;
                DramLocation {
                    channel,
                    rank,
                    bank,
                    row,
                    column,
                }
            }
            Interleaving::CacheLine => {
                let channel = ChannelId(take(self.chan_bits) as u8);
                let bank = BankId(take(self.bank_bits) as u8);
                let rank = RankId(take(self.rank_bits) as u8);
                let column = take(self.col_bits) as u32;
                let row = (a & 0xFFFF_FFFF) as u32;
                DramLocation {
                    channel,
                    rank,
                    bank,
                    row,
                    column,
                }
            }
        }
    }

    /// Number of cache lines per row buffer (16 for 1 KB rows of 64 B
    /// lines).
    pub fn lines_per_row(&self) -> u64 {
        1u64 << self.col_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> AddressMapping {
        AddressMapping::new(DramOrganization::paper_baseline(), Interleaving::Page)
    }

    #[test]
    fn sixteen_lines_per_1kb_row() {
        assert_eq!(baseline().lines_per_row(), 16);
    }

    #[test]
    fn page_interleave_keeps_row_until_exhausted() {
        let m = baseline();
        let first = m.locate(0);
        for line in 1..16u64 {
            let loc = m.locate(line * 64);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.rank, first.rank);
            assert_eq!(loc.channel, first.channel);
            assert_eq!(loc.column, line as u32);
        }
        // The 17th line moves to the next channel (page interleaving).
        let next = m.locate(16 * 64);
        assert_ne!(next.channel, first.channel);
        assert_eq!(next.column, 0);
    }

    #[test]
    fn page_interleave_walks_channels_then_banks_then_ranks() {
        let m = baseline();
        let row_bytes = 1024u64;
        // 4 channels: pages 0..4 hit channels 0..4.
        for ch in 0..4u64 {
            assert_eq!(m.locate(ch * row_bytes).channel, ChannelId(ch as u8));
        }
        // After all channels, the bank advances.
        let loc = m.locate(4 * row_bytes);
        assert_eq!(loc.channel, ChannelId(0));
        assert_eq!(loc.bank, BankId(1));
        // After 4 channels x 8 banks, the rank advances.
        let loc = m.locate(32 * row_bytes);
        assert_eq!(loc.bank, BankId(0));
        assert_eq!(loc.rank, RankId(1));
        // After 4 x 8 x 4, the row advances.
        let loc = m.locate(128 * row_bytes);
        assert_eq!(loc.rank, RankId(0));
        assert_eq!(loc.row, 1);
    }

    #[test]
    fn cache_line_interleave_round_robins_channels() {
        let m = AddressMapping::new(DramOrganization::paper_baseline(), Interleaving::CacheLine);
        for line in 0..8u64 {
            let loc = m.locate(line * 64);
            assert_eq!(loc.channel, ChannelId((line % 4) as u8));
        }
    }

    #[test]
    fn distinct_addresses_distinct_locations() {
        let m = baseline();
        let a = m.locate(0x1234_5678 & !63);
        let b = m.locate((0x1234_5678 & !63) + 64);
        assert_ne!(
            (a.row, a.column, a.bank.0, a.rank.0, a.channel.0),
            (b.row, b.column, b.bank.0, b.rank.0, b.channel.0)
        );
    }

    #[test]
    fn two_channel_multiprogrammed_organization() {
        let mut org = DramOrganization::paper_baseline();
        org.channels = 2;
        let m = AddressMapping::new(org, Interleaving::Page);
        let a = m.locate(1024);
        let b = m.locate(2 * 1024);
        assert_eq!(a.channel, ChannelId(1));
        assert_eq!(b.channel, ChannelId(0));
        assert_eq!(b.bank, BankId(1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut org = DramOrganization::paper_baseline();
        org.channels = 3;
        let _ = AddressMapping::new(org, Interleaving::Page);
    }
}
