//! Cycle-level DDR3 DRAM model for the `critmem` simulator.
//!
//! Implements the memory subsystem of Table 3 of the ISCA 2013 paper
//! *"Improving Memory Scheduling via Processor-Side Load Criticality
//! Information"*: a quad-channel, quad-rank DDR3-2133 system with
//! eight banks per rank, 1 KB row buffers, open-page policy, page
//! interleaving, a 64-entry transaction queue per channel, and full
//! JEDEC-style timing (tRCD/tCL/tWL/tCCD/tWTR/tWR/tRTP/tRP/tRRD/tRTRS/
//! tRAS/tRC plus refresh with tRFC).
//!
//! The scheduling *policy* is pluggable via [`CommandScheduler`]; the
//! policies themselves (FR-FCFS, the paper's criticality-aware
//! variants, AHB, PAR-BS, TCM, MORSE) live in the `critmem-sched`
//! crate.
//!
//! # Examples
//!
//! ```
//! use critmem_dram::{DramConfig, DramSystem, Fcfs};
//! use critmem_common::{AccessKind, CoreId, MemRequest};
//!
//! let cfg = DramConfig::paper_baseline();
//! let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
//! dram.enqueue(MemRequest::new(1, 0x40, AccessKind::Read, CoreId(0))).unwrap();
//! let mut completions = Vec::new();
//! for _ in 0..100 {
//!     completions.extend_from_slice(dram.tick());
//! }
//! assert_eq!(completions.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod bank;
pub mod command;
pub mod config;
pub mod controller;
pub mod mapping;
pub mod queue;
pub mod scheduler;
pub mod timing;

pub use bank::{Bank, ChannelTiming};
pub use command::{CommandKind, DramCommand};
pub use config::{DramConfig, DramOrganization};
pub use controller::{ChannelController, ChannelStats, CompletedTxn};
pub use mapping::{AddressMapping, DramLocation, Interleaving};
pub use queue::{Direction, Transaction};
pub use scheduler::{Candidate, CommandScheduler, Fcfs, SchedContext};
pub use timing::{DevicePreset, TimingParams, DDR3_1066, DDR3_1600, DDR3_2133};

use critmem_common::{ChannelId, MemRequest};

/// The full multi-channel DRAM subsystem: one [`ChannelController`] per
/// channel plus the shared address mapping.
///
/// The caller (the system model in the `critmem` crate) owns the clock
/// crossing: [`DramSystem::tick`] advances every channel by exactly one
/// DRAM cycle.
pub struct DramSystem {
    controllers: Vec<ChannelController>,
    mapping: AddressMapping,
    cfg: DramConfig,
    /// Completion buffer reused across ticks (returned by slice).
    completions: Vec<CompletedTxn>,
}

impl std::fmt::Debug for DramSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramSystem")
            .field("channels", &self.controllers.len())
            .field("preset", &self.cfg.preset.name)
            .finish_non_exhaustive()
    }
}

impl DramSystem {
    /// Builds the subsystem, instantiating one scheduler per channel
    /// via `make_scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new<F>(cfg: DramConfig, mut make_scheduler: F) -> Self
    where
        F: FnMut(ChannelId) -> Box<dyn CommandScheduler>,
    {
        cfg.validate().expect("invalid DRAM configuration");
        let mapping = AddressMapping::new(cfg.org, cfg.interleaving);
        let controllers = (0..cfg.org.channels)
            .map(|c| {
                let id = ChannelId(c);
                ChannelController::new(id, cfg, make_scheduler(id))
            })
            .collect();
        DramSystem {
            controllers,
            mapping,
            cfg,
            completions: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapping in force.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Routes and enqueues a request. On a full transaction queue the
    /// request is handed back for the caller to retry.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let loc = self.mapping.locate(req.addr);
        self.controllers[loc.channel.index()].enqueue(req, loc)
    }

    /// Whether the channel that would service `addr` has queue space.
    pub fn has_space_for(&self, addr: u64) -> bool {
        let loc = self.mapping.locate(addr);
        self.controllers[loc.channel.index()].has_space()
    }

    /// Raises the criticality of a queued request (located by its
    /// address's home channel). Returns `true` if the request was still
    /// queued there. Used by the §5.1 naive forwarding scheme.
    pub fn promote_request(
        &mut self,
        addr: u64,
        id: critmem_common::ReqId,
        crit: critmem_common::Criticality,
    ) -> bool {
        let loc = self.mapping.locate(addr);
        self.controllers[loc.channel.index()].promote_request(id, crit)
    }

    /// Raises the criticality of a queued read matching `(line
    /// address, core)`. Returns `true` if found.
    pub fn promote_by_addr(
        &mut self,
        addr: u64,
        core: critmem_common::CoreId,
        crit: critmem_common::Criticality,
    ) -> bool {
        let loc = self.mapping.locate(addr);
        self.controllers[loc.channel.index()].promote_by_addr(addr, core, crit)
    }

    /// Advances every channel one DRAM cycle; returns all completions.
    ///
    /// The returned slice borrows an internal buffer that is
    /// overwritten by the next call, so callers copy out what they
    /// need — this keeps the per-cycle path allocation-free.
    pub fn tick(&mut self) -> &[CompletedTxn] {
        self.completions.clear();
        for c in &mut self.controllers {
            c.tick_into(&mut self.completions);
        }
        &self.completions
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<&ChannelStats> {
        self.controllers.iter().map(|c| c.stats()).collect()
    }

    /// Sum of queued transactions across channels.
    pub fn total_queued(&self) -> usize {
        self.controllers.iter().map(|c| c.queue_len()).sum()
    }

    /// Age (in DRAM cycles) of the oldest transaction queued on any
    /// channel, or `None` when all queues are empty. Polled by the
    /// forward-progress watchdog.
    pub fn oldest_queued_age(&self) -> Option<critmem_common::DramCycle> {
        self.controllers
            .iter()
            .filter_map(|c| c.oldest_queued_age())
            .max()
    }

    /// Per-bank transaction-queue state across every channel (only
    /// non-empty banks), for a watchdog diagnostic snapshot.
    pub fn bank_queue_snapshot(&self) -> Vec<critmem_common::BankQueueState> {
        let mut out = Vec::new();
        for c in &self.controllers {
            c.bank_queue_snapshot(&mut out);
        }
        out
    }

    /// Swaps every channel's scheduler for a freshly built one,
    /// discarding the old schedulers' state. Used when a checkpoint
    /// restore studies a different policy than the one that warmed it.
    pub fn replace_schedulers<F>(&mut self, mut make_scheduler: F)
    where
        F: FnMut(ChannelId) -> Box<dyn CommandScheduler>,
    {
        for (c, ctrl) in self.controllers.iter_mut().enumerate() {
            ctrl.replace_scheduler(make_scheduler(ChannelId(c as u8)));
        }
    }

    /// Serializes every channel's architectural state for a checkpoint.
    /// The address mapping and configuration are derived from
    /// [`DramConfig`] on restore and are not written.
    pub fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.controllers.len() as u32);
        for c in &self.controllers {
            c.save_state(w);
        }
    }

    /// Restores state written by [`Self::save_state`] into a freshly
    /// built system of the same configuration. With
    /// `load_schedulers = false` the per-channel scheduler blocks are
    /// skipped, leaving the fresh schedulers' initial state intact.
    ///
    /// # Errors
    ///
    /// Fails on a truncated snapshot or a channel-count mismatch.
    pub fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
        load_schedulers: bool,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.controllers.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {n} channels, system has {}",
                    self.controllers.len()
                ),
                offset: r.position(),
            });
        }
        for c in &mut self.controllers {
            c.load_state(r, load_schedulers)?;
        }
        Ok(())
    }
}

impl critmem_common::Observable for DramSystem {
    /// Emits one `dram.chN` component per channel, containing that
    /// channel's [`ChannelStats`] metrics plus any `sched_`-prefixed
    /// metrics the channel's scheduler reports.
    fn observe(&self, v: &mut dyn critmem_common::MetricVisitor) {
        for (i, c) in self.controllers.iter().enumerate() {
            v.component(&format!("dram.ch{i}"));
            c.observe_metrics(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_common::{AccessKind, CoreId};

    #[test]
    fn requests_route_by_address() {
        let cfg = DramConfig::paper_baseline();
        let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        // Page interleaving: rows 0..4 land on channels 0..4.
        for page in 0..4u64 {
            let addr = page * 1024;
            dram.enqueue(MemRequest::new(page, addr, AccessKind::Read, CoreId(0)))
                .unwrap();
        }
        assert_eq!(dram.total_queued(), 4);
        let per_channel: Vec<usize> = dram.controllers.iter().map(|c| c.queue_len()).collect();
        assert_eq!(per_channel, vec![1, 1, 1, 1]);
    }

    #[test]
    fn parallel_channels_overlap_service() {
        let cfg = DramConfig::paper_baseline();
        let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        for page in 0..4u64 {
            let addr = page * 1024;
            dram.enqueue(MemRequest::new(page, addr, AccessKind::Read, CoreId(0)))
                .unwrap();
        }
        let mut completions = Vec::new();
        let mut cycles = 0;
        while completions.len() < 4 && cycles < 500 {
            completions.extend_from_slice(dram.tick());
            cycles += 1;
        }
        assert_eq!(completions.len(), 4);
        // All four finish at the same cycle: the channels are independent.
        let first = completions[0].done_at;
        assert!(completions.iter().all(|c| c.done_at == first));
    }

    #[test]
    fn same_channel_requests_serialize_on_command_bus() {
        let cfg = DramConfig::paper_baseline();
        let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        // Two different banks, same channel (pages 0 and 4 both map to
        // channel 0).
        dram.enqueue(MemRequest::new(1, 0, AccessKind::Read, CoreId(0)))
            .unwrap();
        dram.enqueue(MemRequest::new(2, 4 * 1024, AccessKind::Read, CoreId(0)))
            .unwrap();
        let mut completions = Vec::new();
        for _ in 0..500 {
            completions.extend_from_slice(dram.tick());
            if completions.len() == 2 {
                break;
            }
        }
        assert_eq!(completions.len(), 2);
        assert_ne!(completions[0].done_at, completions[1].done_at);
    }
}
