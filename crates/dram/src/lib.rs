//! Cycle-level DDR3 DRAM model for the `critmem` simulator.
//!
//! Implements the memory subsystem of Table 3 of the ISCA 2013 paper
//! *"Improving Memory Scheduling via Processor-Side Load Criticality
//! Information"*: a quad-channel, quad-rank DDR3-2133 system with
//! eight banks per rank, 1 KB row buffers, open-page policy, page
//! interleaving, a 64-entry transaction queue per channel, and full
//! JEDEC-style timing (tRCD/tCL/tWL/tCCD/tWTR/tWR/tRTP/tRP/tRRD/tRTRS/
//! tRAS/tRC plus refresh with tRFC).
//!
//! The scheduling *policy* is pluggable via [`CommandScheduler`]; the
//! policies themselves (FR-FCFS, the paper's criticality-aware
//! variants, AHB, PAR-BS, TCM, MORSE) live in the `critmem-sched`
//! crate.
//!
//! # Examples
//!
//! ```
//! use critmem_dram::{DramConfig, DramSystem, Fcfs};
//! use critmem_common::{AccessKind, CoreId, MemRequest};
//!
//! let cfg = DramConfig::paper_baseline();
//! let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
//! dram.enqueue(MemRequest::new(1, 0x40, AccessKind::Read, CoreId(0))).unwrap();
//! let mut completions = Vec::new();
//! for _ in 0..100 {
//!     completions.extend_from_slice(dram.tick());
//! }
//! assert_eq!(completions.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod bank;
pub mod command;
pub mod config;
pub mod controller;
pub mod mapping;
pub mod queue;
pub mod scheduler;
pub mod timing;

pub use audit::ProtocolAuditor;
pub use bank::{Bank, ChannelTiming};
pub use command::{CommandKind, DramCommand};
pub use config::{DramConfig, DramOrganization};
pub use controller::{ChannelController, ChannelStats, CompletedTxn};
pub use mapping::{AddressMapping, DramLocation, Interleaving};
pub use queue::{Direction, Transaction};
pub use scheduler::{Candidate, CommandScheduler, Fcfs, SchedContext};
pub use timing::{DevicePreset, TimingParams, DDR3_1066, DDR3_1600, DDR3_2133};

use critmem_common::{ChannelId, MemRequest};

/// The full multi-channel DRAM subsystem: one [`ChannelController`] per
/// channel plus the shared address mapping.
///
/// The caller (the system model in the `critmem` crate) owns the clock
/// crossing: [`DramSystem::tick`] advances every channel by exactly one
/// DRAM cycle.
pub struct DramSystem {
    controllers: Vec<ChannelController>,
    mapping: AddressMapping,
    cfg: DramConfig,
    /// Completion buffer reused across ticks (returned by slice).
    completions: Vec<CompletedTxn>,
    /// Per-shard completion buffers reused across sharded ticks.
    shard_bufs: Vec<Vec<CompletedTxn>>,
}

/// Upper bound on shards a single [`DramSystem::tick_sharded`] call
/// fans out to (the per-shard work slots live on the stack).
pub const MAX_TICK_SHARDS: usize = 16;

impl std::fmt::Debug for DramSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramSystem")
            .field("channels", &self.controllers.len())
            .field("preset", &self.cfg.preset.name)
            .finish_non_exhaustive()
    }
}

impl DramSystem {
    /// Builds the subsystem, instantiating one scheduler per channel
    /// via `make_scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new<F>(cfg: DramConfig, mut make_scheduler: F) -> Self
    where
        F: FnMut(ChannelId) -> Box<dyn CommandScheduler>,
    {
        cfg.validate().expect("invalid DRAM configuration");
        let mapping = AddressMapping::new(cfg.org, cfg.interleaving);
        let controllers = (0..cfg.org.channels)
            .map(|c| {
                let id = ChannelId(c);
                ChannelController::new(id, cfg, make_scheduler(id))
            })
            .collect();
        DramSystem {
            controllers,
            mapping,
            cfg,
            completions: Vec::new(),
            shard_bufs: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapping in force.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Routes and enqueues a request. On a full transaction queue the
    /// request is handed back for the caller to retry.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let loc = self.mapping.locate(req.addr);
        self.controllers[loc.channel.index()].enqueue(req, loc)
    }

    /// Whether the channel that would service `addr` has queue space.
    pub fn has_space_for(&self, addr: u64) -> bool {
        let loc = self.mapping.locate(addr);
        self.controllers[loc.channel.index()].has_space()
    }

    /// Raises the criticality of a queued request (located by its
    /// address's home channel). Returns `true` if the request was still
    /// queued there. Used by the §5.1 naive forwarding scheme.
    pub fn promote_request(
        &mut self,
        addr: u64,
        id: critmem_common::ReqId,
        crit: critmem_common::Criticality,
    ) -> bool {
        let loc = self.mapping.locate(addr);
        self.controllers[loc.channel.index()].promote_request(id, crit)
    }

    /// Raises the criticality of a queued read matching `(line
    /// address, core)`. Returns `true` if found.
    pub fn promote_by_addr(
        &mut self,
        addr: u64,
        core: critmem_common::CoreId,
        crit: critmem_common::Criticality,
    ) -> bool {
        let loc = self.mapping.locate(addr);
        self.controllers[loc.channel.index()].promote_by_addr(addr, core, crit)
    }

    /// Advances every channel one DRAM cycle; returns all completions.
    ///
    /// The returned slice borrows an internal buffer that is
    /// overwritten by the next call, so callers copy out what they
    /// need — this keeps the per-cycle path allocation-free.
    pub fn tick(&mut self) -> &[CompletedTxn] {
        self.completions.clear();
        for c in &mut self.controllers {
            c.tick_into(&mut self.completions);
        }
        &self.completions
    }

    /// Advances every channel one DRAM cycle with the channels
    /// partitioned across the shard pool's workers; byte-identical to
    /// [`DramSystem::tick`] at any shard count.
    ///
    /// Channels are split into contiguous chunks, one per shard; each
    /// worker ticks its chunk into a private completion buffer, and
    /// after the pool's cycle barrier the buffers are concatenated in
    /// shard (= channel) order, reproducing the serial tick's
    /// completion order exactly. Like the serial tick, the steady-state
    /// path performs no heap allocation: the work slots live on the
    /// stack and every buffer is reused across calls.
    pub fn tick_sharded(&mut self, pool: &mut critmem_common::ShardPool) -> &[CompletedTxn] {
        let shards = pool
            .shards()
            .min(self.controllers.len())
            .min(MAX_TICK_SHARDS);
        if shards <= 1 {
            return self.tick();
        }
        self.completions.clear();
        self.shard_bufs.resize_with(shards, Vec::new);
        let per = self.controllers.len().div_ceil(shards);
        type Slot<'a> = std::sync::Mutex<(&'a mut [ChannelController], &'a mut Vec<CompletedTxn>)>;
        let mut slots: [Option<Slot<'_>>; MAX_TICK_SHARDS] = std::array::from_fn(|_| None);
        let mut ctls = self.controllers.as_mut_slice();
        let mut bufs = self.shard_bufs.as_mut_slice();
        for slot in slots.iter_mut().take(shards) {
            let (chunk, rest) = ctls.split_at_mut(per.min(ctls.len()));
            let (buf, rest_bufs) = bufs.split_first_mut().expect("buffer per shard");
            *slot = Some(std::sync::Mutex::new((chunk, buf)));
            ctls = rest;
            bufs = rest_bufs;
        }
        pool.run(&|shard| {
            // Workers beyond the channel count have nothing to do, and
            // each live shard's slot is touched by exactly one worker
            // (the lock is uncontended — it only exists to move `&mut`
            // chunks across the closure's shared borrow).
            let Some(slot) = slots.get(shard).and_then(|s| s.as_ref()) else {
                return;
            };
            let mut held = slot.lock().expect("shard slot poisoned");
            let (chunk, buf) = &mut *held;
            buf.clear();
            for c in chunk.iter_mut() {
                c.tick_into(buf);
            }
        });
        for buf in &mut self.shard_bufs[..shards] {
            self.completions.append(buf);
        }
        &self.completions
    }

    /// The earliest future DRAM cycle at which any channel could do
    /// anything beyond the bookkeeping [`DramSystem::skip`] replays —
    /// the min over every channel's
    /// [`ChannelController::next_event_cycle`].
    pub fn next_event_cycle(&self) -> critmem_common::DramCycle {
        self.controllers
            .iter()
            .map(|c| c.next_event_cycle())
            .min()
            .unwrap_or(critmem_common::DramCycle::MAX)
    }

    /// Batch-advances every channel `d` DRAM cycles that
    /// [`DramSystem::next_event_cycle`] proved inert (the caller
    /// guarantees `d` stops strictly before the horizon). No
    /// completions can occur in such a window.
    pub fn skip(&mut self, d: critmem_common::DramCycle) {
        for c in &mut self.controllers {
            c.skip(d);
        }
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<&ChannelStats> {
        self.controllers.iter().map(|c| c.stats()).collect()
    }

    /// Sum of queued transactions across channels.
    pub fn total_queued(&self) -> usize {
        self.controllers.iter().map(|c| c.queue_len()).sum()
    }

    /// Age (in DRAM cycles) of the oldest transaction queued on any
    /// channel, or `None` when all queues are empty. Polled by the
    /// forward-progress watchdog.
    pub fn oldest_queued_age(&self) -> Option<critmem_common::DramCycle> {
        self.controllers
            .iter()
            .filter_map(|c| c.oldest_queued_age())
            .max()
    }

    /// Per-bank transaction-queue state across every channel (only
    /// non-empty banks), for a watchdog diagnostic snapshot.
    pub fn bank_queue_snapshot(&self) -> Vec<critmem_common::BankQueueState> {
        let mut out = Vec::new();
        for c in &self.controllers {
            c.bank_queue_snapshot(&mut out);
        }
        out
    }

    /// Attaches a shadow protocol auditor to every channel (see
    /// [`ChannelController::enable_audit`]).
    pub fn enable_audit(&mut self) {
        for c in &mut self.controllers {
            c.enable_audit();
        }
    }

    /// The first protocol violation recorded on any channel, removed
    /// from its auditor. `None` while the run is clean.
    pub fn take_audit_violation(&mut self) -> Option<Box<critmem_common::AuditSnapshot>> {
        self.controllers
            .iter_mut()
            .find_map(|c| c.take_audit_violation())
    }

    /// Whether any channel's auditor holds a violation (non-destructive
    /// poll; cheap enough for the drive loop to call every iteration).
    pub fn has_audit_violation(&self) -> bool {
        self.controllers
            .iter()
            .any(|c| c.audit_violation().is_some())
    }

    /// Runs every channel auditor's end-of-run checks.
    pub fn finish_audit(&mut self) {
        for c in &mut self.controllers {
            c.finish_audit();
        }
    }

    /// Transactions the DRAM subsystem currently owns (queued plus
    /// in-flight CAS bursts), summed over channels. The conservation
    /// auditor reconciles this against its request accounting.
    pub fn outstanding(&self) -> usize {
        self.controllers.iter().map(|c| c.outstanding()).sum()
    }

    /// Fault-injection seam: freezes one bank of one channel (see
    /// [`ChannelController::wedge_bank`]).
    pub fn wedge_bank(
        &mut self,
        channel: usize,
        rank: critmem_common::RankId,
        bank: critmem_common::BankId,
    ) {
        self.controllers[channel].wedge_bank(rank, bank);
    }

    /// Fault-injection seam: feeds one channel a rogue illegal command
    /// pair (see [`ChannelController::corrupt_decision`]).
    pub fn corrupt_decision(&mut self, channel: usize) {
        self.controllers[channel].corrupt_decision();
    }

    /// Swaps every channel's scheduler for a freshly built one,
    /// discarding the old schedulers' state. Used when a checkpoint
    /// restore studies a different policy than the one that warmed it.
    pub fn replace_schedulers<F>(&mut self, mut make_scheduler: F)
    where
        F: FnMut(ChannelId) -> Box<dyn CommandScheduler>,
    {
        for (c, ctrl) in self.controllers.iter_mut().enumerate() {
            ctrl.replace_scheduler(make_scheduler(ChannelId(c as u8)));
        }
    }

    /// Serializes every channel's architectural state for a checkpoint.
    /// The address mapping and configuration are derived from
    /// [`DramConfig`] on restore and are not written.
    pub fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.controllers.len() as u32);
        for c in &self.controllers {
            c.save_state(w);
        }
    }

    /// Restores state written by [`Self::save_state`] into a freshly
    /// built system of the same configuration. With
    /// `load_schedulers = false` the per-channel scheduler blocks are
    /// skipped, leaving the fresh schedulers' initial state intact.
    ///
    /// # Errors
    ///
    /// Fails on a truncated snapshot or a channel-count mismatch.
    pub fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
        load_schedulers: bool,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.controllers.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {n} channels, system has {}",
                    self.controllers.len()
                ),
                offset: r.position(),
            });
        }
        for c in &mut self.controllers {
            c.load_state(r, load_schedulers)?;
        }
        Ok(())
    }
}

impl critmem_common::Observable for DramSystem {
    /// Emits one `dram.chN` component per channel, containing that
    /// channel's [`ChannelStats`] metrics plus any `sched_`-prefixed
    /// metrics the channel's scheduler reports.
    fn observe(&self, v: &mut dyn critmem_common::MetricVisitor) {
        for (i, c) in self.controllers.iter().enumerate() {
            v.component(&format!("dram.ch{i}"));
            c.observe_metrics(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_common::{AccessKind, CoreId};

    #[test]
    fn requests_route_by_address() {
        let cfg = DramConfig::paper_baseline();
        let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        // Page interleaving: rows 0..4 land on channels 0..4.
        for page in 0..4u64 {
            let addr = page * 1024;
            dram.enqueue(MemRequest::new(page, addr, AccessKind::Read, CoreId(0)))
                .unwrap();
        }
        assert_eq!(dram.total_queued(), 4);
        let per_channel: Vec<usize> = dram.controllers.iter().map(|c| c.queue_len()).collect();
        assert_eq!(per_channel, vec![1, 1, 1, 1]);
    }

    #[test]
    fn parallel_channels_overlap_service() {
        let cfg = DramConfig::paper_baseline();
        let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        for page in 0..4u64 {
            let addr = page * 1024;
            dram.enqueue(MemRequest::new(page, addr, AccessKind::Read, CoreId(0)))
                .unwrap();
        }
        let mut completions = Vec::new();
        let mut cycles = 0;
        while completions.len() < 4 && cycles < 500 {
            completions.extend_from_slice(dram.tick());
            cycles += 1;
        }
        assert_eq!(completions.len(), 4);
        // All four finish at the same cycle: the channels are independent.
        let first = completions[0].done_at;
        assert!(completions.iter().all(|c| c.done_at == first));
    }

    #[test]
    fn same_channel_requests_serialize_on_command_bus() {
        let cfg = DramConfig::paper_baseline();
        let mut dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        // Two different banks, same channel (pages 0 and 4 both map to
        // channel 0).
        dram.enqueue(MemRequest::new(1, 0, AccessKind::Read, CoreId(0)))
            .unwrap();
        dram.enqueue(MemRequest::new(2, 4 * 1024, AccessKind::Read, CoreId(0)))
            .unwrap();
        let mut completions = Vec::new();
        for _ in 0..500 {
            completions.extend_from_slice(dram.tick());
            if completions.len() == 2 {
                break;
            }
        }
        assert_eq!(completions.len(), 2);
        assert_ne!(completions[0].done_at, completions[1].done_at);
    }
}
