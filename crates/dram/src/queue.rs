//! The per-channel transaction queue entry.

use crate::mapping::DramLocation;
use critmem_common::{AccessKind, Criticality, DramCycle, MemRequest, ThreadId};

/// A memory transaction waiting in (or moving through) a channel's
/// transaction queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The originating request (carries the criticality annotation).
    pub req: MemRequest,
    /// Decoded DRAM coordinates.
    pub loc: DramLocation,
    /// DRAM cycle at which the transaction entered the queue — the
    /// "sequence number" the FR-FCFS age comparator uses.
    pub arrival: DramCycle,
    /// Monotonic arrival sequence number (ties in `arrival` are broken
    /// by insertion order).
    pub seq: u64,
    /// Whether an ACTIVATE has been issued on behalf of this
    /// transaction since it arrived (used for row-hit accounting).
    pub caused_activate: bool,
    /// Whether a PRECHARGE (row conflict) was issued on its behalf.
    pub caused_precharge: bool,
    /// Whether the starvation cap has already promoted this
    /// transaction (so the promotion is counted once).
    pub starved: bool,
}

impl Transaction {
    /// Creates a queued transaction.
    pub fn new(req: MemRequest, loc: DramLocation, arrival: DramCycle, seq: u64) -> Self {
        Transaction {
            req,
            loc,
            arrival,
            seq,
            caused_activate: false,
            caused_precharge: false,
            starved: false,
        }
    }

    /// The issuing thread (== core in this simulator).
    #[inline]
    pub fn thread(&self) -> ThreadId {
        ThreadId::from(self.req.core)
    }

    /// Whether this transaction moves data toward the processor.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.req.kind.is_read()
    }

    /// Age of the transaction in DRAM cycles.
    #[inline]
    pub fn age(&self, now: DramCycle) -> u64 {
        now.saturating_sub(self.arrival)
    }

    /// The criticality the scheduler should act on: the annotation from
    /// the processor side, overridden to the maximum once the
    /// starvation cap has been exceeded (§3.2).
    #[inline]
    pub fn effective_criticality(&self, now: DramCycle, starvation_cap: u64) -> Criticality {
        if self.age(now) > starvation_cap {
            Criticality::ranked(u64::MAX)
        } else {
            self.req.crit
        }
    }

    /// Whether this transaction is eligible in the given service
    /// direction (prefetches ride with reads).
    #[inline]
    pub fn matches_direction(&self, dir: Direction) -> bool {
        match dir {
            Direction::Read => self.req.kind.is_read(),
            Direction::Write => self.req.kind == AccessKind::Write,
        }
    }

    /// Serializes for checkpoint artifacts.
    pub fn encode(&self, w: &mut critmem_common::codec::ByteWriter) {
        self.req.encode(w);
        w.put_u8(self.loc.channel.0);
        w.put_u8(self.loc.rank.0);
        w.put_u8(self.loc.bank.0);
        w.put_u32(self.loc.row);
        w.put_u32(self.loc.column);
        w.put_u64(self.arrival);
        w.put_u64(self.seq);
        w.put_bool(self.caused_activate);
        w.put_bool(self.caused_precharge);
        w.put_bool(self.starved);
    }

    /// Deserializes a checkpointed transaction.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream or a malformed request.
    pub fn decode(
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<Self, critmem_common::codec::CodecError> {
        let req = MemRequest::decode(r)?;
        let loc = DramLocation {
            channel: critmem_common::ChannelId(r.get_u8()?),
            rank: critmem_common::RankId(r.get_u8()?),
            bank: critmem_common::BankId(r.get_u8()?),
            row: r.get_u32()?,
            column: r.get_u32()?,
        };
        Ok(Transaction {
            req,
            loc,
            arrival: r.get_u64()?,
            seq: r.get_u64()?,
            caused_activate: r.get_bool()?,
            caused_precharge: r.get_bool()?,
            starved: r.get_bool()?,
        })
    }
}

/// Which kind of transactions the controller is currently servicing.
///
/// Reads are serviced preferentially; writes are buffered and drained
/// in batches (watermark policy) to amortize bus-turnaround penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Servicing demand reads and prefetches.
    Read,
    /// Draining buffered write-backs.
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_common::{BankId, ChannelId, CoreId, RankId};

    fn txn(kind: AccessKind, arrival: DramCycle, crit: Criticality) -> Transaction {
        let req = MemRequest::new(1, 0x40, kind, CoreId(0)).with_criticality(crit);
        let loc = DramLocation {
            channel: ChannelId(0),
            rank: RankId(0),
            bank: BankId(0),
            row: 0,
            column: 1,
        };
        Transaction::new(req, loc, arrival, 0)
    }

    #[test]
    fn age_saturates() {
        let t = txn(AccessKind::Read, 100, Criticality::non_critical());
        assert_eq!(t.age(50), 0);
        assert_eq!(t.age(150), 50);
    }

    #[test]
    fn starvation_cap_promotes_to_max() {
        let t = txn(AccessKind::Read, 0, Criticality::non_critical());
        assert!(!t.effective_criticality(6_000, 6_000).is_critical());
        let c = t.effective_criticality(6_001, 6_000);
        assert_eq!(c.magnitude(), u64::MAX);
    }

    #[test]
    fn starvation_preserves_annotation_before_cap() {
        let t = txn(AccessKind::Read, 0, Criticality::ranked(7));
        assert_eq!(t.effective_criticality(100, 6_000).magnitude(), 7);
    }

    #[test]
    fn prefetch_rides_with_reads() {
        let t = txn(AccessKind::Prefetch, 0, Criticality::non_critical());
        assert!(t.matches_direction(Direction::Read));
        assert!(!t.matches_direction(Direction::Write));
        let w = txn(AccessKind::Write, 0, Criticality::non_critical());
        assert!(w.matches_direction(Direction::Write));
        assert!(!w.matches_direction(Direction::Read));
    }
}
