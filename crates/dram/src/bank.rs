//! Per-bank, per-rank, and data-bus timing state machines.
//!
//! Each bank records the earliest DRAM cycle at which each command kind
//! may next be issued to it (`next_*` fields), in the style of
//! DRAMSim-class simulators. Issuing a command updates the constraints
//! of the bank itself, its sibling banks in the same rank, and the
//! shared data bus.

use crate::command::{CommandKind, DramCommand};
use crate::timing::TimingParams;
use critmem_common::{DramCycle, RankId};

/// Timing state of a single DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACTIVATE may issue.
    pub next_act: DramCycle,
    /// Earliest cycle a PRECHARGE may issue.
    pub next_pre: DramCycle,
    /// Earliest cycle a READ may issue.
    pub next_rd: DramCycle,
    /// Earliest cycle a WRITE may issue.
    pub next_wr: DramCycle,
}

impl Bank {
    /// Earliest cycle at which `kind` could legally issue to this bank,
    /// considering only this bank's own constraints (the channel adds
    /// bus and rank constraints on top).
    pub fn earliest(&self, kind: CommandKind) -> DramCycle {
        match kind {
            CommandKind::Activate => self.next_act,
            CommandKind::Precharge => self.next_pre,
            CommandKind::Read => self.next_rd,
            CommandKind::Write => self.next_wr,
            CommandKind::Refresh => self.next_act,
        }
    }
}

/// The timing state of one DRAM channel: all its banks, the shared data
/// bus, and per-rank refresh bookkeeping.
#[derive(Debug, Clone)]
pub struct ChannelTiming {
    banks: Vec<Bank>,
    banks_per_rank: usize,
    timing: TimingParams,
    /// Cycle at which the data bus becomes free.
    bus_free: DramCycle,
    /// Rank that last transferred data (rank switches pay tRTRS).
    last_data_rank: Option<RankId>,
    /// Per-rank cycle at which the next refresh falls due.
    refresh_due: Vec<DramCycle>,
    /// Per-rank: refresh currently wanted (due and not yet issued).
    refresh_pending: Vec<bool>,
    /// Per-rank ring of the last four ACT cycles (tFAW rolling window).
    faw_acts: Vec<[DramCycle; 4]>,
    /// Per-rank write cursor into `faw_acts`.
    faw_idx: Vec<u8>,
    /// Per-rank count of recorded ACTs, saturating at 4.
    faw_count: Vec<u8>,
}

impl ChannelTiming {
    /// Creates the timing state for `ranks` x `banks_per_rank` banks.
    pub fn new(ranks: usize, banks_per_rank: usize, timing: TimingParams) -> Self {
        ChannelTiming {
            banks: vec![Bank::default(); ranks * banks_per_rank],
            banks_per_rank,
            timing,
            bus_free: 0,
            last_data_rank: None,
            refresh_due: (0..ranks)
                .map(|r| timing.t_refi + (r as u64 * timing.t_refi / ranks.max(1) as u64))
                .collect(),
            refresh_pending: vec![false; ranks],
            faw_acts: vec![[0; 4]; ranks],
            faw_idx: vec![0; ranks],
            faw_count: vec![0; ranks],
        }
    }

    /// Number of ranks in the channel.
    pub fn ranks(&self) -> usize {
        self.refresh_due.len()
    }

    /// Number of banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.banks_per_rank
    }

    /// The timing parameter set in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    #[inline]
    fn bank_index(&self, rank: RankId, bank: critmem_common::BankId) -> usize {
        rank.index() * self.banks_per_rank + bank.index()
    }

    /// Immutable view of a bank's state.
    pub fn bank(&self, rank: RankId, bank: critmem_common::BankId) -> &Bank {
        &self.banks[self.bank_index(rank, bank)]
    }

    /// Iterates over `(rank, bank, state)` for all banks.
    pub fn banks(&self) -> impl Iterator<Item = (RankId, critmem_common::BankId, &Bank)> {
        let bpr = self.banks_per_rank;
        self.banks.iter().enumerate().map(move |(i, b)| {
            (
                RankId((i / bpr) as u8),
                critmem_common::BankId((i % bpr) as u8),
                b,
            )
        })
    }

    /// Earliest cycle at which `cmd` may issue, considering bank, rank,
    /// bus, and refresh constraints. Returns `None` if the command is
    /// structurally impossible right now (e.g. CAS to a bank whose open
    /// row differs, ACT to an already-open bank, REF with open banks).
    pub fn earliest_issue(&self, cmd: &DramCommand) -> Option<DramCycle> {
        let t = &self.timing;
        match cmd.kind {
            CommandKind::Activate => {
                let b = self.bank(cmd.rank, cmd.bank);
                if b.open_row.is_some() {
                    return None;
                }
                Some(b.next_act)
            }
            CommandKind::Precharge => {
                let b = self.bank(cmd.rank, cmd.bank);
                b.open_row?;
                Some(b.next_pre)
            }
            CommandKind::Read | CommandKind::Write => {
                let b = self.bank(cmd.rank, cmd.bank);
                if b.open_row != Some(cmd.row) {
                    return None;
                }
                let own = b.earliest(cmd.kind);
                // Data-bus availability: the burst must start no earlier
                // than bus_free (+ tRTRS when switching ranks).
                let data_lat = if cmd.kind == CommandKind::Read {
                    t.t_cl
                } else {
                    t.t_wl
                };
                let mut bus_ready = self.bus_free;
                if let Some(last) = self.last_data_rank {
                    if last != cmd.rank {
                        bus_ready += t.t_rtrs;
                    }
                }
                // Command must issue such that issue + data_lat >= bus_ready.
                let bus_constraint = bus_ready.saturating_sub(data_lat);
                Some(own.max(bus_constraint))
            }
            CommandKind::Refresh => {
                // All banks in the rank must be precharged.
                let base = cmd.rank.index() * self.banks_per_rank;
                let mut earliest = 0;
                for b in &self.banks[base..base + self.banks_per_rank] {
                    if b.open_row.is_some() {
                        return None;
                    }
                    earliest = earliest.max(b.next_act);
                }
                Some(earliest)
            }
        }
    }

    /// Issues `cmd` at cycle `now`, updating all affected constraints.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the command is not legal at `now`
    /// according to [`Self::earliest_issue`].
    pub fn issue(&mut self, cmd: &DramCommand, now: DramCycle) {
        debug_assert!(
            self.earliest_issue(cmd).map(|e| e <= now).unwrap_or(false),
            "illegal command {cmd:?} at cycle {now}"
        );
        self.issue_unchecked(cmd, now);
    }

    /// Applies `cmd`'s state updates without the legality
    /// `debug_assert`. Exists solely so fault injection
    /// (`CorruptSchedulerDecision`) can feed the model an illegal
    /// command and let the *auditor* catch it as a typed error instead
    /// of a debug-build panic; normal code paths use [`Self::issue`].
    pub(crate) fn issue_unchecked(&mut self, cmd: &DramCommand, now: DramCycle) {
        let t = self.timing;
        let bl = t.burst_cycles();
        let rank_base = cmd.rank.index() * self.banks_per_rank;
        let idx = self.bank_index(cmd.rank, cmd.bank);
        match cmd.kind {
            CommandKind::Activate => {
                let b = &mut self.banks[idx];
                b.open_row = Some(cmd.row);
                b.next_rd = b.next_rd.max(now + t.t_rcd);
                b.next_wr = b.next_wr.max(now + t.t_rcd);
                b.next_pre = b.next_pre.max(now + t.t_ras);
                b.next_act = b.next_act.max(now + t.t_rc);
                // tRRD to sibling banks in the same rank.
                for i in rank_base..rank_base + self.banks_per_rank {
                    if i != idx {
                        let s = &mut self.banks[i];
                        s.next_act = s.next_act.max(now + t.t_rrd);
                    }
                }
                // tFAW rolling window: once four ACTs have hit this
                // rank, the fifth may not issue before the oldest of
                // the four + tFAW. Folding the floor into next_act
                // keeps candidate generation and skip-ahead horizons
                // consistent without a separate check.
                if t.t_faw > 0 {
                    let r = cmd.rank.index();
                    let cursor = self.faw_idx[r] as usize;
                    self.faw_acts[r][cursor] = now;
                    self.faw_idx[r] = ((cursor + 1) % 4) as u8;
                    if self.faw_count[r] < 4 {
                        self.faw_count[r] += 1;
                    }
                    if self.faw_count[r] == 4 {
                        // The slot the cursor now points at holds the
                        // oldest of the last four ACTs.
                        let oldest = self.faw_acts[r][self.faw_idx[r] as usize];
                        let floor = oldest + t.t_faw;
                        for i in rank_base..rank_base + self.banks_per_rank {
                            let s = &mut self.banks[i];
                            s.next_act = s.next_act.max(floor);
                        }
                    }
                }
            }
            CommandKind::Precharge => {
                let b = &mut self.banks[idx];
                b.open_row = None;
                b.next_act = b.next_act.max(now + t.t_rp);
            }
            CommandKind::Read => {
                let data_start = now + t.t_cl;
                self.bus_free = self.bus_free.max(data_start + bl);
                self.last_data_rank = Some(cmd.rank);
                {
                    let b = &mut self.banks[idx];
                    b.next_pre = b.next_pre.max(now + t.t_rtp);
                }
                // Same-rank CAS-to-CAS and read-to-write turnaround.
                let rd_ok = now + t.t_ccd;
                let wr_ok = (now + t.t_cl + bl + t.t_rtrs).saturating_sub(t.t_wl);
                for i in rank_base..rank_base + self.banks_per_rank {
                    let s = &mut self.banks[i];
                    s.next_rd = s.next_rd.max(rd_ok);
                    s.next_wr = s.next_wr.max(wr_ok);
                }
            }
            CommandKind::Write => {
                let data_start = now + t.t_wl;
                self.bus_free = self.bus_free.max(data_start + bl);
                self.last_data_rank = Some(cmd.rank);
                {
                    let b = &mut self.banks[idx];
                    // Write recovery: PRE only after data end + tWR.
                    b.next_pre = b.next_pre.max(now + t.t_wl + bl + t.t_wr);
                }
                let wr_ok = now + t.t_ccd;
                let rd_ok = now + t.t_wl + bl + t.t_wtr;
                for i in rank_base..rank_base + self.banks_per_rank {
                    let s = &mut self.banks[i];
                    s.next_wr = s.next_wr.max(wr_ok);
                    s.next_rd = s.next_rd.max(rd_ok);
                }
            }
            CommandKind::Refresh => {
                for i in rank_base..rank_base + self.banks_per_rank {
                    let s = &mut self.banks[i];
                    s.next_act = s.next_act.max(now + t.t_rfc);
                }
                self.refresh_due[cmd.rank.index()] = now + t.t_refi;
                self.refresh_pending[cmd.rank.index()] = false;
            }
        }
    }

    /// Marks refreshes that have fallen due by `now`; returns the ranks
    /// (if any) with a pending refresh.
    pub fn update_refresh(&mut self, now: DramCycle) -> Vec<RankId> {
        let mut due = Vec::new();
        self.update_refresh_into(now, &mut due);
        due
    }

    /// Allocation-free variant of [`Self::update_refresh`]: appends the
    /// pending ranks to `due` (which the caller clears and reuses).
    pub fn update_refresh_into(&mut self, now: DramCycle, due: &mut Vec<RankId>) {
        for (r, (&d, pending)) in self
            .refresh_due
            .iter()
            .zip(self.refresh_pending.iter_mut())
            .enumerate()
        {
            if now >= d {
                *pending = true;
            }
            if *pending {
                due.push(RankId(r as u8));
            }
        }
    }

    /// Earliest cycle at which any rank's next refresh falls due. While
    /// `now` is strictly below this (and no refresh is already
    /// pending), [`Self::update_refresh`] is a guaranteed no-op — the
    /// controller's idle fast path uses this to skip the scan.
    pub fn earliest_refresh_due(&self) -> DramCycle {
        self.refresh_due.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Whether any rank currently owes a refresh.
    pub fn any_refresh_pending(&self) -> bool {
        self.refresh_pending.iter().any(|&p| p)
    }

    /// Whether the given rank currently owes a refresh.
    pub fn refresh_pending(&self, rank: RankId) -> bool {
        self.refresh_pending[rank.index()]
    }

    /// The data-bus floor for a CAS of `kind` targeting `rank`: the
    /// earliest issue cycle the shared bus permits (bank constraints
    /// come on top). Exactly the bus term of [`Self::earliest_issue`];
    /// the controller caches it per rank while generating candidates.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not `Read` or `Write`.
    pub fn cas_bus_floor(&self, kind: CommandKind, rank: RankId) -> DramCycle {
        let t = &self.timing;
        let data_lat = match kind {
            CommandKind::Read => t.t_cl,
            CommandKind::Write => t.t_wl,
            _ => panic!("cas_bus_floor called for non-CAS command"),
        };
        let mut bus_ready = self.bus_free;
        if let Some(last) = self.last_data_rank {
            if last != rank {
                bus_ready += t.t_rtrs;
            }
        }
        bus_ready.saturating_sub(data_lat)
    }

    /// Completion cycle of a CAS issued at `now` (when the full burst
    /// has crossed the bus).
    pub fn cas_done_at(&self, kind: CommandKind, now: DramCycle) -> DramCycle {
        let t = &self.timing;
        match kind {
            CommandKind::Read => now + t.t_cl + t.burst_cycles(),
            CommandKind::Write => now + t.t_wl + t.burst_cycles(),
            _ => panic!("cas_done_at called for non-CAS command"),
        }
    }

    /// Freezes one bank: every per-command floor is pushed to the end
    /// of time, so no command ever becomes issuable to it again. This
    /// is the `WedgeBank` fault-injection seam — requests queued for
    /// the bank starve and the forward-progress watchdog must trip.
    pub fn wedge_bank(&mut self, rank: RankId, bank: critmem_common::BankId) {
        let i = self.bank_index(rank, bank);
        let b = &mut self.banks[i];
        b.next_act = DramCycle::MAX;
        b.next_pre = DramCycle::MAX;
        b.next_rd = DramCycle::MAX;
        b.next_wr = DramCycle::MAX;
    }
}

impl critmem_common::Snapshot for ChannelTiming {
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.banks.len() as u32);
        for b in &self.banks {
            match b.open_row {
                Some(row) => {
                    w.put_bool(true);
                    w.put_u32(row);
                }
                None => w.put_bool(false),
            }
            w.put_u64(b.next_act);
            w.put_u64(b.next_pre);
            w.put_u64(b.next_rd);
            w.put_u64(b.next_wr);
        }
        w.put_u64(self.bus_free);
        match self.last_data_rank {
            Some(r) => {
                w.put_bool(true);
                w.put_u8(r.0);
            }
            None => w.put_bool(false),
        }
        w.put_u64_seq(&self.refresh_due);
        w.put_u32(self.refresh_pending.len() as u32);
        for &p in &self.refresh_pending {
            w.put_bool(p);
        }
        for (r, ring) in self.faw_acts.iter().enumerate() {
            w.put_u64_seq(ring);
            w.put_u8(self.faw_idx[r]);
            w.put_u8(self.faw_count[r]);
        }
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.banks.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!("snapshot holds {n} banks, channel has {}", self.banks.len()),
                offset: r.position(),
            });
        }
        for b in &mut self.banks {
            b.open_row = if r.get_bool()? {
                Some(r.get_u32()?)
            } else {
                None
            };
            b.next_act = r.get_u64()?;
            b.next_pre = r.get_u64()?;
            b.next_rd = r.get_u64()?;
            b.next_wr = r.get_u64()?;
        }
        self.bus_free = r.get_u64()?;
        self.last_data_rank = if r.get_bool()? {
            Some(RankId(r.get_u8()?))
        } else {
            None
        };
        let due = r.get_u64_seq()?;
        let np = r.get_u32()? as usize;
        if due.len() != self.refresh_due.len() || np != self.refresh_pending.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {} ranks, channel has {}",
                    due.len(),
                    self.refresh_due.len()
                ),
                offset: r.position(),
            });
        }
        self.refresh_due = due;
        for p in &mut self.refresh_pending {
            *p = r.get_bool()?;
        }
        for rank in 0..self.faw_acts.len() {
            let ring = r.get_u64_seq()?;
            if ring.len() != 4 {
                return Err(critmem_common::codec::CodecError {
                    message: format!("tFAW ring holds {} entries, expected 4", ring.len()),
                    offset: r.position(),
                });
            }
            self.faw_acts[rank].copy_from_slice(&ring);
            self.faw_idx[rank] = r.get_u8()?;
            self.faw_count[rank] = r.get_u8()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DDR3_2133;
    use critmem_common::BankId;

    fn timing() -> TimingParams {
        DDR3_2133.timing
    }

    fn cmd(kind: CommandKind, rank: u8, bank: u8, row: u32) -> DramCommand {
        DramCommand {
            kind,
            rank: RankId(rank),
            bank: BankId(bank),
            row,
        }
    }

    #[test]
    fn fresh_bank_accepts_activate_immediately() {
        let ct = ChannelTiming::new(4, 8, timing());
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 0, 0, 5)),
            Some(0)
        );
    }

    #[test]
    fn read_requires_open_matching_row() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        assert_eq!(ct.earliest_issue(&cmd(CommandKind::Read, 0, 0, 5)), None);
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        // Open row 5: read row 5 OK after tRCD, row 6 impossible.
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Read, 0, 0, 5)),
            Some(timing().t_rcd)
        );
        assert_eq!(ct.earliest_issue(&cmd(CommandKind::Read, 0, 0, 6)), None);
    }

    #[test]
    fn act_to_pre_respects_tras() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 10);
        let pre = cmd(CommandKind::Precharge, 0, 0, 0);
        assert_eq!(ct.earliest_issue(&pre), Some(10 + timing().t_ras));
    }

    #[test]
    fn row_cycle_time_between_activates() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        ct.issue(&cmd(CommandKind::Precharge, 0, 0, 0), timing().t_ras);
        let act2 = cmd(CommandKind::Activate, 0, 0, 9);
        // Constrained by both tRC (from ACT) and tRP (from PRE):
        // tRAS + tRP = 50 = tRC here, so both give cycle 50.
        assert_eq!(ct.earliest_issue(&act2), Some(timing().t_rc));
    }

    #[test]
    fn trrd_applies_across_banks_same_rank_only() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 0, 1, 5)),
            Some(timing().t_rrd)
        );
        // A different rank is unconstrained.
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 1, 0, 5)),
            Some(0)
        );
    }

    #[test]
    fn back_to_back_reads_respect_tccd() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        ct.issue(&cmd(CommandKind::Activate, 0, 1, 7), timing().t_rrd);
        // Issue the first read late enough that both banks' tRCD has
        // elapsed, so tCCD is the binding constraint for the second.
        let t0 = 30;
        ct.issue(&cmd(CommandKind::Read, 0, 0, 5), t0);
        // Next read on any bank of the same rank waits tCCD.
        let e = ct.earliest_issue(&cmd(CommandKind::Read, 0, 1, 7)).unwrap();
        assert_eq!(e, t0 + timing().t_ccd);
    }

    #[test]
    fn rank_switch_pays_trtrs_on_data_bus() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        ct.issue(&cmd(CommandKind::Activate, 1, 0, 5), 0);
        let t0 = timing().t_rcd;
        ct.issue(&cmd(CommandKind::Read, 0, 0, 5), t0);
        // Read on rank 1: data may start only after bus_free + tRTRS.
        // bus_free = t0 + tCL + 4. Issue time >= bus_free + tRTRS - tCL.
        let e = ct.earliest_issue(&cmd(CommandKind::Read, 1, 0, 5)).unwrap();
        let expect = t0 + timing().t_cl + 4 + timing().t_rtrs - timing().t_cl;
        assert_eq!(e, expect);
    }

    #[test]
    fn write_to_read_same_rank_pays_twtr() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        let t0 = timing().t_rcd;
        ct.issue(&cmd(CommandKind::Write, 0, 0, 5), t0);
        let e = ct.earliest_issue(&cmd(CommandKind::Read, 0, 0, 5)).unwrap();
        assert_eq!(e, t0 + timing().t_wl + 4 + timing().t_wtr);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut ct = ChannelTiming::new(4, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        let t0 = timing().t_rcd;
        ct.issue(&cmd(CommandKind::Write, 0, 0, 5), t0);
        let e = ct
            .earliest_issue(&cmd(CommandKind::Precharge, 0, 0, 0))
            .unwrap();
        // PRE after write: tWL + burst + tWR, and also >= tRAS from ACT.
        let expect = (t0 + timing().t_wl + 4 + timing().t_wr).max(timing().t_ras);
        assert_eq!(e, expect);
    }

    #[test]
    fn refresh_requires_all_banks_closed() {
        let mut ct = ChannelTiming::new(2, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 3, 5), 0);
        assert_eq!(ct.earliest_issue(&cmd(CommandKind::Refresh, 0, 0, 0)), None);
        ct.issue(&cmd(CommandKind::Precharge, 0, 3, 0), timing().t_ras);
        let e = ct
            .earliest_issue(&cmd(CommandKind::Refresh, 0, 0, 0))
            .unwrap();
        assert_eq!(e, timing().t_ras + timing().t_rp);
    }

    #[test]
    fn refresh_blocks_rank_for_trfc() {
        let mut ct = ChannelTiming::new(2, 8, timing());
        ct.issue(&cmd(CommandKind::Refresh, 0, 0, 0), 100);
        let e = ct
            .earliest_issue(&cmd(CommandKind::Activate, 0, 0, 1))
            .unwrap();
        assert_eq!(e, 100 + timing().t_rfc);
        // Other rank is unaffected.
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 1, 0, 1)),
            Some(0)
        );
    }

    #[test]
    fn refresh_becomes_pending_at_trefi() {
        let mut ct = ChannelTiming::new(1, 8, timing());
        assert!(ct.update_refresh(timing().t_refi - 1).is_empty());
        let due = ct.update_refresh(timing().t_refi);
        assert_eq!(due, vec![RankId(0)]);
        assert!(ct.refresh_pending(RankId(0)));
        // Issuing the refresh clears the pending flag and re-arms.
        ct.issue(&cmd(CommandKind::Refresh, 0, 0, 0), timing().t_refi);
        assert!(!ct.refresh_pending(RankId(0)));
        assert!(ct.update_refresh(timing().t_refi + 10).is_empty());
    }

    #[test]
    fn staggered_refresh_across_ranks() {
        let ct = ChannelTiming::new(4, 8, timing());
        // Ranks should not all refresh simultaneously.
        let dues: Vec<u64> = (0..4).map(|r| ct.refresh_due[r]).collect();
        let distinct: std::collections::HashSet<_> = dues.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn cas_completion_times() {
        let ct = ChannelTiming::new(1, 8, timing());
        assert_eq!(ct.cas_done_at(CommandKind::Read, 100), 100 + 14 + 4);
        assert_eq!(ct.cas_done_at(CommandKind::Write, 100), 100 + 7 + 4);
    }

    #[test]
    fn activate_on_open_bank_is_illegal() {
        let mut ct = ChannelTiming::new(1, 8, timing());
        ct.issue(&cmd(CommandKind::Activate, 0, 0, 5), 0);
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 0, 0, 6)),
            None
        );
    }

    #[test]
    fn precharge_on_closed_bank_is_illegal() {
        let ct = ChannelTiming::new(1, 8, timing());
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Precharge, 0, 0, 0)),
            None
        );
    }

    #[test]
    fn tfaw_blocks_fifth_activate_in_window() {
        let t = timing();
        let mut ct = ChannelTiming::new(1, 8, t);
        // Four ACTs to distinct banks at the minimum tRRD spacing.
        for b in 0..4u8 {
            ct.issue(&cmd(CommandKind::Activate, 0, b, 1), b as u64 * t.t_rrd);
        }
        // The fifth ACT is tFAW-bound: oldest ACT was at 0, so the
        // floor is tFAW, which exceeds the tRRD chain (4*tRRD).
        let e = ct
            .earliest_issue(&cmd(CommandKind::Activate, 0, 4, 1))
            .unwrap();
        assert_eq!(e, t.t_faw);
        assert!(e > 4 * t.t_rrd);
    }

    #[test]
    fn tfaw_window_slides() {
        let t = timing();
        let mut ct = ChannelTiming::new(1, 8, t);
        for b in 0..4u8 {
            ct.issue(&cmd(CommandKind::Activate, 0, b, 1), b as u64 * t.t_rrd);
        }
        ct.issue(&cmd(CommandKind::Activate, 0, 4, 1), t.t_faw);
        // Sixth ACT: oldest in the window is now the ACT at tRRD.
        let e = ct
            .earliest_issue(&cmd(CommandKind::Activate, 0, 5, 1))
            .unwrap();
        assert_eq!(e, t.t_rrd + t.t_faw);
    }

    #[test]
    fn tfaw_does_not_cross_ranks() {
        let t = timing();
        let mut ct = ChannelTiming::new(2, 8, t);
        for b in 0..4u8 {
            ct.issue(&cmd(CommandKind::Activate, 0, b, 1), b as u64 * t.t_rrd);
        }
        // A different rank is free of rank 0's window.
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 1, 0, 1)),
            Some(0)
        );
    }

    #[test]
    fn wedged_bank_never_accepts_commands() {
        let mut ct = ChannelTiming::new(1, 8, timing());
        ct.wedge_bank(RankId(0), BankId(0));
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 0, 0, 1)),
            Some(DramCycle::MAX)
        );
        // Sibling banks are unaffected.
        assert_eq!(
            ct.earliest_issue(&cmd(CommandKind::Activate, 0, 1, 1)),
            Some(0)
        );
    }

    #[test]
    fn snapshot_roundtrips_tfaw_state() {
        use critmem_common::Snapshot as _;
        let t = timing();
        let mut ct = ChannelTiming::new(2, 8, t);
        for b in 0..4u8 {
            ct.issue(&cmd(CommandKind::Activate, 0, b, 1), b as u64 * t.t_rrd);
        }
        let mut w = critmem_common::codec::ByteWriter::new();
        ct.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = ChannelTiming::new(2, 8, t);
        let mut r = critmem_common::codec::ByteReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert_eq!(
            fresh.earliest_issue(&cmd(CommandKind::Activate, 0, 4, 1)),
            ct.earliest_issue(&cmd(CommandKind::Activate, 0, 4, 1))
        );
        assert_eq!(fresh.faw_count, ct.faw_count);
        assert_eq!(fresh.faw_acts, ct.faw_acts);
    }
}
