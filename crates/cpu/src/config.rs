//! Core microarchitecture configuration (Table 1 of the paper).

/// Parameters of one out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries (Figure 9 sweeps 32/48/64).
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Post-commit store buffer entries (drains into the L1).
    pub store_buffer: usize,
    /// Issue-window scan depth (models the 32+32 issue queues).
    pub issue_window: usize,
    /// Integer ALU units.
    pub int_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Load ports.
    pub ld_units: usize,
    /// Store ports.
    pub st_units: usize,
    /// Branch units.
    pub br_units: usize,
    /// Integer multipliers.
    pub int_mul_units: usize,
    /// Floating-point multipliers.
    pub fp_mul_units: usize,
    /// Maximum in-flight unresolved branches.
    pub max_unresolved_branches: usize,
    /// Minimum branch-misprediction redirect penalty in cycles.
    pub mispredict_penalty: u64,
    /// Minimum ROB-head stall (cycles) before a block is reported to
    /// the CBP — set above the uncontended L2 round trip so only
    /// DRAM-bound blocks train the predictor (L2-hit residues at the
    /// commit stage are not the "blocks" the paper targets).
    pub min_block_cycles: u64,
}

impl CoreConfig {
    /// Table 1 baseline: 4-wide, 128-entry ROB, 32-entry LQ/SQ.
    pub fn paper_baseline() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 128,
            lq_entries: 32,
            sq_entries: 32,
            store_buffer: 32,
            issue_window: 40,
            int_units: 2,
            fp_units: 2,
            ld_units: 2,
            st_units: 2,
            br_units: 2,
            int_mul_units: 1,
            fp_mul_units: 1,
            max_unresolved_branches: 24,
            mispredict_penalty: 9,
            min_block_cycles: 40,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("fetch width", self.fetch_width),
            ("issue width", self.issue_width),
            ("commit width", self.commit_width),
            ("ROB entries", self.rob_entries),
            ("LQ entries", self.lq_entries),
            ("SQ entries", self.sq_entries),
            ("store buffer", self.store_buffer),
            ("issue window", self.issue_window),
            ("load units", self.ld_units),
        ] {
            if v == 0 {
                return Err(format!("{name} must be nonzero"));
            }
        }
        if self.lq_entries > self.rob_entries {
            return Err("load queue larger than ROB makes no sense".into());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = CoreConfig::paper_baseline();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.max_unresolved_branches, 24);
        assert_eq!(c.mispredict_penalty, 9);
        assert_eq!(
            (c.int_units, c.fp_units, c.ld_units, c.st_units, c.br_units),
            (2, 2, 2, 2, 2)
        );
        assert_eq!((c.int_mul_units, c.fp_mul_units), (1, 1));
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_widths() {
        let mut c = CoreConfig::paper_baseline();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::paper_baseline();
        c.lq_entries = 256;
        assert!(c.validate().is_err());
    }
}
