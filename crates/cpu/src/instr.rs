//! The dynamic-instruction vocabulary executed by the simulated cores.
//!
//! Workload generators (the `critmem-workloads` crate) emit streams of
//! [`Instr`]; the out-of-order core consumes them. Register
//! dependencies are expressed positionally: `src1`/`src2` give the
//! *distance* (in dynamic instructions) back to the producing
//! instruction, which is how trace-driven simulators commonly encode
//! dataflow without architecting a register file.

use critmem_common::{Pc, PhysAddr};

/// Operation class and operands of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (3 cycles, one unit — Table 1).
    IntMul,
    /// Floating-point add/sub (3 cycles).
    FpAlu,
    /// Floating-point multiply (5 cycles, one unit).
    FpMul,
    /// Data-cache load.
    Load {
        /// Effective address.
        addr: PhysAddr,
    },
    /// Data-cache store (address generation at issue, data written
    /// post-commit through the store buffer).
    Store {
        /// Effective address.
        addr: PhysAddr,
    },
    /// Conditional branch; `mispredict` is decided by the workload
    /// generator's branch-accuracy model.
    Branch {
        /// Whether the (Alpha-21264-class) predictor misses this one.
        mispredict: bool,
    },
}

impl InstrKind {
    /// Execution latency in cycles for non-memory operations (loads
    /// and stores are timed by the cache hierarchy).
    pub fn fixed_latency(self) -> u64 {
        match self {
            InstrKind::IntAlu => 1,
            InstrKind::IntMul => 3,
            InstrKind::FpAlu => 3,
            InstrKind::FpMul => 5,
            InstrKind::Branch { .. } => 1,
            // Store "execution" is address generation.
            InstrKind::Store { .. } => 1,
            InstrKind::Load { .. } => 0,
        }
    }

    /// Whether the instruction reads the data cache.
    pub fn is_load(self) -> bool {
        matches!(self, InstrKind::Load { .. })
    }

    /// Whether the instruction writes the data cache.
    pub fn is_store(self) -> bool {
        matches!(self, InstrKind::Store { .. })
    }

    /// Whether the instruction is a branch.
    pub fn is_branch(self) -> bool {
        matches!(self, InstrKind::Branch { .. })
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Static program counter (used to index the CBP/CLPT).
    pub pc: Pc,
    /// Operation.
    pub kind: InstrKind,
    /// Distance (1-based, in dynamic instructions) to the first source
    /// operand's producer, if any.
    pub src1: Option<u16>,
    /// Distance to the second source operand's producer, if any.
    pub src2: Option<u16>,
}

impl Instr {
    /// Convenience constructor for dependency-free instructions.
    pub fn new(pc: Pc, kind: InstrKind) -> Self {
        Instr {
            pc,
            kind,
            src1: None,
            src2: None,
        }
    }

    /// Attaches source-operand producer distances (builder style).
    #[must_use]
    pub fn with_deps(mut self, src1: Option<u16>, src2: Option<u16>) -> Self {
        self.src1 = src1;
        self.src2 = src2;
        self
    }

    /// Serializes for checkpoint artifacts.
    pub fn encode(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u64(self.pc);
        match self.kind {
            InstrKind::IntAlu => w.put_u8(0),
            InstrKind::IntMul => w.put_u8(1),
            InstrKind::FpAlu => w.put_u8(2),
            InstrKind::FpMul => w.put_u8(3),
            InstrKind::Load { addr } => {
                w.put_u8(4);
                w.put_u64(addr);
            }
            InstrKind::Store { addr } => {
                w.put_u8(5);
                w.put_u64(addr);
            }
            InstrKind::Branch { mispredict } => {
                w.put_u8(6);
                w.put_bool(mispredict);
            }
        }
        for src in [self.src1, self.src2] {
            match src {
                Some(d) => {
                    w.put_bool(true);
                    w.put_u32(u32::from(d));
                }
                None => w.put_bool(false),
            }
        }
    }

    /// Deserializes a checkpointed instruction.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream or an unknown kind tag.
    pub fn decode(
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<Self, critmem_common::codec::CodecError> {
        let pc = r.get_u64()?;
        let tag_at = r.position();
        let kind = match r.get_u8()? {
            0 => InstrKind::IntAlu,
            1 => InstrKind::IntMul,
            2 => InstrKind::FpAlu,
            3 => InstrKind::FpMul,
            4 => InstrKind::Load { addr: r.get_u64()? },
            5 => InstrKind::Store { addr: r.get_u64()? },
            6 => InstrKind::Branch {
                mispredict: r.get_bool()?,
            },
            n => {
                return Err(critmem_common::codec::CodecError {
                    message: format!("unknown instruction kind tag {n}"),
                    offset: tag_at,
                })
            }
        };
        let mut srcs = [None, None];
        for src in &mut srcs {
            if r.get_bool()? {
                let at = r.position();
                let d = r.get_u32()?;
                *src = Some(
                    u16::try_from(d).map_err(|_| critmem_common::codec::CodecError {
                        message: format!("producer distance {d} exceeds u16"),
                        offset: at,
                    })?,
                );
            }
        }
        Ok(Instr {
            pc,
            kind,
            src1: srcs[0],
            src2: srcs[1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table1_style_units() {
        assert_eq!(InstrKind::IntAlu.fixed_latency(), 1);
        assert_eq!(InstrKind::IntMul.fixed_latency(), 3);
        assert_eq!(InstrKind::FpMul.fixed_latency(), 5);
        assert_eq!(InstrKind::Branch { mispredict: false }.fixed_latency(), 1);
    }

    #[test]
    fn classification() {
        assert!(InstrKind::Load { addr: 0 }.is_load());
        assert!(InstrKind::Store { addr: 0 }.is_store());
        assert!(InstrKind::Branch { mispredict: true }.is_branch());
        assert!(!InstrKind::IntAlu.is_load());
    }

    #[test]
    fn builder_attaches_deps() {
        let i = Instr::new(0x40, InstrKind::IntAlu).with_deps(Some(1), Some(4));
        assert_eq!(i.src1, Some(1));
        assert_eq!(i.src2, Some(4));
    }
}
