//! The heterogeneous memory-agent abstraction.
//!
//! The paper's platform is homogeneous: every request producer is an
//! out-of-order [`Core`](crate::Core). ROADMAP item 3 asks what happens
//! to processor-side criticality annotation when latency-critical cores
//! share memory channels with bandwidth-hungry accelerator-class
//! producers — GPU-like streamers, PIM-style bulk engines, and
//! prefetch-dominated front-ends. [`MemoryAgent`] is the common surface
//! all of them (including `Core`) present to the system model: a
//! classed, QoS-budgeted request producer with deterministic state
//! capture and a skip-ahead quiescence contract.
//!
//! The concrete non-core agents live in `critmem_workloads::agents`;
//! this module owns the trait, the [`AgentClass`] taxonomy, and the
//! [`AgentStats`] snapshot that rides in run statistics and sweep
//! journals.

use critmem_common::codec::{ByteReader, ByteWriter, CodecError};
use critmem_common::{CpuCycle, MemRequest, MetricVisitor, Observable};

/// Which kind of request producer an agent is. The class travels with
/// every spec and statistic, and class-aware schedulers (TCM's
/// bandwidth clustering, BLISS's blacklists) see it indirectly through
/// the per-thread request streams it shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentClass {
    /// An out-of-order core: latency-critical demand misses, annotated
    /// by the processor-side criticality predictor.
    Ooo,
    /// A GPU-like streamer: deep memory-level parallelism, sequential
    /// row-streaming bursts, no ROB, never criticality-annotated.
    Stream,
    /// A PIM-style bulk engine: row-granularity operations issued as
    /// closed batches with idle gaps between them.
    Bulk,
    /// A prefetch-dominated front-end: mostly low-priority prefetches
    /// with a thin, low-accuracy demand-read mix.
    Prefetch,
}

impl AgentClass {
    /// Grammar keyword (`ooo`, `stream`, `bulk`, `prefetch`).
    pub fn keyword(self) -> &'static str {
        match self {
            AgentClass::Ooo => "ooo",
            AgentClass::Stream => "stream",
            AgentClass::Bulk => "bulk",
            AgentClass::Prefetch => "prefetch",
        }
    }

    /// Parses a grammar keyword. Case-insensitive; `None` for unknown
    /// words.
    pub fn parse(word: &str) -> Option<Self> {
        Some(match word.to_ascii_lowercase().as_str() {
            "ooo" => AgentClass::Ooo,
            "stream" => AgentClass::Stream,
            "bulk" => AgentClass::Bulk,
            "prefetch" => AgentClass::Prefetch,
            _ => return None,
        })
    }

    /// Default QoS slowdown budget (in thousandths) a spec that does
    /// not name one inherits: how much slower than running alone this
    /// class tolerates before the run counts a budget violation.
    /// Latency-critical cores tolerate the least; bulk engines, built
    /// for throughput, the most.
    pub fn default_qos_millis(self) -> u32 {
        match self {
            AgentClass::Ooo => 3_000,
            AgentClass::Stream => 4_000,
            AgentClass::Bulk => 8_000,
            AgentClass::Prefetch => 8_000,
        }
    }

    /// Codec tag.
    fn to_tag(self) -> u8 {
        match self {
            AgentClass::Ooo => 0,
            AgentClass::Stream => 1,
            AgentClass::Bulk => 2,
            AgentClass::Prefetch => 3,
        }
    }

    /// Inverse of [`Self::to_tag`].
    fn from_tag(tag: u8, offset: usize) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => AgentClass::Ooo,
            1 => AgentClass::Stream,
            2 => AgentClass::Bulk,
            3 => AgentClass::Prefetch,
            n => {
                return Err(CodecError {
                    message: format!("unknown agent class tag {n}"),
                    offset,
                })
            }
        })
    }
}

impl std::fmt::Display for AgentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Statistics snapshot of one non-core agent, carried in run statistics
/// and sweep-journal records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AgentStats {
    /// Demand reads issued.
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Requests completed (reads, writes, and prefetches).
    pub completed: u64,
    /// Work units finished (requests for streamers/prefetchers,
    /// batches for bulk engines).
    pub units_done: u64,
    /// Work-unit target that ends the agent's measured interval.
    pub units_target: u64,
    /// Sum over completed requests of their memory latency, in CPU
    /// cycles.
    pub latency_sum: u64,
    /// CPU cycle at which the unit target was reached; zero while
    /// unfinished.
    pub finish: u64,
    /// QoS slowdown budget in thousandths.
    pub qos_millis: u32,
}

impl AgentStats {
    /// Mean memory latency of completed requests, in CPU cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.completed as f64
        }
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut ByteWriter) {
        for v in [
            self.reads,
            self.writes,
            self.prefetches,
            self.completed,
            self.units_done,
            self.units_target,
            self.latency_sum,
            self.finish,
        ] {
            w.put_u64(v);
        }
        w.put_u32(self.qos_millis);
    }

    /// Deserializes journaled agent statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(AgentStats {
            reads: r.get_u64()?,
            writes: r.get_u64()?,
            prefetches: r.get_u64()?,
            completed: r.get_u64()?,
            units_done: r.get_u64()?,
            units_target: r.get_u64()?,
            latency_sum: r.get_u64()?,
            finish: r.get_u64()?,
            qos_millis: r.get_u32()?,
        })
    }
}

impl critmem_common::Observable for AgentStats {
    /// Reports this agent's traffic metrics. The caller sets the
    /// component path (e.g. `agent.a0`) first.
    fn observe(&self, v: &mut dyn MetricVisitor) {
        v.counter("reads", "requests", self.reads);
        v.counter("writes", "requests", self.writes);
        v.counter("prefetches", "requests", self.prefetches);
        v.counter("completed", "requests", self.completed);
        v.counter("units_done", "units", self.units_done);
        v.gauge("mean_latency", "cpu-cycles", self.mean_latency());
    }
}

/// A classed, QoS-budgeted memory-request producer.
///
/// The system drives an agent with exactly three calls per active
/// cycle: [`MemoryAgent::generate`] to collect new requests (the system
/// owns id/thread stamping discipline only in so far as it routes
/// completions back by the request's `core` field — the agent stamps
/// its own ids from a disjoint namespace), [`MemoryAgent::complete`]
/// for every finished request, and [`MemoryAgent::quiescent_until`]
/// when deciding whether the skip-ahead kernel may batch-advance the
/// clock.
///
/// # Contracts
///
/// * **Determinism** — `generate` may depend only on the agent's own
///   serialized state and `now`; two agents built alike and fed alike
///   produce identical request streams.
/// * **Quiescence** — every cycle in `now + 1 ..
///   quiescent_until(now)` must be one where `generate` would produce
///   nothing, so skipping it is invisible. Completions need not be
///   accounted for: the DRAM event horizon already bounds them.
/// * **State capture** — `save_state`/`load_state` round-trip the full
///   mutable state, so a CMCK checkpoint restore resumes the exact
///   request stream.
pub trait MemoryAgent {
    /// This agent's class.
    fn class(&self) -> AgentClass;

    /// QoS slowdown budget, in thousandths (3_000 = "at most 3x slower
    /// than alone").
    fn qos_millis(&self) -> u32;

    /// Produces the requests this agent issues at `now`, appending them
    /// to `out`. The agent throttles itself (memory-level-parallelism
    /// window, batch gaps); the system buffers whatever the DRAM
    /// queues cannot accept this cycle.
    fn generate(&mut self, now: CpuCycle, out: &mut Vec<MemRequest>);

    /// Notifies the agent that one of its requests finished at `now`.
    fn complete(&mut self, req: &MemRequest, now: CpuCycle);

    /// Work units finished so far (the forward-progress measure the
    /// watchdog and the run-completion check use).
    fn units_done(&self) -> u64;

    /// Whether the agent has reached its work-unit target.
    fn finished(&self) -> bool;

    /// CPU cycle at which the target was reached, if it has been.
    fn finish_cycle(&self) -> Option<CpuCycle>;

    /// First future cycle at which [`Self::generate`] could produce a
    /// request. Must be at least `now + 1`; `now + 1` means "no
    /// skippable window". See the trait-level quiescence contract.
    fn quiescent_until(&self, now: CpuCycle) -> CpuCycle;

    /// Current statistics snapshot.
    fn stats(&self) -> AgentStats;

    /// Reports metrics for the observability registry. The caller sets
    /// the component path first.
    fn observe(&self, v: &mut dyn MetricVisitor) {
        self.stats().observe(v);
    }

    /// Serializes the full mutable state.
    fn save_state(&self, w: &mut ByteWriter);

    /// Restores state captured by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError>;
}

/// Base of the request-id namespace non-core agents stamp their
/// requests from. The cache hierarchy allocates ids from zero upward;
/// starting agents at `1 << 48` (and giving each agent its own `1 <<
/// 40` sub-range) keeps the two populations disjoint for the lifetime
/// of any run, which the request-conservation auditor relies on.
pub const AGENT_REQ_BASE: u64 = 1 << 48;

/// The id sub-range stride between agents.
pub const AGENT_REQ_STRIDE: u64 = 1 << 40;

/// Encodes an agent-class round-trip tag (exposed for the spec codec
/// in the system crate).
pub fn encode_agent_class(class: AgentClass, w: &mut ByteWriter) {
    w.put_u8(class.to_tag());
}

/// Decodes an agent-class tag.
///
/// # Errors
///
/// Fails on an unknown tag.
pub fn decode_agent_class(r: &mut ByteReader<'_>) -> Result<AgentClass, CodecError> {
    let at = r.position();
    AgentClass::from_tag(r.get_u8()?, at)
}

impl MemoryAgent for crate::Core {
    /// An out-of-order core is the original memory agent. Its requests
    /// flow through the cache hierarchy rather than
    /// [`MemoryAgent::generate`], so the generation and completion
    /// hooks are deliberately inert — the trait impl exists so the
    /// class/QoS/progress surface is uniform across every producer.
    fn class(&self) -> AgentClass {
        AgentClass::Ooo
    }

    fn qos_millis(&self) -> u32 {
        self.qos_budget_millis()
    }

    fn generate(&mut self, _now: CpuCycle, _out: &mut Vec<MemRequest>) {}

    fn complete(&mut self, _req: &MemRequest, _now: CpuCycle) {}

    fn units_done(&self) -> u64 {
        self.stats().committed
    }

    fn finished(&self) -> bool {
        self.done()
    }

    fn finish_cycle(&self) -> Option<CpuCycle> {
        None // the system, not the core, tracks per-core finish cycles
    }

    fn quiescent_until(&self, now: CpuCycle) -> CpuCycle {
        crate::Core::quiescent_until(self, now)
    }

    fn stats(&self) -> AgentStats {
        let s = crate::Core::stats(self);
        AgentStats {
            reads: s.issued_loads,
            writes: s.stores,
            prefetches: 0,
            completed: s.issued_loads,
            units_done: s.committed,
            units_target: 0,
            latency_sum: 0,
            finish: 0,
            qos_millis: self.qos_budget_millis(),
        }
    }

    fn save_state(&self, w: &mut ByteWriter) {
        crate::Core::save_state(self, w);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        crate::Core::load_state(self, r, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_keywords_round_trip() {
        for c in [
            AgentClass::Ooo,
            AgentClass::Stream,
            AgentClass::Bulk,
            AgentClass::Prefetch,
        ] {
            assert_eq!(AgentClass::parse(c.keyword()), Some(c));
            assert_eq!(AgentClass::parse(&c.keyword().to_uppercase()), Some(c));
            let mut w = ByteWriter::new();
            encode_agent_class(c, &mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_agent_class(&mut r).unwrap(), c);
        }
        assert_eq!(AgentClass::parse("gpu"), None);
    }

    #[test]
    fn stats_round_trip() {
        let s = AgentStats {
            reads: 10,
            writes: 3,
            prefetches: 7,
            completed: 18,
            units_done: 18,
            units_target: 20,
            latency_sum: 5_400,
            finish: 0,
            qos_millis: 4_000,
        };
        let mut w = ByteWriter::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(AgentStats::decode(&mut r).unwrap(), s);
        assert!((s.mean_latency() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn default_budgets_order_by_latency_sensitivity() {
        assert!(AgentClass::Ooo.default_qos_millis() < AgentClass::Stream.default_qos_millis());
        assert!(AgentClass::Stream.default_qos_millis() <= AgentClass::Bulk.default_qos_millis());
    }

    #[test]
    fn agent_id_namespaces_are_disjoint() {
        // Four agents' sub-ranges must not overlap each other or the
        // hierarchy's zero-based ids even after billions of requests.
        for i in 0..4u64 {
            let base = AGENT_REQ_BASE + i * AGENT_REQ_STRIDE;
            assert!(base > u32::MAX as u64);
            assert!(base + AGENT_REQ_STRIDE <= AGENT_REQ_BASE + (i + 1) * AGENT_REQ_STRIDE);
        }
    }
}
