//! The interface between the core's commit/issue stages and a
//! criticality predictor, plus adapters for the concrete predictors of
//! the `critmem-predict` crate.
//!
//! The core calls:
//!
//! * [`LoadCriticalityPredictor::predict`] when a load issues to the
//!   cache hierarchy (the prediction rides on any resulting memory
//!   request),
//! * [`LoadCriticalityPredictor::on_block_commit`] when a load that
//!   blocked the ROB head finally commits (CBP training),
//! * [`LoadCriticalityPredictor::on_load_commit`] for every committed
//!   load with its observed direct-consumer count (CLPT training).

use critmem_common::{CpuCycle, Criticality, Pc};
use critmem_predict::{Clpt, CommitBlockPredictor};

/// A per-core load criticality predictor as the core sees it.
pub trait LoadCriticalityPredictor {
    /// Prediction for a load issuing at `pc`.
    fn predict(&mut self, pc: Pc) -> Criticality;

    /// A load at `pc` blocked the ROB head for `stall_cycles` and has
    /// now committed.
    fn on_block_commit(&mut self, pc: Pc, stall_cycles: u64);

    /// A load at `pc` committed having had `consumers` direct
    /// consumers dispatched while it was in flight.
    fn on_load_commit(&mut self, pc: Pc, consumers: u32);

    /// Once-per-cycle housekeeping (periodic table reset).
    fn tick(&mut self, now: CpuCycle);

    /// The earliest future cycle at which
    /// [`LoadCriticalityPredictor::tick`] would do observable work, or
    /// `u64::MAX` when its tick is a no-op. Event-horizon accessor for
    /// the skip-ahead kernel: ticks strictly before the returned cycle
    /// may be batched without calling `tick` for each.
    fn next_event_cycle(&self, _now: CpuCycle) -> CpuCycle {
        CpuCycle::MAX
    }

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// `(max value written, bits required)` observed by a counter-based
    /// predictor — feeds the Table 5 reproduction. `None` for
    /// predictors without counters.
    fn observed_extremes(&self) -> Option<(u64, u32)> {
        None
    }

    /// Reports predictor-internal metrics to the observability layer.
    /// The caller sets the component path (e.g. `cbp.core0`) first.
    /// The default reports nothing.
    fn observe_metrics(&self, _v: &mut dyn critmem_common::MetricVisitor) {}

    /// Appends the predictor's mutable state for checkpointing. The
    /// default saves nothing (stateless predictors).
    fn save_state(&self, _w: &mut critmem_common::codec::ByteWriter) {}

    /// Restores state captured by
    /// [`LoadCriticalityPredictor::save_state`] onto a freshly
    /// constructed predictor of the same kind and configuration.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    fn load_state(
        &mut self,
        _r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        Ok(())
    }
}

/// The always-non-critical predictor (baseline FR-FCFS runs).
#[derive(Debug, Default, Clone)]
pub struct NoPredictor;

impl LoadCriticalityPredictor for NoPredictor {
    fn predict(&mut self, _pc: Pc) -> Criticality {
        Criticality::non_critical()
    }
    fn on_block_commit(&mut self, _pc: Pc, _stall: u64) {}
    fn on_load_commit(&mut self, _pc: Pc, _consumers: u32) {}
    fn tick(&mut self, _now: CpuCycle) {}
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Adapter exposing a [`CommitBlockPredictor`] to the core.
#[derive(Debug, Clone)]
pub struct CbpPredictor {
    cbp: CommitBlockPredictor,
}

impl CbpPredictor {
    /// Wraps a CBP instance.
    pub fn new(cbp: CommitBlockPredictor) -> Self {
        CbpPredictor { cbp }
    }

    /// Access to the wrapped predictor (for statistics).
    pub fn inner(&self) -> &CommitBlockPredictor {
        &self.cbp
    }
}

impl LoadCriticalityPredictor for CbpPredictor {
    fn predict(&mut self, pc: Pc) -> Criticality {
        self.cbp.predict(pc)
    }
    fn on_block_commit(&mut self, pc: Pc, stall_cycles: u64) {
        self.cbp.record_block(pc, stall_cycles);
    }
    fn on_load_commit(&mut self, _pc: Pc, _consumers: u32) {}
    fn tick(&mut self, now: CpuCycle) {
        self.cbp.tick(now);
    }
    fn next_event_cycle(&self, _now: CpuCycle) -> CpuCycle {
        self.cbp.next_reset_due()
    }
    fn name(&self) -> &'static str {
        self.cbp.metric().name()
    }
    fn observed_extremes(&self) -> Option<(u64, u32)> {
        let h = &self.cbp.stats().written_values;
        Some((h.max().unwrap_or(0), h.required_bits()))
    }
    fn observe_metrics(&self, v: &mut dyn critmem_common::MetricVisitor) {
        self.cbp.observe_metrics(v);
    }
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        critmem_common::Snapshot::save_state(&self.cbp, w);
    }
    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        critmem_common::Snapshot::load_state(&mut self.cbp, r)
    }
}

/// Adapter exposing a [`Clpt`] (Subramaniam et al.) to the core.
#[derive(Debug, Clone)]
pub struct ClptPredictor {
    clpt: Clpt,
}

impl ClptPredictor {
    /// Wraps a CLPT instance.
    pub fn new(clpt: Clpt) -> Self {
        ClptPredictor { clpt }
    }

    /// Access to the wrapped predictor (for statistics).
    pub fn inner(&self) -> &Clpt {
        &self.clpt
    }
}

impl LoadCriticalityPredictor for ClptPredictor {
    fn predict(&mut self, pc: Pc) -> Criticality {
        self.clpt.predict(pc)
    }
    fn on_block_commit(&mut self, _pc: Pc, _stall: u64) {}
    fn on_load_commit(&mut self, pc: Pc, consumers: u32) {
        self.clpt.record_consumers(pc, consumers);
    }
    fn tick(&mut self, _now: CpuCycle) {}
    fn name(&self) -> &'static str {
        match self.clpt.mode() {
            critmem_predict::ClptMode::Binary { .. } => "CLPT-Binary",
            critmem_predict::ClptMode::Consumers { .. } => "CLPT-Consumers",
        }
    }
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        critmem_common::Snapshot::save_state(&self.clpt, w);
    }
    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        critmem_common::Snapshot::load_state(&mut self.clpt, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_predict::{CbpMetric, ClptMode, TableSize};

    #[test]
    fn no_predictor_never_marks() {
        let mut p = NoPredictor;
        p.on_block_commit(0x40, 1_000);
        assert!(!p.predict(0x40).is_critical());
    }

    #[test]
    fn cbp_adapter_trains_on_blocks() {
        let mut p = CbpPredictor::new(CommitBlockPredictor::new(
            CbpMetric::MaxStallTime,
            TableSize::Entries(64),
        ));
        p.on_load_commit(0x40, 10); // ignored by CBP
        assert!(!p.predict(0x40).is_critical());
        p.on_block_commit(0x40, 77);
        assert_eq!(p.predict(0x40).magnitude(), 77);
        assert_eq!(p.name(), "MaxStallTime");
    }

    #[test]
    fn clpt_adapter_trains_on_consumers() {
        let mut p = ClptPredictor::new(Clpt::new(ClptMode::Binary { threshold: 3 }));
        p.on_block_commit(0x40, 1_000); // ignored by CLPT
        assert!(!p.predict(0x40).is_critical());
        p.on_load_commit(0x40, 5);
        assert!(p.predict(0x40).is_critical());
        assert_eq!(p.name(), "CLPT-Binary");
    }
}
