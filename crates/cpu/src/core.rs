//! The cycle-level out-of-order core model.
//!
//! Implements the Table 1 microarchitecture at the fidelity the paper's
//! mechanism depends on: a 128-entry ROB with in-order 4-wide commit,
//! a 32-entry load queue whose occupancy gates dispatch (Figure 9),
//! dependence-driven out-of-order issue over a bounded window with
//! per-class functional-unit ports, branch-misprediction redirect
//! stalls, a post-commit store buffer, and — centrally — the commit
//! stage's ROB-head block detection that trains the Commit Block
//! Predictor (Figure 2 of the paper).
//!
//! Deliberate simplifications (recorded in DESIGN.md): no wrong-path
//! execution (a mispredicted branch stalls the front end for the
//! redirect penalty once it resolves), perfect memory disambiguation
//! (Table 1 assumes it too), and an always-hitting L1I (the synthetic
//! workloads' code footprints are tiny).

use crate::config::CoreConfig;
use crate::instr::{Instr, InstrKind};
use crate::predictor::LoadCriticalityPredictor;
use critmem_cache::{AccessOutcome, CacheAccessKind, CacheHierarchy};
use critmem_common::{CoreId, CpuCycle, Criticality, Histogram, Pc, PhysAddr};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// An infinite dynamic-instruction stream (implemented by the workload
/// generators).
pub trait InstrSource {
    /// Produces the next dynamic instruction.
    fn next_instr(&mut self) -> Instr;

    /// Appends the generator's mutable state for checkpointing. The
    /// default saves nothing (stateless/scripted sources).
    fn save_state(&self, _w: &mut critmem_common::codec::ByteWriter) {}

    /// Restores state captured by [`InstrSource::save_state`] onto a
    /// freshly constructed generator of the same configuration.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    fn load_state(
        &mut self,
        _r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        Ok(())
    }
}

/// Statistics gathered by one core.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Cycles this core was stepped.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Branches committed.
    pub branches: u64,
    /// Loads that blocked the ROB head (stall >= min_block_cycles).
    pub blocked_loads: u64,
    /// Loads whose ROB-head stall was "long" (>= long_block_cycles) —
    /// the Figure 1 numerator.
    pub long_blocked_loads: u64,
    /// Cycles the ROB head was blocked by an incomplete load.
    pub block_cycles: u64,
    /// Sum of stalls of long-blocked loads — Figure 1's right panel.
    pub long_block_cycles: u64,
    /// Cycles dispatch stalled because the load queue was full.
    pub lq_full_cycles: u64,
    /// Cycles dispatch stalled for a branch-mispredict redirect.
    pub redirect_stall_cycles: u64,
    /// Cycles commit stalled because the store buffer was full.
    pub sb_full_cycles: u64,
    /// Loads issued to the memory hierarchy.
    pub issued_loads: u64,
    /// Issued loads carrying a critical prediction.
    pub issued_critical_loads: u64,
    /// Distribution of ROB-head stall durations of committed loads.
    pub stall_histogram: Histogram,
}

impl CoreStats {
    /// Instructions committed per cycle stepped.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut critmem_common::codec::ByteWriter) {
        for v in [
            self.cycles,
            self.committed,
            self.loads,
            self.stores,
            self.branches,
            self.blocked_loads,
            self.long_blocked_loads,
            self.block_cycles,
            self.long_block_cycles,
            self.lq_full_cycles,
            self.redirect_stall_cycles,
            self.sb_full_cycles,
            self.issued_loads,
            self.issued_critical_loads,
        ] {
            w.put_u64(v);
        }
        self.stall_histogram.encode(w);
    }

    /// Deserializes journaled core statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    pub fn decode(
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<Self, critmem_common::codec::CodecError> {
        Ok(CoreStats {
            cycles: r.get_u64()?,
            committed: r.get_u64()?,
            loads: r.get_u64()?,
            stores: r.get_u64()?,
            branches: r.get_u64()?,
            blocked_loads: r.get_u64()?,
            long_blocked_loads: r.get_u64()?,
            block_cycles: r.get_u64()?,
            long_block_cycles: r.get_u64()?,
            lq_full_cycles: r.get_u64()?,
            redirect_stall_cycles: r.get_u64()?,
            sb_full_cycles: r.get_u64()?,
            issued_loads: r.get_u64()?,
            issued_critical_loads: r.get_u64()?,
            stall_histogram: Histogram::decode(r)?,
        })
    }
}

impl critmem_common::Observable for CoreStats {
    /// Reports this core's pipeline metrics. The caller sets the
    /// component path (e.g. `cpu.core0`) first.
    fn observe(&self, v: &mut dyn critmem_common::MetricVisitor) {
        v.counter("cycles", "cpu-cycles", self.cycles);
        v.counter("committed", "instructions", self.committed);
        v.gauge("ipc", "instructions-per-cycle", self.ipc());
        v.counter("loads", "instructions", self.loads);
        v.counter("stores", "instructions", self.stores);
        v.counter("rob_head_blocked_cycles", "cpu-cycles", self.block_cycles);
        v.counter("blocked_loads", "loads", self.blocked_loads);
        v.counter("long_blocked_loads", "loads", self.long_blocked_loads);
        v.counter("lq_full_cycles", "cpu-cycles", self.lq_full_cycles);
        v.counter("sb_full_cycles", "cpu-cycles", self.sb_full_cycles);
        v.counter("issued_loads", "loads", self.issued_loads);
        v.counter("issued_critical_loads", "loads", self.issued_critical_loads);
    }
}

/// Threshold (cycles) above which a ROB-head block counts as
/// "long-latency" for the Figure 1 statistics.
pub const LONG_BLOCK_CYCLES: u64 = 24;

/// Events a [`Core::step`] surfaces to the system.
#[derive(Debug, Clone, Default)]
pub struct StepEvents {
    /// A load began blocking the ROB head this cycle (used by the §5.1
    /// naive forwarding scheme).
    pub block_started: Option<BlockStart>,
}

/// Details of a load that just started blocking the ROB head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStart {
    /// Static PC of the load.
    pub pc: Pc,
    /// Effective address.
    pub addr: PhysAddr,
}

#[derive(Debug, Clone)]
struct RobEntry {
    instr: Instr,
    seq: u64,
    issued: bool,
    completed: bool,
    waiting_mem: bool,
    consumers: u32,
    block_start: Option<CpuCycle>,
    block_reported: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreState {
    Waiting,
    Inflight(u64),
}

/// One out-of-order core.
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    rob: VecDeque<RobEntry>,
    base_seq: u64,
    next_seq: u64,
    lq_used: usize,
    sq_used: usize,
    store_buffer: VecDeque<(PhysAddr, StoreState)>,
    /// Fixed-latency (and memory-resolved) completions: (cycle, seq).
    completions: BinaryHeap<Reverse<(CpuCycle, u64)>>,
    /// In-flight load/store tokens -> ROB seq (or u64::MAX for store
    /// buffer drains).
    pending_mem: HashMap<u64, u64>,
    /// Memory completions received but not yet applied.
    mem_ready: Vec<(CpuCycle, u64)>,
    fetch_stall_until: CpuCycle,
    unresolved_branches: usize,
    peeked: Option<Instr>,
    predictor: Box<dyn LoadCriticalityPredictor>,
    target: u64,
    dispatched: u64,
    stats: CoreStats,
    /// QoS slowdown budget in thousandths (see
    /// [`crate::AgentClass::default_qos_millis`]). Configuration, not
    /// mutable state: deliberately outside `save_state`.
    qos_millis: u32,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("committed", &self.stats.committed)
            .field("rob", &self.rob.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core that will execute `target` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(
        id: CoreId,
        cfg: CoreConfig,
        predictor: Box<dyn LoadCriticalityPredictor>,
        target: u64,
    ) -> Self {
        cfg.validate().expect("invalid core configuration");
        Core {
            id,
            cfg,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            base_seq: 0,
            next_seq: 0,
            lq_used: 0,
            sq_used: 0,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer),
            completions: BinaryHeap::new(),
            pending_mem: HashMap::new(),
            mem_ready: Vec::new(),
            fetch_stall_until: 0,
            unresolved_branches: 0,
            peeked: None,
            predictor,
            target,
            dispatched: 0,
            stats: CoreStats::default(),
            qos_millis: crate::AgentClass::Ooo.default_qos_millis(),
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// QoS slowdown budget in thousandths.
    pub fn qos_budget_millis(&self) -> u32 {
        self.qos_millis
    }

    /// Sets the QoS slowdown budget (thousandths; builder style).
    #[must_use]
    pub fn with_qos_budget_millis(mut self, millis: u32) -> Self {
        self.qos_millis = millis;
        self
    }

    /// Whether the core has committed its instruction target.
    pub fn done(&self) -> bool {
        self.stats.committed >= self.target
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The predictor driving this core's criticality annotations.
    pub fn predictor(&self) -> &dyn LoadCriticalityPredictor {
        self.predictor.as_ref()
    }

    /// Replaces the criticality predictor with a fresh one, keeping all
    /// other core state — the warm-start engine's component-swap hook.
    pub fn replace_predictor(&mut self, predictor: Box<dyn LoadCriticalityPredictor>) {
        self.predictor = predictor;
    }

    /// Whether the load queue is currently full (Figure 9 / §5.4
    /// analysis).
    pub fn lq_full(&self) -> bool {
        self.lq_used >= self.cfg.lq_entries
    }

    /// PC of the instruction at the ROB head (`None` when empty) — the
    /// watchdog snapshots this to show where a stuck core is blocked.
    pub fn rob_head_pc(&self) -> Option<Pc> {
        self.rob.front().map(|e| e.instr.pc)
    }

    /// Delivers a memory completion (from the cache hierarchy) for a
    /// token this core issued.
    pub fn mem_completed(&mut self, token: u64, done: CpuCycle) {
        self.mem_ready.push((done, token));
    }

    #[inline]
    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        seq.checked_sub(self.base_seq)
            .and_then(|i| self.rob.get(i as usize))
    }

    #[inline]
    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        seq.checked_sub(self.base_seq)
            .and_then(|i| self.rob.get_mut(i as usize))
    }

    fn dep_ready(&self, seq: u64, dist: Option<u16>) -> bool {
        let Some(d) = dist else { return true };
        let Some(producer) = seq.checked_sub(u64::from(d)) else {
            return true;
        };
        if producer < self.base_seq {
            return true; // already committed
        }
        self.entry(producer).map(|e| e.completed).unwrap_or(true)
    }

    /// The earliest future cycle at which stepping this core could do
    /// anything beyond batch-replayable counter updates, assuming no
    /// external event (memory completion, forward delivery) arrives
    /// first. Returns at least `now + 1`; `u64::MAX` means "inert until
    /// something external happens".
    ///
    /// This is the core's half of the skip-ahead contract: for every
    /// cycle `c` in `now + 1 .. quiescent_until(now)`, `step(c, ..)`
    /// would leave all architectural state unchanged and only bump the
    /// per-cycle stall counters that [`Core::skip`] replays in closed
    /// form. Each pipeline stage is mirrored explicitly:
    ///
    /// * **commit** — a completed head retires (event at `now + 1`)
    ///   unless it is a store facing a full store buffer (pure
    ///   `sb_full_cycles` counter); a blocked load head is inert only
    ///   after its one-shot block transitions (and the §5.1 forwarding
    ///   event they surface) have fired.
    /// * **store buffer** — a `Waiting` entry retries the hierarchy
    ///   every cycle.
    /// * **issue** — any dependence-ready unissued entry inside the
    ///   issue window reaches a functional unit or probes the cache.
    /// * **dispatch** — mirrors `dispatch`'s precedence: redirect
    ///   stall (counter until `fetch_stall_until`), fetch-target cap
    ///   and full ROB (inert), then a stashed structurally-stalled
    ///   instruction (pure `lq_full_cycles` counter for loads; a
    ///   missing stash would pull the instruction source).
    /// * **events** — pending fixed-latency completions, delivered
    ///   memory completions, and the predictor's periodic reset bound
    ///   the horizon.
    pub fn quiescent_until(&self, now: CpuCycle) -> CpuCycle {
        let nxt = now + 1;
        if let Some(head) = self.rob.front() {
            if head.completed {
                if !(head.instr.kind.is_store() && self.store_buffer.len() >= self.cfg.store_buffer)
                {
                    return nxt;
                }
            } else if head.instr.kind.is_load()
                && head.issued
                && !(head.block_start.is_some() && head.block_reported)
            {
                return nxt;
            }
        }
        if self
            .store_buffer
            .iter()
            .any(|(_, s)| *s == StoreState::Waiting)
        {
            return nxt;
        }
        let mut window = self.cfg.issue_window;
        for e in &self.rob {
            if window == 0 {
                break;
            }
            if e.issued {
                continue;
            }
            window -= 1;
            if self.dep_ready(e.seq, e.instr.src1) && self.dep_ready(e.seq, e.instr.src2) {
                return nxt;
            }
        }
        let mut horizon = CpuCycle::MAX;
        if nxt < self.fetch_stall_until {
            horizon = self.fetch_stall_until;
        } else if self.dispatched < self.target + self.cfg.rob_entries as u64
            && self.rob.len() < self.cfg.rob_entries
        {
            match &self.peeked {
                Some(i) => {
                    let stalled = match i.kind {
                        InstrKind::Load { .. } => self.lq_used >= self.cfg.lq_entries,
                        InstrKind::Store { .. } => self.sq_used >= self.cfg.sq_entries,
                        InstrKind::Branch { .. } => {
                            self.unresolved_branches >= self.cfg.max_unresolved_branches
                        }
                        _ => false,
                    };
                    if !stalled {
                        return nxt;
                    }
                }
                None => return nxt,
            }
        }
        if let Some(&Reverse((at, _))) = self.completions.peek() {
            horizon = horizon.min(at);
        }
        for &(done, _) in &self.mem_ready {
            horizon = horizon.min(done);
        }
        horizon = horizon.min(self.predictor.next_event_cycle(now));
        horizon.max(nxt)
    }

    /// Batch-advances `n` cycles that [`Core::quiescent_until`] proved
    /// inert (the caller guarantees `now + n < quiescent_until(now)`),
    /// replaying exactly the per-cycle counters a serial run of
    /// `step(now + 1) .. step(now + n)` would have accumulated.
    pub fn skip(&mut self, now: CpuCycle, n: u64) {
        self.stats.cycles += n;
        if let Some(head) = self.rob.front() {
            if !head.completed && head.instr.kind.is_load() && head.issued {
                self.stats.block_cycles += n;
            } else if head.completed
                && head.instr.kind.is_store()
                && self.store_buffer.len() >= self.cfg.store_buffer
            {
                self.stats.sb_full_cycles += n;
            }
        }
        if now + 1 < self.fetch_stall_until {
            self.stats.redirect_stall_cycles += n;
        } else if self.dispatched < self.target + self.cfg.rob_entries as u64
            && self.rob.len() < self.cfg.rob_entries
        {
            if let Some(i) = &self.peeked {
                if matches!(i.kind, InstrKind::Load { .. }) && self.lq_used >= self.cfg.lq_entries {
                    self.stats.lq_full_cycles += n;
                }
            }
        }
    }

    /// Advances the core one cycle.
    pub fn step(
        &mut self,
        now: CpuCycle,
        source: &mut dyn InstrSource,
        mem: &mut CacheHierarchy,
    ) -> StepEvents {
        self.stats.cycles += 1;
        self.predictor.tick(now);
        self.apply_mem_completions(now);
        self.apply_fixed_completions(now);
        let events = self.commit(now);
        self.drain_store_buffer(now, mem);
        self.issue(now, mem);
        self.dispatch(now, source);
        events
    }

    fn apply_mem_completions(&mut self, now: CpuCycle) {
        let mut i = 0;
        while i < self.mem_ready.len() {
            let (done, token) = self.mem_ready[i];
            if done > now {
                i += 1;
                continue;
            }
            self.mem_ready.swap_remove(i);
            if let Some(seq) = self.pending_mem.remove(&token) {
                if seq == u64::MAX {
                    // Store-buffer drain finished.
                    if let Some(pos) = self
                        .store_buffer
                        .iter()
                        .position(|(_, s)| *s == StoreState::Inflight(token))
                    {
                        self.store_buffer.remove(pos);
                    }
                } else if let Some(e) = self.entry_mut(seq) {
                    e.completed = true;
                    e.waiting_mem = false;
                }
            }
        }
    }

    fn apply_fixed_completions(&mut self, now: CpuCycle) {
        while let Some(&Reverse((at, seq))) = self.completions.peek() {
            if at > now {
                break;
            }
            self.completions.pop();
            let penalty = self.cfg.mispredict_penalty;
            let mut redirect = None;
            if let Some(e) = self.entry_mut(seq) {
                e.completed = true;
                if let InstrKind::Branch { mispredict } = e.instr.kind {
                    if mispredict {
                        redirect = Some(at + penalty);
                    }
                }
            }
            if let Some(e) = self.entry(seq) {
                if e.instr.kind.is_branch() {
                    self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
                }
            }
            if let Some(until) = redirect {
                self.fetch_stall_until = self.fetch_stall_until.max(until);
            }
        }
    }

    fn commit(&mut self, now: CpuCycle) -> StepEvents {
        let mut events = StepEvents::default();
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed {
                // ROB-head block tracking: the heart of the CBP.
                if head.instr.kind.is_load() && head.issued {
                    self.stats.block_cycles += 1;
                    let head = self.rob.front_mut().expect("head exists");
                    if head.block_start.is_none() {
                        head.block_start = Some(now);
                    }
                    if !head.block_reported {
                        head.block_reported = true;
                        if let InstrKind::Load { addr } = head.instr.kind {
                            events.block_started = Some(BlockStart {
                                pc: head.instr.pc,
                                addr,
                            });
                        }
                    }
                }
                break;
            }
            // Stores retire into the store buffer; stall if full.
            if head.instr.kind.is_store() && self.store_buffer.len() >= self.cfg.store_buffer {
                self.stats.sb_full_cycles += 1;
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            self.base_seq += 1;
            self.stats.committed += 1;
            match e.instr.kind {
                InstrKind::Load { .. } => {
                    self.stats.loads += 1;
                    self.lq_used -= 1;
                    let stall = e.block_start.map(|s| now.saturating_sub(s)).unwrap_or(0);
                    self.stats.stall_histogram.record(stall);
                    if stall >= self.cfg.min_block_cycles {
                        self.stats.blocked_loads += 1;
                        self.predictor.on_block_commit(e.instr.pc, stall);
                    }
                    if stall >= LONG_BLOCK_CYCLES {
                        self.stats.long_blocked_loads += 1;
                        self.stats.long_block_cycles += stall;
                    }
                    self.predictor.on_load_commit(e.instr.pc, e.consumers);
                }
                InstrKind::Store { addr } => {
                    self.stats.stores += 1;
                    self.sq_used -= 1;
                    self.store_buffer.push_back((addr, StoreState::Waiting));
                }
                InstrKind::Branch { .. } => {
                    self.stats.branches += 1;
                }
                _ => {}
            }
        }
        events
    }

    fn drain_store_buffer(&mut self, now: CpuCycle, mem: &mut CacheHierarchy) {
        // One new drain attempt per cycle, oldest waiting entry first.
        let Some(pos) = self
            .store_buffer
            .iter()
            .position(|(_, s)| *s == StoreState::Waiting)
        else {
            return;
        };
        let addr = self.store_buffer[pos].0;
        match mem.access(
            self.id,
            addr,
            CacheAccessKind::Store,
            Criticality::non_critical(),
            now,
        ) {
            AccessOutcome::Done(_) => {
                self.store_buffer.remove(pos);
            }
            AccessOutcome::Pending(token) => {
                self.pending_mem.insert(token.0, u64::MAX);
                self.store_buffer[pos].1 = StoreState::Inflight(token.0);
            }
            AccessOutcome::Retry => {}
        }
    }

    fn issue(&mut self, now: CpuCycle, mem: &mut CacheHierarchy) {
        let mut budget = self.cfg.issue_width;
        let mut int_u = self.cfg.int_units;
        let mut fp_u = self.cfg.fp_units;
        let mut ld_u = self.cfg.ld_units;
        let mut st_u = self.cfg.st_units;
        let mut br_u = self.cfg.br_units;
        let mut int_mul_u = self.cfg.int_mul_units;
        let mut fp_mul_u = self.cfg.fp_mul_units;
        let mut window = self.cfg.issue_window;
        let mut idx = 0;
        while budget > 0 && window > 0 && idx < self.rob.len() {
            let e = &self.rob[idx];
            if e.issued {
                idx += 1;
                continue;
            }
            window -= 1;
            let seq = e.seq;
            let kind = e.instr.kind;
            let pc = e.instr.pc;
            let ready = self.dep_ready(seq, e.instr.src1) && self.dep_ready(seq, e.instr.src2);
            if !ready {
                idx += 1;
                continue;
            }
            // Functional-unit check.
            let unit = match kind {
                InstrKind::IntAlu => &mut int_u,
                InstrKind::IntMul => &mut int_mul_u,
                InstrKind::FpAlu => &mut fp_u,
                InstrKind::FpMul => &mut fp_mul_u,
                InstrKind::Load { .. } => &mut ld_u,
                InstrKind::Store { .. } => &mut st_u,
                InstrKind::Branch { .. } => &mut br_u,
            };
            if *unit == 0 {
                idx += 1;
                continue;
            }
            *unit -= 1;
            budget -= 1;
            match kind {
                InstrKind::Load { addr } => {
                    let crit = self.predictor.predict(pc);
                    match mem.access(self.id, addr, CacheAccessKind::Load, crit, now) {
                        AccessOutcome::Done(t) => {
                            self.stats.issued_loads += 1;
                            if crit.is_critical() {
                                self.stats.issued_critical_loads += 1;
                            }
                            let e = &mut self.rob[idx];
                            e.issued = true;
                            self.completions.push(Reverse((t.max(now + 1), seq)));
                        }
                        AccessOutcome::Pending(token) => {
                            self.stats.issued_loads += 1;
                            if crit.is_critical() {
                                self.stats.issued_critical_loads += 1;
                            }
                            let e = &mut self.rob[idx];
                            e.issued = true;
                            e.waiting_mem = true;
                            self.pending_mem.insert(token.0, seq);
                        }
                        AccessOutcome::Retry => {
                            // Port consumed, load retries next cycle.
                        }
                    }
                }
                _ => {
                    let e = &mut self.rob[idx];
                    e.issued = true;
                    let lat = kind.fixed_latency().max(1);
                    self.completions.push(Reverse((now + lat, seq)));
                }
            }
            idx += 1;
        }
    }

    /// Captures this core's mutable architectural state (ROB, queues,
    /// store buffer, in-flight bookkeeping, statistics) plus the
    /// predictor's tables as a length-prefixed block, so a restore can
    /// either replay the predictor or discard it in favor of a fresh
    /// one of a different kind.
    pub fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.rob.len() as u32);
        for e in &self.rob {
            e.instr.encode(w);
            w.put_u64(e.seq);
            w.put_bool(e.issued);
            w.put_bool(e.completed);
            w.put_bool(e.waiting_mem);
            w.put_u32(e.consumers);
            match e.block_start {
                Some(c) => {
                    w.put_bool(true);
                    w.put_u64(c);
                }
                None => w.put_bool(false),
            }
            w.put_bool(e.block_reported);
        }
        w.put_u64(self.base_seq);
        w.put_u64(self.next_seq);
        w.put_u64(self.lq_used as u64);
        w.put_u64(self.sq_used as u64);
        w.put_u32(self.store_buffer.len() as u32);
        for &(addr, state) in &self.store_buffer {
            w.put_u64(addr);
            match state {
                StoreState::Waiting => w.put_u8(0),
                StoreState::Inflight(token) => {
                    w.put_u8(1);
                    w.put_u64(token);
                }
            }
        }
        // The heap's internal layout is not deterministic; serialize
        // its contents sorted (order is irrelevant on rebuild).
        let mut completions: Vec<(CpuCycle, u64)> =
            self.completions.iter().map(|Reverse(p)| *p).collect();
        completions.sort_unstable();
        w.put_u32(completions.len() as u32);
        for (at, seq) in completions {
            w.put_u64(at);
            w.put_u64(seq);
        }
        let mut pending: Vec<(u64, u64)> = self.pending_mem.iter().map(|(&k, &v)| (k, v)).collect();
        pending.sort_unstable();
        w.put_u32(pending.len() as u32);
        for (token, seq) in pending {
            w.put_u64(token);
            w.put_u64(seq);
        }
        // mem_ready is drained with swap_remove, so its order is state.
        w.put_u32(self.mem_ready.len() as u32);
        for &(done, token) in &self.mem_ready {
            w.put_u64(done);
            w.put_u64(token);
        }
        w.put_u64(self.fetch_stall_until);
        w.put_u64(self.unresolved_branches as u64);
        match &self.peeked {
            Some(i) => {
                w.put_bool(true);
                i.encode(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.dispatched);
        self.stats.encode(w);
        let mut pred = critmem_common::codec::ByteWriter::new();
        self.predictor.save_state(&mut pred);
        w.put_bytes(&pred.into_bytes());
    }

    /// Overlays state captured by [`Core::save_state`] onto a freshly
    /// constructed core of the same configuration. When
    /// `load_predictor` is false the saved predictor block is
    /// discarded and the core keeps its fresh predictor — the hook the
    /// warm-start engine uses to swap predictor kinds at the
    /// checkpoint boundary.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    pub fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
        load_predictor: bool,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        self.rob.clear();
        for _ in 0..n {
            let instr = Instr::decode(r)?;
            let seq = r.get_u64()?;
            let issued = r.get_bool()?;
            let completed = r.get_bool()?;
            let waiting_mem = r.get_bool()?;
            let consumers = r.get_u32()?;
            let block_start = if r.get_bool()? {
                Some(r.get_u64()?)
            } else {
                None
            };
            let block_reported = r.get_bool()?;
            self.rob.push_back(RobEntry {
                instr,
                seq,
                issued,
                completed,
                waiting_mem,
                consumers,
                block_start,
                block_reported,
            });
        }
        self.base_seq = r.get_u64()?;
        self.next_seq = r.get_u64()?;
        self.lq_used = r.get_u64()? as usize;
        self.sq_used = r.get_u64()? as usize;
        let n = r.get_u32()? as usize;
        self.store_buffer.clear();
        for _ in 0..n {
            let addr = r.get_u64()?;
            let tag_at = r.position();
            let state = match r.get_u8()? {
                0 => StoreState::Waiting,
                1 => StoreState::Inflight(r.get_u64()?),
                t => {
                    return Err(critmem_common::codec::CodecError {
                        message: format!("unknown store-buffer state tag {t}"),
                        offset: tag_at,
                    })
                }
            };
            self.store_buffer.push_back((addr, state));
        }
        let n = r.get_u32()? as usize;
        self.completions = (0..n)
            .map(|_| Ok(Reverse((r.get_u64()?, r.get_u64()?))))
            .collect::<Result<_, critmem_common::codec::CodecError>>()?;
        let n = r.get_u32()? as usize;
        self.pending_mem = (0..n)
            .map(|_| Ok((r.get_u64()?, r.get_u64()?)))
            .collect::<Result<_, critmem_common::codec::CodecError>>()?;
        let n = r.get_u32()? as usize;
        self.mem_ready = (0..n)
            .map(|_| Ok((r.get_u64()?, r.get_u64()?)))
            .collect::<Result<_, critmem_common::codec::CodecError>>()?;
        self.fetch_stall_until = r.get_u64()?;
        self.unresolved_branches = r.get_u64()? as usize;
        self.peeked = if r.get_bool()? {
            Some(Instr::decode(r)?)
        } else {
            None
        };
        self.dispatched = r.get_u64()?;
        self.stats = CoreStats::decode(r)?;
        let pred = r.get_bytes()?;
        if load_predictor {
            let mut pr = critmem_common::codec::ByteReader::new(&pred);
            self.predictor.load_state(&mut pr)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, now: CpuCycle, source: &mut dyn InstrSource) {
        if now < self.fetch_stall_until {
            self.stats.redirect_stall_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.dispatched >= self.target + self.cfg.rob_entries as u64 {
                // Keep a little headroom past the target so the tail
                // commits at full width, then stop fetching.
                break;
            }
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let instr = match self.peeked.take() {
                Some(i) => i,
                None => source.next_instr(),
            };
            // Structural checks before consuming the instruction.
            match instr.kind {
                InstrKind::Load { .. } if self.lq_used >= self.cfg.lq_entries => {
                    self.stats.lq_full_cycles += 1;
                    self.peeked = Some(instr);
                    break;
                }
                InstrKind::Store { .. } if self.sq_used >= self.cfg.sq_entries => {
                    self.peeked = Some(instr);
                    break;
                }
                InstrKind::Branch { .. }
                    if self.unresolved_branches >= self.cfg.max_unresolved_branches =>
                {
                    self.peeked = Some(instr);
                    break;
                }
                _ => {}
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.dispatched += 1;
            match instr.kind {
                InstrKind::Load { .. } => self.lq_used += 1,
                InstrKind::Store { .. } => self.sq_used += 1,
                InstrKind::Branch { .. } => self.unresolved_branches += 1,
                _ => {}
            }
            // Consumer counting for the CLPT: bump each load producer.
            for dist in [instr.src1, instr.src2].into_iter().flatten() {
                if let Some(pseq) = seq.checked_sub(u64::from(dist)) {
                    if let Some(p) = self.entry_mut(pseq) {
                        if p.instr.kind.is_load() {
                            p.consumers += 1;
                        }
                    }
                }
            }
            self.rob.push_back(RobEntry {
                instr,
                seq,
                issued: false,
                completed: false,
                waiting_mem: false,
                consumers: 0,
                block_start: None,
                block_reported: false,
            });
        }
        let _ = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::NoPredictor;
    use critmem_cache::HierarchyConfig;

    /// A tiny scripted instruction source.
    struct Script {
        instrs: Vec<Instr>,
        pos: usize,
    }

    impl Script {
        fn new(instrs: Vec<Instr>) -> Self {
            Script { instrs, pos: 0 }
        }
    }

    impl InstrSource for Script {
        fn next_instr(&mut self) -> Instr {
            let i = self.instrs[self.pos % self.instrs.len()];
            self.pos += 1;
            i
        }
    }

    fn run_core(instrs: Vec<Instr>, target: u64, max_cycles: u64) -> (Core, CacheHierarchy, u64) {
        let mut core = Core::new(
            CoreId(0),
            CoreConfig::paper_baseline(),
            Box::new(NoPredictor),
            target,
        );
        let mut mem = CacheHierarchy::new(HierarchyConfig::paper_baseline(1));
        let mut src = Script::new(instrs);
        let mut now = 0;
        while !core.done() && now < max_cycles {
            now += 1;
            core.step(now, &mut src, &mut mem);
            // Service DRAM with a fixed 100-cycle latency.
            while let Some(req) = mem.pop_request(now) {
                if req.kind != critmem_common::AccessKind::Write {
                    for c in mem.dram_completed(&req, now + 100) {
                        core.mem_completed(c.token.0, c.done);
                    }
                }
            }
        }
        (core, mem, now)
    }

    #[test]
    fn alu_stream_achieves_high_ipc() {
        let instrs = vec![
            Instr::new(0x0, InstrKind::IntAlu),
            Instr::new(0x4, InstrKind::FpAlu),
        ];
        let (core, _, cycles) = run_core(instrs, 4_000, 100_000);
        assert!(core.done());
        let ipc = core.stats().committed as f64 / cycles as f64;
        assert!(
            ipc > 1.5,
            "independent ALU mix should exceed IPC 1.5, got {ipc:.2}"
        );
    }

    #[test]
    fn serial_dependency_chain_limits_ipc() {
        // Every instruction depends on the previous one.
        let instrs = vec![Instr::new(0x0, InstrKind::IntAlu).with_deps(Some(1), None)];
        let (core, _, cycles) = run_core(instrs, 2_000, 100_000);
        assert!(core.done());
        let ipc = core.stats().committed as f64 / cycles as f64;
        assert!(
            ipc < 1.2,
            "serial chain should cap IPC near 1, got {ipc:.2}"
        );
    }

    #[test]
    fn missing_load_blocks_rob_head() {
        // Loads at unique addresses (always missing to DRAM) separated
        // by a few ALU ops.
        let instrs = vec![
            Instr::new(0x0, InstrKind::Load { addr: 0 }),
            Instr::new(0x4, InstrKind::IntAlu),
            Instr::new(0x8, InstrKind::IntAlu),
        ];
        // Every iteration reuses addr 0 after the first fill, so make
        // each load unique via a stride-happy script.
        let mut script = Vec::new();
        for i in 0..64u64 {
            script.push(Instr::new(0x0, InstrKind::Load { addr: i * 8192 }));
            script.push(Instr::new(0x4, InstrKind::IntAlu));
        }
        let _ = instrs;
        let (core, _, _) = run_core(script, 128, 1_000_000);
        assert!(core.done());
        assert!(
            core.stats().blocked_loads > 0,
            "DRAM-bound loads must block the head"
        );
        assert!(core.stats().block_cycles > 0);
    }

    #[test]
    fn mispredicted_branches_slow_execution() {
        let good = vec![
            Instr::new(0x0, InstrKind::IntAlu),
            Instr::new(0x4, InstrKind::Branch { mispredict: false }),
        ];
        let bad = vec![
            Instr::new(0x0, InstrKind::IntAlu),
            Instr::new(0x4, InstrKind::Branch { mispredict: true }),
        ];
        let (_, _, cycles_good) = run_core(good, 2_000, 1_000_000);
        let (core_bad, _, cycles_bad) = run_core(bad, 2_000, 1_000_000);
        assert!(core_bad.stats().redirect_stall_cycles > 0);
        assert!(
            cycles_bad > cycles_good * 2,
            "all-mispredict run should be much slower ({cycles_bad} vs {cycles_good})"
        );
    }

    #[test]
    fn stores_retire_through_store_buffer() {
        let instrs = vec![
            Instr::new(0x0, InstrKind::Store { addr: 64 }),
            Instr::new(0x4, InstrKind::IntAlu),
        ];
        let (core, mem, _) = run_core(instrs, 1_000, 1_000_000);
        assert!(core.done());
        assert_eq!(core.stats().stores, 500);
        // The store line was fetched exclusive and written.
        assert!(mem.stats().l2_accesses > 0);
    }

    #[test]
    fn load_queue_fills_under_memory_pressure() {
        // A flood of independent missing loads.
        let mut script = Vec::new();
        for i in 0..256u64 {
            script.push(Instr::new((i % 64) * 4, InstrKind::Load { addr: i * 4096 }));
        }
        let (core, _, _) = run_core(script, 256, 2_000_000);
        assert!(core.done());
        assert!(
            core.stats().lq_full_cycles > 0,
            "LQ should fill under miss pressure"
        );
    }

    #[test]
    fn consumer_counts_reach_predictor() {
        // Load followed by three consumers of it.
        struct Probe {
            max_consumers: std::rc::Rc<std::cell::Cell<u32>>,
        }
        impl LoadCriticalityPredictor for Probe {
            fn predict(&mut self, _pc: Pc) -> Criticality {
                Criticality::non_critical()
            }
            fn on_block_commit(&mut self, _pc: Pc, _stall: u64) {}
            fn on_load_commit(&mut self, _pc: Pc, consumers: u32) {
                self.max_consumers
                    .set(self.max_consumers.get().max(consumers));
            }
            fn tick(&mut self, _now: CpuCycle) {}
            fn name(&self) -> &'static str {
                "probe"
            }
        }
        let seen = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut core = Core::new(
            CoreId(0),
            CoreConfig::paper_baseline(),
            Box::new(Probe {
                max_consumers: seen.clone(),
            }),
            40,
        );
        let mut mem = CacheHierarchy::new(HierarchyConfig::paper_baseline(1));
        let mut src = Script::new(vec![
            Instr::new(0x0, InstrKind::Load { addr: 64 }),
            Instr::new(0x4, InstrKind::IntAlu).with_deps(Some(1), None),
            Instr::new(0x8, InstrKind::IntAlu).with_deps(Some(2), None),
            Instr::new(0xc, InstrKind::IntAlu).with_deps(Some(3), None),
        ]);
        let mut now = 0;
        while !core.done() && now < 100_000 {
            now += 1;
            core.step(now, &mut src, &mut mem);
            while let Some(req) = mem.pop_request(now) {
                if req.kind != critmem_common::AccessKind::Write {
                    for c in mem.dram_completed(&req, now + 50) {
                        core.mem_completed(c.token.0, c.done);
                    }
                }
            }
        }
        assert!(core.done());
        assert_eq!(seen.get(), 3, "the load has exactly three direct consumers");
    }

    #[test]
    fn done_stops_at_target() {
        let instrs = vec![Instr::new(0x0, InstrKind::IntAlu)];
        let (core, _, _) = run_core(instrs, 123, 100_000);
        assert!(core.done());
        assert!(core.stats().committed >= 123);
    }
}
