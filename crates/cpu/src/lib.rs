//! Cycle-level out-of-order core model for the `critmem` simulator.
//!
//! One [`Core`] implements the Table 1 microarchitecture of the ISCA
//! 2013 paper being reproduced: 4-wide fetch/issue/commit, a 128-entry
//! ROB, 32-entry load/store queues, per-class functional units, and —
//! the part the paper hinges on — commit-stage detection of loads that
//! block the ROB head, feeding a pluggable
//! [`LoadCriticalityPredictor`] (CBP, CLPT, or none).
//!
//! # Examples
//!
//! ```
//! use critmem_cpu::{Core, CoreConfig, Instr, InstrKind, InstrSource, NoPredictor};
//! use critmem_cache::{CacheHierarchy, HierarchyConfig};
//! use critmem_common::CoreId;
//!
//! struct Nops;
//! impl InstrSource for Nops {
//!     fn next_instr(&mut self) -> Instr {
//!         Instr::new(0x40, InstrKind::IntAlu)
//!     }
//! }
//!
//! let mut core = Core::new(CoreId(0), CoreConfig::paper_baseline(),
//!                          Box::new(NoPredictor), 100);
//! let mut mem = CacheHierarchy::new(HierarchyConfig::paper_baseline(1));
//! let mut src = Nops;
//! let mut cycle = 0;
//! while !core.done() {
//!     cycle += 1;
//!     core.step(cycle, &mut src, &mut mem);
//! }
//! assert!(core.stats().committed >= 100);
//! ```

pub mod agent;
pub mod config;
pub mod core;
pub mod instr;
pub mod predictor;

pub use crate::core::{BlockStart, Core, CoreStats, InstrSource, StepEvents, LONG_BLOCK_CYCLES};
pub use agent::{AgentClass, AgentStats, MemoryAgent, AGENT_REQ_BASE, AGENT_REQ_STRIDE};
pub use config::CoreConfig;
pub use instr::{Instr, InstrKind};
pub use predictor::{CbpPredictor, ClptPredictor, LoadCriticalityPredictor, NoPredictor};
