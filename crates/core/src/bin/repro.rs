//! `repro` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! repro [--scale quick|standard|full] [experiments...]
//!
//! experiments: config fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!              fig11 fig12 table5 table7 naive reset all   (default: all)
//! ```

use critmem::experiments::{
    self, config_dump, fig1, fig10, fig11, fig12, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
    naive, reset_study, table5, table7, Runner, Scale,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale quick|standard|full] [experiments...]\n\
         experiments: config fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 \
         table5 table7 naive reset all"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = Scale::standard();
    let mut selected: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("quick") => scale = Scale::quick(),
                Some("standard") => scale = Scale::standard(),
                Some("full") => scale = Scale::full(),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    let all = selected.iter().any(|s| s == "all");
    let want = |name: &str| all || selected.iter().any(|s| s == name);

    let mut r = Runner::new(scale);
    r.verbose = true;
    println!("critmem repro — ISCA 2013 criticality-aware memory scheduling");
    println!(
        "scale: {} instructions/core, apps: {:?}",
        r.scale.instructions, r.scale.apps
    );

    if want("config") {
        println!("{}", config_dump());
    }
    if want("fig1") {
        println!("{}", fig1(&mut r).to_table());
    }
    if want("fig3") {
        let (a, b) = fig3(&mut r);
        println!("{}", a.to_table());
        println!("{}", b.to_table());
    }
    if want("fig4") {
        println!("{}", fig4(&mut r).to_table());
    }
    if want("fig5") {
        println!("{}", fig5(&mut r).to_table());
    }
    if want("fig6") {
        println!("{}", fig6(&mut r).to_table());
    }
    if want("fig7") {
        println!("{}", fig7(&mut r).to_table());
    }
    if want("fig8") {
        println!("{}", fig8(&mut r).to_table());
    }
    if want("fig9") {
        println!("{}", fig9(&mut r).to_table());
    }
    if want("fig10") {
        println!("{}", fig10(&mut r).to_table());
    }
    if want("fig11") {
        println!("{}", fig11(&mut r).to_table());
    }
    if want("fig12") {
        let f = fig12(&mut r);
        println!("{}", f.to_table());
        println!(
            "max slowdown: TCM {:.3}, MaxStallTime {:.3} ({:+.1}% change)",
            f.max_slowdown_tcm,
            f.max_slowdown_crit,
            (f.max_slowdown_crit / f.max_slowdown_tcm - 1.0) * 100.0
        );
    }
    if want("table5") {
        println!("{}", table5(&mut r).to_table());
    }
    if want("table7") {
        println!("{}", table7(&mut r).to_table());
    }
    if want("naive") {
        println!("{}", naive(&mut r).to_table());
    }
    if want("reset") {
        println!("{}", reset_study(&mut r).to_table());
    }
    let _ = &experiments::TextTable::pct(1.0);
    eprintln!("\n{} distinct simulations executed", r.runs_executed());
}
