//! `repro` — regenerates every table and figure of the paper's
//! evaluation section, and manages request traces for scheduler-only
//! studies.
//!
//! ```text
//! repro [--scale quick|standard|full] [--warm-cycles N] [experiments...]
//! repro trace capture <app> <file> [--scale ...]
//! repro trace replay <file> --sched <name> [--max-outstanding N]
//! repro trace stream <file> [--sched <name>] [--max-outstanding N]
//!                    [--epoch N] [--window W]
//! repro trace profile <in.cmtr> <out.cmpf>
//! repro trace synth <profile.cmpf> --requests N [--seed S] [--sched <name>]
//!                   [--max-outstanding N] [--epoch N] [--window W]
//! repro trace sweep [app] [--scale ...]
//! repro stats [apps...] [--sched <name>] [--pred <metric>]
//!             [--epoch N] [--format jsonl|csv] [--out <file>]
//! repro fairness [bundles...] [--format jsonl|csv] [--out <file>]
//! repro hetero [mixes...] [--format jsonl|csv] [--out <file>]
//! repro checkpoint save <app> <file> [--cycles N] [--scale ...]
//! repro checkpoint restore <file> <app> [--sched <name>] [--pred <metric>]
//! repro checkpoint sweep [app] [--cycles N] [--scale ...] [--jobs N]
//! repro audit                       certification: every scheduler audited
//! repro audit campaign              fault-injection detection-coverage table
//! repro audit inject <spec>         inject one fault, exit with its class code
//!
//! experiments: config fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!              fig11 fig12 table5 table7 naive reset tracesweep all
//!              (default: all)
//! ```

use critmem::config::PredictorKind;
use critmem::experiments::{
    self, config_dump, fairness_frontier, fig1, fig10, fig11, fig12, fig3, fig4, fig5, fig6, fig7,
    fig8, fig9, hetero_study, naive, reset_study, stats_export, stream_replay, synth_replay,
    table5, table7, trace_sweep, Runner, Scale,
};
use critmem::journal::SweepJournal;
use critmem::{AgentMix, Checkpoint, Session, SystemConfig};
use critmem_common::SimError;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;
use critmem_trace::{ReplayConfig, Trace, TraceReplayer, TrafficProfile};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale quick|standard|full] [--jobs N] [--journal <file> [--resume]]\n\
         \x20            [--warm-cycles N] [--shards N] [--no-skip-ahead] [experiments...]\n\
         \x20      repro trace capture <app> <file> [--scale ...]\n\
         \x20      repro trace replay <file> --sched <name> [--max-outstanding N]\n\
         \x20      repro trace stream <file> [--sched <name>] [--max-outstanding N] [--epoch N] [--window W]\n\
         \x20      repro trace profile <in.cmtr> <out.cmpf>\n\
         \x20      repro trace synth <profile.cmpf> --requests N [--seed S] [--sched <name>]\n\
         \x20                        [--max-outstanding N] [--epoch N] [--window W]\n\
         \x20      repro trace sweep [app] [--scale ...] [--jobs N]\n\
         \x20      repro stats [apps...] [--sched <name>] [--pred <metric>|none] [--epoch N]\n\
         \x20                  [--format jsonl|csv] [--out <file>] [--scale ...] [--jobs N]\n\
         \x20      repro fairness [bundles...] [--format jsonl|csv] [--out <file>]\n\
         \x20                     [--scale ...] [--jobs N] [--shards N]\n\
         \x20      repro hetero [mixes...] [--format jsonl|csv] [--out <file>]\n\
         \x20                   [--scale ...] [--jobs N] [--shards N]\n\
         \x20                   (a mix is agent-grammar, e.g. ooo:mcf*2+stream:2@1.5;\n\
         \x20                    default: the three standard hetero mixes)\n\
         \x20      repro checkpoint save <app> <file> [--cycles N] [--scale ...]\n\
         \x20      repro checkpoint restore <file> <app> [--sched <name>] [--pred <metric>|none]\n\
         \x20      repro checkpoint sweep [app] [--cycles N] [--scale ...] [--jobs N]\n\
         \x20      repro audit                       (certify auditors silent + byte-identical)\n\
         \x20      repro audit campaign              (inject every fault, require detection)\n\
         \x20      repro audit inject <spec>         (one fault, e.g. corrupt-sched@ch0,c5000)\n\
         experiments: config fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 \
         table5 table7 naive reset tracesweep all\n\
         --jobs N: simulation worker threads (default: available cores; 1 = serial)\n\
         --shards N: worker threads per simulation's DRAM tick (default 1; results are\n\
         \x20           byte-identical at any value — this only changes wall clock)\n\
         --no-skip-ahead: disable event-driven clock skip-ahead (same results, slower)\n\
         --audit: attach the independent protocol/conservation auditors to every run\n\
         \x20        (results stay byte-identical; violations exit 4)\n\
         --journal <file>: record completed cells for crash recovery\n\
         --resume: reload a journal's completed cells, re-running only the missing ones\n\
         --warm-cycles N: share one baseline warmup checkpoint (snapshotted at cycle N)\n\
         \x20                across every non-sampling sweep cell\n\
         exit codes: 0 ok, 2 configuration error, 3 watchdog (livelocked run),\n\
         \x20           4 audit violation, 1 other failure"
    );
    std::process::exit(2);
}

/// Prints a typed error and exits with its class's code (2 config,
/// 3 watchdog, 1 otherwise).
fn fail(err: SimError) -> ! {
    eprintln!("error: {err}");
    std::process::exit(err.exit_code());
}

/// The engine-level knobs shared by every subcommand: sweep-level
/// worker threads, per-simulation DRAM-tick shards, and skip-ahead.
/// None of them change results; all of them change wall clock.
#[derive(Clone, Copy)]
struct EngineKnobs {
    jobs: usize,
    shards: usize,
    skip_ahead: bool,
    audit: bool,
}

impl EngineKnobs {
    fn apply(self, r: &mut Runner) {
        r.jobs = self.jobs;
        r.shards = self.shards;
        r.skip_ahead = self.skip_ahead;
        r.audit = self.audit;
    }
}

/// Leaks an app name into the `&'static str` the workload tables use,
/// after validating it against the known app lists.
fn static_app(name: &str) -> &'static str {
    critmem_workloads::PARALLEL_APPS
        .iter()
        .find(|a| **a == name)
        .copied()
        .unwrap_or_else(|| {
            eprintln!(
                "unknown parallel app {name:?} (expected one of {:?})",
                critmem_workloads::PARALLEL_APPS
            );
            std::process::exit(2);
        })
}

fn trace_main(args: Vec<String>, scale: Scale, knobs: EngineKnobs) -> ! {
    let mut r = Runner::new(scale);
    r.verbose = true;
    knobs.apply(&mut r);
    match args.first().map(String::as_str) {
        Some("capture") => {
            let [_, app, file] = args.as_slice() else {
                usage()
            };
            let app = static_app(app);
            let trace = r.capture(app);
            trace.save(std::path::Path::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot write {file}: {e}");
                std::process::exit(1);
            });
            println!(
                "captured {} requests from {app} ({} instr/core) -> {file}",
                trace.records.len(),
                r.scale.instructions
            );
            std::process::exit(0);
        }
        Some("replay") => {
            let mut file = None;
            let mut sched = SchedulerKind::FrFcfs;
            let mut replay_cfg = ReplayConfig::default().with_audit(knobs.audit);
            let mut it = args.into_iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--sched" => match it.next() {
                        Some(s) => sched = s.parse().unwrap_or_else(|e| fail(e)),
                        None => usage(),
                    },
                    "--max-outstanding" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(n) => replay_cfg = replay_cfg.with_max_outstanding(n),
                        None => usage(),
                    },
                    f if file.is_none() => file = Some(f.to_string()),
                    _ => usage(),
                }
            }
            let Some(file) = file else { usage() };
            let trace = Trace::load(std::path::Path::new(&file)).unwrap_or_else(|e| {
                eprintln!("cannot read {file}: {e}");
                std::process::exit(1);
            });
            let dram_cfg = trace.fingerprint.dram_config().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            let threads = trace.fingerprint.cores as usize;
            let dram =
                critmem_dram::DramSystem::new(dram_cfg, |ch| sched.build(threads, u64::from(ch.0)));
            let replayer = TraceReplayer::new(trace, dram, replay_cfg).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            let stats = replayer.try_run().unwrap_or_else(|e| fail(e));
            println!(
                "replayed {} requests under {} in {} CPU cycles",
                stats.completed,
                sched.name(),
                stats.cpu_cycles
            );
            print_replay_summary(&stats);
            std::process::exit(0);
        }
        Some("stream") => {
            let (file, sched, replay_cfg, _, _) = parse_replay_flags(args.into_iter().skip(1));
            let replay_cfg = replay_cfg.with_audit(knobs.audit);
            let Some(file) = file else { usage() };
            let out = stream_replay(std::path::Path::new(&file), sched, replay_cfg)
                .unwrap_or_else(|e| fail(e));
            println!(
                "streamed {} requests ({} chunks) under {} in {} CPU cycles",
                out.records_read,
                out.chunks_read,
                sched.name(),
                out.stats.cpu_cycles
            );
            println!(
                "  {:.0} requests/sec wall, peak resident chunk memory {} B (cap {} B)",
                out.records_read as f64 / out.seconds.max(1e-9),
                out.peak_resident_bytes,
                critmem_trace::CHUNK_BYTES
            );
            print_replay_summary(&out.stats);
            std::process::exit(0);
        }
        Some("profile") => {
            let [_, input, output] = args.as_slice() else {
                usage()
            };
            let trace = Trace::load(std::path::Path::new(input)).unwrap_or_else(|e| {
                eprintln!("cannot read {input}: {e}");
                std::process::exit(1);
            });
            let profile = TrafficProfile::fit(&trace)
                .unwrap_or_else(|e| fail(SimError::Trace(e.to_string())));
            profile
                .save(std::path::Path::new(output))
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {output}: {e}");
                    std::process::exit(1);
                });
            let active = profile.cores.iter().filter(|c| c.weight > 0.0).count();
            println!(
                "fitted {:?} profile from {} records: mean gap {:.1} cy, {active}/{} active cores -> {output}",
                profile.source,
                profile.records_fitted,
                profile.mean_gap,
                profile.cores.len()
            );
            std::process::exit(0);
        }
        Some("synth") => {
            let mut requests = None;
            let mut seed = 42u64;
            let (file, sched, replay_cfg, req_flag, seed_flag) =
                parse_replay_flags(args.into_iter().skip(1));
            let replay_cfg = replay_cfg.with_audit(knobs.audit);
            if let Some(n) = req_flag {
                requests = Some(n);
            }
            if let Some(s) = seed_flag {
                seed = s;
            }
            let (Some(file), Some(requests)) = (file, requests) else {
                usage()
            };
            let profile = TrafficProfile::load(std::path::Path::new(&file))
                .unwrap_or_else(|e| fail(SimError::Trace(e.to_string())));
            let out = synth_replay(&profile, seed, requests, sched, replay_cfg)
                .unwrap_or_else(|e| fail(e));
            println!(
                "synthesized {} requests (profile {:?}, seed {seed}) under {} in {} CPU cycles",
                out.generated,
                profile.source,
                sched.name(),
                out.stats.cpu_cycles
            );
            println!(
                "  {:.0} requests/sec wall ({:.1} s)",
                out.generated as f64 / out.seconds.max(1e-9),
                out.seconds
            );
            print_replay_summary(&out.stats);
            std::process::exit(0);
        }
        Some("sweep") => {
            let app = static_app(args.get(1).map(String::as_str).unwrap_or("swim"));
            let sweep = trace_sweep(&mut r, app);
            println!("{}", sweep.to_table());
            println!("{}", sweep.timing_summary());
            std::process::exit(0);
        }
        _ => usage(),
    }
}

/// Parses the flag set shared by `trace stream` and `trace synth`:
/// returns (file, scheduler, replay config, --requests, --seed).
fn parse_replay_flags(
    it: impl Iterator<Item = String>,
) -> (
    Option<String>,
    SchedulerKind,
    ReplayConfig,
    Option<u64>,
    Option<u64>,
) {
    let mut file = None;
    let mut sched = SchedulerKind::FrFcfs;
    let mut cfg = ReplayConfig::default();
    let mut requests = None;
    let mut seed = None;
    let mut it = it.peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sched" => match it.next() {
                Some(s) => sched = s.parse().unwrap_or_else(|e| fail(e)),
                None => usage(),
            },
            "--max-outstanding" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg = cfg.with_max_outstanding(n),
                None => usage(),
            },
            "--epoch" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg = cfg.with_sampling(n),
                None => usage(),
            },
            "--window" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg = cfg.with_sample_window(n),
                None => usage(),
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => requests = Some(n),
                None => usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = Some(n),
                None => usage(),
            },
            f if file.is_none() => file = Some(f.to_string()),
            _ => usage(),
        }
    }
    (file, sched, cfg, requests, seed)
}

/// The latency/row-locality lines shared by every replay-flavored
/// subcommand.
fn print_replay_summary(stats: &critmem_trace::ReplayStats) {
    println!(
        "  mean read latency {:.0} cy, critical {:.0} cy ({} critical reads)",
        stats.mean_read_latency(),
        stats.mean_critical_read_latency(),
        stats.critical_reads
    );
    let hits = stats.row_hits();
    let total: u64 = stats
        .channels
        .iter()
        .map(|c| c.row_hits + c.row_misses + c.row_conflicts)
        .sum();
    println!(
        "  row hits {hits}/{total} ({:.1}%), throttle stalls {}, queue-full retries {}",
        100.0 * hits as f64 / total.max(1) as f64,
        stats.throttled_cycles,
        stats.queue_full_retries
    );
    if let Some(series) = &stats.series {
        println!(
            "  sampled series: {} rows x {} metrics (windowed online stats)",
            series.len(),
            series.schema().len()
        );
    }
}

/// The platform every checkpoint subcommand builds: the same base
/// configuration the figure sweeps use at this scale, so checkpoints
/// written here restore onto sweep cells.
fn checkpoint_cfg(scale: &Scale, knobs: EngineKnobs) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(scale.instructions);
    cfg.max_cycles = scale.instructions.saturating_mul(20_000).max(1_000_000_000);
    cfg.shards = knobs.shards;
    cfg.skip_ahead = knobs.skip_ahead;
    cfg.audit = knobs.audit;
    cfg
}

/// The warm-start table: one shared warmup, every scheduler fanned out
/// from it (driven twice by [`Runner::run_parallel`]: plan + execute).
fn checkpoint_sweep_table(r: &mut Runner, app: &'static str) -> experiments::TextTable {
    let base = r.baseline(app);
    let mut t = experiments::TextTable::new(
        format!("Warm-started scheduler sweep — {app}"),
        &["cycles", "speedup vs FR-FCFS"],
    );
    t.row(
        SchedulerKind::FrFcfs.name(),
        vec![
            format!("{}", base.cycles),
            experiments::TextTable::ratio(1.0),
        ],
    );
    for sched in [SchedulerKind::CritCasRas, SchedulerKind::CasRasCrit] {
        let stats = r.parallel(app, sched, PredictorKind::cbp64(CbpMetric::MaxStallTime));
        t.row(
            sched.name(),
            vec![
                format!("{}", stats.cycles),
                experiments::TextTable::ratio(critmem::speedup(&base, &stats)),
            ],
        );
    }
    t
}

fn checkpoint_main(args: Vec<String>, scale: Scale, knobs: EngineKnobs) -> ! {
    match args.first().map(String::as_str) {
        Some("save") => {
            let mut app = None;
            let mut file = None;
            let mut cycles = 20_000u64;
            let mut it = args.into_iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--cycles" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n > 0 => cycles = n,
                        _ => usage(),
                    },
                    v if app.is_none() => app = Some(static_app(v)),
                    v if file.is_none() => file = Some(v.to_string()),
                    _ => usage(),
                }
            }
            let (Some(app), Some(file)) = (app, file) else {
                usage()
            };
            let ckpt = Session::new(checkpoint_cfg(&scale, knobs), &AgentMix::Parallel(app))
                .checkpoint_at(cycles)
                .run_to_checkpoint()
                .unwrap_or_else(|e| fail(e));
            ckpt.save(std::path::Path::new(&file))
                .unwrap_or_else(|e| fail(e));
            println!(
                "checkpointed {app} at cycle {} ({} state bytes, {} instr/core target) -> {file}",
                ckpt.cycle(),
                ckpt.state_len(),
                scale.instructions
            );
            std::process::exit(0);
        }
        Some("restore") => {
            let mut file = None;
            let mut app = None;
            let mut sched = SchedulerKind::FrFcfs;
            let mut pred = PredictorKind::None;
            let mut it = args.into_iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--sched" => match it.next() {
                        Some(s) => sched = s.parse().unwrap_or_else(|e| fail(e)),
                        None => usage(),
                    },
                    "--pred" => match it.next() {
                        Some(s) => pred = s.parse().unwrap_or_else(|e| fail(e)),
                        None => usage(),
                    },
                    v if file.is_none() => file = Some(v.to_string()),
                    v if app.is_none() => app = Some(static_app(v)),
                    _ => usage(),
                }
            }
            let (Some(file), Some(app)) = (file, app) else {
                usage()
            };
            let ckpt = Checkpoint::load(std::path::Path::new(&file)).unwrap_or_else(|e| fail(e));
            let cfg = checkpoint_cfg(&scale, knobs)
                .with_scheduler(sched)
                .with_predictor(pred);
            let out = Session::from_checkpoint(&ckpt, cfg, &AgentMix::Parallel(app))
                .run()
                .unwrap_or_else(|e| fail(e));
            let mean_ipc: f64 = (0..out.stats.cores.len())
                .map(|c| out.stats.ipc(c))
                .sum::<f64>()
                / out.stats.cores.len().max(1) as f64;
            println!(
                "warm-started {app} from cycle {} under {} / {}: finished at cycle {} \
                 (mean IPC {mean_ipc:.3})",
                ckpt.cycle(),
                sched.name(),
                pred.name(),
                out.stats.cycles
            );
            std::process::exit(0);
        }
        Some("sweep") => {
            let mut app = "swim";
            let mut cycles = 20_000u64;
            let mut it = args.into_iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--cycles" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n > 0 => cycles = n,
                        _ => usage(),
                    },
                    v => app = static_app(v),
                }
            }
            let mut r = Runner::new(scale);
            r.verbose = true;
            knobs.apply(&mut r);
            r.warm_cycles = Some(cycles);
            let table = r.run_parallel(|r| checkpoint_sweep_table(r, app));
            println!("{table}");
            eprintln!(
                "{} distinct simulations executed (shared warmup at cycle {cycles})",
                r.runs_executed()
            );
            std::process::exit(0);
        }
        _ => usage(),
    }
}

fn stats_main(args: Vec<String>, scale: Scale, knobs: EngineKnobs) -> ! {
    let mut apps: Vec<&'static str> = Vec::new();
    let mut sched = SchedulerKind::CasRasCrit;
    let mut pred = PredictorKind::cbp64(CbpMetric::MaxStallTime);
    let mut epoch = 10_000u64;
    let mut format = "jsonl".to_string();
    let mut out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sched" => match it.next() {
                Some(s) => sched = s.parse().unwrap_or_else(|e| fail(e)),
                None => usage(),
            },
            "--pred" => match it.next() {
                Some(s) => pred = s.parse().unwrap_or_else(|e| fail(e)),
                None => usage(),
            },
            "--epoch" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => epoch = n,
                _ => usage(),
            },
            "--format" => match it.next().as_deref() {
                Some(f @ ("jsonl" | "csv")) => format = f.to_string(),
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f),
                None => usage(),
            },
            app => apps.push(static_app(app)),
        }
    }
    if apps.is_empty() {
        apps = scale.apps.clone();
    }
    let mut r = Runner::new(scale);
    r.verbose = true;
    knobs.apply(&mut r);
    let export = stats_export(&mut r, &apps, sched, pred, epoch);
    let text = match format.as_str() {
        "csv" => export.to_csv(),
        _ => export.to_jsonl(),
    };
    match out {
        Some(file) => {
            std::fs::write(&file, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {file}: {e}");
                std::process::exit(1);
            });
            let samples: usize = export.runs.iter().map(|r| r.series.len()).sum();
            eprintln!(
                "wrote {} runs, {samples} samples, {} metrics/sample -> {file}",
                export.runs.len(),
                export.runs.first().map_or(0, |r| r.series.schema().len())
            );
        }
        None => print!("{text}"),
    }
    std::process::exit(0);
}

/// Validates a bundle name against the Table 4 bundle list, returning
/// its `&'static str` form.
fn static_bundle(name: &str) -> &'static str {
    critmem_workloads::BUNDLES
        .iter()
        .find(|b| b.name == name)
        .map(|b| b.name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = critmem_workloads::BUNDLES.iter().map(|b| b.name).collect();
            eprintln!("unknown bundle {name:?} (expected one of {known:?})");
            std::process::exit(2);
        })
}

fn fairness_main(args: Vec<String>, mut scale: Scale, knobs: EngineKnobs) -> ! {
    let mut bundles: Vec<&'static str> = Vec::new();
    let mut format = "jsonl".to_string();
    let mut out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some(f @ ("jsonl" | "csv")) => format = f.to_string(),
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f),
                None => usage(),
            },
            b => bundles.push(static_bundle(b)),
        }
    }
    if !bundles.is_empty() {
        scale.bundles = bundles;
    }
    let mut r = Runner::new(scale);
    r.verbose = true;
    knobs.apply(&mut r);
    let frontier = fairness_frontier(&mut r);
    println!("{}", frontier.to_table());
    let export = frontier.to_export();
    let text = match format.as_str() {
        "csv" => export.to_csv(),
        _ => export.to_jsonl(),
    };
    match out {
        Some(file) => {
            std::fs::write(&file, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {file}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} schedulers x {} bundles -> {file}",
                export.runs.len(),
                frontier.bundles.len()
            );
        }
        None => print!("{text}"),
    }
    eprintln!("{} distinct simulations executed", r.runs_executed());
    std::process::exit(0);
}

fn hetero_main(args: Vec<String>, scale: Scale, knobs: EngineKnobs) -> ! {
    let mut mixes: Vec<(String, AgentMix)> = Vec::new();
    let mut format = "jsonl".to_string();
    let mut out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some(f @ ("jsonl" | "csv")) => format = f.to_string(),
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f),
                None => usage(),
            },
            spec => {
                // Grammar parse errors surface as typed
                // SimError::UnknownWorkload (exit code 2).
                let mix: AgentMix = spec.parse().unwrap_or_else(|e| fail(e));
                mixes.push((mix.to_string(), mix));
            }
        }
    }
    if mixes.is_empty() {
        mixes = experiments::default_mixes()
            .into_iter()
            .map(|s| {
                let mix: AgentMix = s.parse().expect("default mixes parse");
                (mix.to_string(), mix)
            })
            .collect();
    }
    let mut r = Runner::new(scale);
    r.verbose = true;
    knobs.apply(&mut r);
    let study = hetero_study(&mut r, &mixes);
    println!("{}", study.to_table());
    let export = study.to_export();
    let text = match format.as_str() {
        "csv" => export.to_csv(),
        _ => export.to_jsonl(),
    };
    match out {
        Some(file) => {
            std::fs::write(&file, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {file}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} schedulers x {} mixes -> {file}",
                export.runs.len(),
                study.mixes.len()
            );
        }
        None => print!("{text}"),
    }
    eprintln!("{} distinct simulations executed", r.runs_executed());
    if r.has_failures() {
        for f in r.failures() {
            eprintln!("{}: {}", f.key, f.error);
        }
        let code = r
            .failures()
            .iter()
            .map(|f| f.error.exit_code())
            .max()
            .unwrap_or(1);
        std::process::exit(code);
    }
    std::process::exit(0);
}

/// `repro audit [campaign | inject <spec>]`: certification by
/// default, the fault-injection matrix with `campaign`, one targeted
/// fault with `inject`.
fn audit_main(args: Vec<String>) -> ! {
    match args.first().map(String::as_str) {
        None => {
            let cert = experiments::certify();
            println!("{}", cert.to_table());
            if cert.all_clean() {
                println!("all schedulers certified: zero violations, statistics byte-identical");
                std::process::exit(0);
            }
            eprintln!("certification FAILED: auditing perturbed a run or raised a violation");
            std::process::exit(1);
        }
        Some("campaign") => {
            let report = experiments::campaign();
            println!("{}", report.to_table());
            if report.all_detected() {
                println!(
                    "{}/{} faults detected (zero silent outcomes)",
                    report.rows.len(),
                    report.rows.len()
                );
                std::process::exit(0);
            }
            let silent = report
                .rows
                .iter()
                .filter(|r| r.detection == experiments::Detection::Silent)
                .count();
            eprintln!("campaign FAILED: {silent} fault(s) were silently absorbed");
            std::process::exit(1);
        }
        Some("inject") => {
            let Some(spec) = args.get(1) else { usage() };
            let row = experiments::inject(spec).unwrap_or_else(|e| fail(e));
            match row.detection {
                experiments::Detection::Silent => {
                    eprintln!("fault {} was NOT detected", row.spec);
                    std::process::exit(1);
                }
                d => {
                    println!(
                        "fault {} detected as {}: {}",
                        row.spec,
                        d.label(),
                        row.detail
                    );
                    std::process::exit(row.exit_code);
                }
            }
        }
        _ => usage(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = Scale::standard();
    let mut jobs = critmem::pool::default_jobs();
    let mut shards = 1usize;
    let mut skip_ahead = true;
    let mut audit = false;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut warm_cycles: Option<u64> = None;
    let mut selected: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--warm-cycles" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => warm_cycles = Some(n),
                _ => usage(),
            },
            "--scale" => match args.next().as_deref() {
                Some("quick") => scale = Scale::quick(),
                Some("standard") => scale = Scale::standard(),
                Some("full") => scale = Scale::full(),
                _ => usage(),
            },
            "--jobs" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => usage(),
            },
            "--shards" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => usage(),
            },
            "--no-skip-ahead" => skip_ahead = false,
            "--audit" => audit = true,
            "--journal" => match args.next() {
                Some(f) => journal_path = Some(f),
                None => usage(),
            },
            "--resume" => resume = true,
            "--help" | "-h" => usage(),
            other => selected.push(other.to_string()),
        }
    }
    if resume && journal_path.is_none() {
        eprintln!("--resume requires --journal <file>");
        std::process::exit(2);
    }
    let knobs = EngineKnobs {
        jobs,
        shards,
        skip_ahead,
        audit,
    };
    if selected.first().map(String::as_str) == Some("audit") {
        audit_main(selected.split_off(1));
    }
    if selected.first().map(String::as_str) == Some("trace") {
        trace_main(selected.split_off(1), scale, knobs);
    }
    if selected.first().map(String::as_str) == Some("stats") {
        stats_main(selected.split_off(1), scale, knobs);
    }
    if selected.first().map(String::as_str) == Some("checkpoint") {
        checkpoint_main(selected.split_off(1), scale, knobs);
    }
    if selected.first().map(String::as_str) == Some("fairness") {
        fairness_main(selected.split_off(1), scale, knobs);
    }
    if selected.first().map(String::as_str) == Some("hetero") {
        hetero_main(selected.split_off(1), scale, knobs);
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    let all = selected.iter().any(|s| s == "all");
    let want = |name: &str| all || selected.iter().any(|s| s == name);

    let mut r = Runner::new(scale);
    r.verbose = true;
    knobs.apply(&mut r);
    r.warm_cycles = warm_cycles;
    if let Some(path) = &journal_path {
        let path = std::path::Path::new(path);
        if resume && path.exists() {
            match SweepJournal::resume(path) {
                Ok((journal, entries)) => {
                    eprintln!(
                        "resumed {} completed cell(s) from {}",
                        entries.len(),
                        path.display()
                    );
                    r.preload(entries);
                    r.set_journal(journal);
                }
                Err(e) => fail(e),
            }
        } else {
            match SweepJournal::create(path) {
                Ok(journal) => r.set_journal(journal),
                Err(e) => fail(e),
            }
        }
    }
    println!("critmem repro — ISCA 2013 criticality-aware memory scheduling");
    println!(
        "scale: {} instructions/core, apps: {:?}",
        r.scale.instructions, r.scale.apps
    );

    if want("config") {
        println!("{}", config_dump());
    }
    if want("fig1") {
        println!("{}", r.run_parallel(fig1).to_table());
    }
    if want("fig3") {
        let (a, b) = r.run_parallel(fig3);
        println!("{}", a.to_table());
        println!("{}", b.to_table());
    }
    if want("fig4") {
        println!("{}", r.run_parallel(fig4).to_table());
    }
    if want("fig5") {
        println!("{}", r.run_parallel(fig5).to_table());
    }
    if want("fig6") {
        println!("{}", r.run_parallel(fig6).to_table());
    }
    if want("fig7") {
        println!("{}", r.run_parallel(fig7).to_table());
    }
    if want("fig8") {
        println!("{}", r.run_parallel(fig8).to_table());
    }
    if want("fig9") {
        println!("{}", r.run_parallel(fig9).to_table());
    }
    if want("fig10") {
        println!("{}", r.run_parallel(fig10).to_table());
    }
    if want("fig11") {
        println!("{}", r.run_parallel(fig11).to_table());
    }
    if want("fig12") {
        let f = r.run_parallel(fig12);
        println!("{}", f.to_table());
        println!(
            "max slowdown: TCM {:.3}, MaxStallTime {:.3} ({:+.1}% change)",
            f.max_slowdown_tcm,
            f.max_slowdown_crit,
            (f.max_slowdown_crit / f.max_slowdown_tcm - 1.0) * 100.0
        );
    }
    if want("table5") {
        println!("{}", r.run_parallel(table5).to_table());
    }
    if want("table7") {
        println!("{}", r.run_parallel(table7).to_table());
    }
    if want("naive") {
        println!("{}", r.run_parallel(naive).to_table());
    }
    if want("reset") {
        println!("{}", r.run_parallel(reset_study).to_table());
    }
    if want("tracesweep") {
        // `trace_sweep` drives `run_parallel` itself, one phase at a
        // time, so its wall-clock numbers stay meaningful.
        let sweep = trace_sweep(&mut r, "swim");
        println!("{}", sweep.to_table());
        println!("{}", sweep.timing_summary());
    }
    let _ = &experiments::TextTable::pct(1.0);
    eprintln!("\n{} distinct simulations executed", r.runs_executed());
    if r.has_failures() {
        println!("\n=== Failed cells ===");
        for f in r.failures() {
            println!("{}: {}", f.key, f.error);
        }
        println!(
            "{} cell(s) failed; the affected table rows hold placeholder values. \
             Re-run with --journal <file> --resume to retry only the missing cells.",
            r.failures().len()
        );
        let code = r
            .failures()
            .iter()
            .map(|f| f.error.exit_code())
            .max()
            .unwrap_or(1);
        std::process::exit(code);
    }
}
