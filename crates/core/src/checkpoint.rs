//! Checkpoint & warm-start engine: full architectural-state snapshots
//! of a running [`System`], framed as `CMCK` binary artifacts.
//!
//! A sweep over schedulers and predictor metrics re-simulates the same
//! warmup region once per cell — byte-identical work, because warmup
//! runs under the shared baseline configuration. A [`Checkpoint`]
//! captures the complete mutable state of the platform at a chosen
//! cycle (ROB/LQ/SQ and rename bookkeeping, predictor tables, cache
//! arrays and MSHRs, DRAM bank/row/queue state, RNGs, and the clock
//! divider), so every cell restores from the shared snapshot and pays
//! the warmup cost once.
//!
//! Component state that a cell replaces at the boundary — the memory
//! scheduler and the criticality predictor — is framed inside the
//! snapshot as length-prefixed blocks. A restore whose configuration
//! names the same component replays the block; a restore that swaps
//! components discards it and keeps the fresh instance, which is
//! byte-identical to driving the original system to the boundary and
//! calling [`System::reconfigure`] (the property `tests/checkpoint.rs`
//! enforces).
//!
//! # On-disk format (`CMCK`, DESIGN.md §6g)
//!
//! ```text
//! b"CMCK" | u32 version | u32 payload_len | payload | u32 crc32(payload)
//! payload = u32 fingerprint | u64 cycle | str scheduler | str predictor
//!         | bytes state
//! ```
//!
//! The same torn-tail discipline as the `CMJR` sweep journal: magic and
//! version mismatches and CRC failures come back as typed
//! [`SimError::Artifact`] values, never panics. The fingerprint is a
//! CRC-32 over a canonical rendering of the *platform* — core count and
//! microarchitecture, cache hierarchy, DRAM organization, clocks, seed,
//! forwarding settings, and workload — so a checkpoint can only be
//! restored onto the platform that produced it. Scheduler, predictor,
//! instruction target, sampling, and watchdog settings are deliberately
//! outside the fingerprint: those are exactly the knobs a warm-started
//! cell varies.

use crate::config::{AgentMix, SystemConfig};
use crate::system::System;
use critmem_common::codec::{ByteReader, ByteWriter};
use critmem_common::{crc32, RequestObserver, SimError};
use std::sync::Arc;

/// Artifact magic: "CritMem ChecKpoint".
const MAGIC: &[u8; 4] = b"CMCK";
/// Current format version. Version 2 extended the per-rank bank-state
/// block with the tFAW rolling-window ring; version-1 checkpoints would
/// misdecode it and are rejected up front.
const VERSION: u32 = 2;

/// A full architectural-state snapshot of a [`System`] at one cycle.
///
/// The state bytes live behind an [`Arc`], so fanning one warmup
/// checkpoint out across parallel sweep workers clones a pointer, not
/// the (potentially large) snapshot.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    fingerprint: u32,
    cycle: u64,
    scheduler: String,
    predictor: String,
    state: Arc<Vec<u8>>,
}

/// Canonical platform fingerprint: everything that must be identical
/// between the system that saved a checkpoint and one restoring it.
pub(crate) fn fingerprint_of(cfg: &SystemConfig, workload: &AgentMix) -> u32 {
    let canon = format!(
        "cores={};core={:?};hier={:?};dram={:?};mhz={};seed={};fwd={}/{};wl={:?}",
        cfg.cores,
        cfg.core,
        cfg.hierarchy,
        cfg.dram,
        cfg.cpu_mhz,
        cfg.seed,
        cfg.naive_forwarding,
        cfg.forward_latency,
        workload
    );
    crc32::checksum(canon.as_bytes())
}

impl Checkpoint {
    /// Snapshots a running system.
    pub(crate) fn capture<O: RequestObserver>(sys: &System<O>, workload: &AgentMix) -> Checkpoint {
        let mut w = ByteWriter::new();
        sys.save_state(&mut w);
        Checkpoint {
            fingerprint: fingerprint_of(sys.config(), workload),
            cycle: sys.now(),
            scheduler: format!("{:?}", sys.config().scheduler),
            predictor: format!("{:?}", sys.config().predictor),
            state: Arc::new(w.into_bytes()),
        }
    }

    /// Overlays this snapshot onto a freshly built system. Saved
    /// scheduler/predictor state is replayed only when the target
    /// configuration names the same component; otherwise the fresh
    /// instance is kept (the warm-start component swap).
    ///
    /// # Errors
    ///
    /// [`SimError::Artifact`] when the target platform's fingerprint
    /// differs from the one that produced the snapshot, or the state
    /// bytes fail to decode.
    pub(crate) fn restore_into<O: RequestObserver>(
        &self,
        sys: &mut System<O>,
        workload: &AgentMix,
    ) -> Result<(), SimError> {
        let expect = fingerprint_of(sys.config(), workload);
        if expect != self.fingerprint {
            return Err(SimError::Artifact(format!(
                "checkpoint fingerprint {:08x} does not match the target platform {expect:08x} \
                 (cores, caches, DRAM, clocks, seed, forwarding, and workload must be identical)",
                self.fingerprint
            )));
        }
        let load_predictors = format!("{:?}", sys.config().predictor) == self.predictor;
        let load_schedulers = format!("{:?}", sys.config().scheduler) == self.scheduler;
        let mut r = ByteReader::new(&self.state);
        sys.load_state(&mut r, load_predictors, load_schedulers)?;
        Ok(())
    }

    /// CPU cycle at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Size of the raw state payload in bytes.
    pub fn state_len(&self) -> usize {
        self.state.len()
    }

    /// Serializes to the `CMCK` wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_u32(self.fingerprint);
        payload.put_u64(self.cycle);
        payload.put_str(&self.scheduler);
        payload.put_str(&self.predictor);
        payload.put_bytes(&self.state);
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32::checksum(&payload).to_le_bytes());
        out
    }

    /// Parses the `CMCK` wire format.
    ///
    /// # Errors
    ///
    /// [`SimError::Artifact`] on a wrong magic, unsupported version,
    /// truncation, or CRC mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, SimError> {
        if bytes.len() < 12 {
            return Err(SimError::Artifact(format!(
                "checkpoint too short ({} bytes) to hold a CMCK header",
                bytes.len()
            )));
        }
        if &bytes[..4] != MAGIC {
            return Err(SimError::Artifact(format!(
                "bad checkpoint magic {:02x?} (expected \"CMCK\")",
                &bytes[..4]
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SimError::Artifact(format!(
                "unsupported checkpoint version {version} (this build reads {VERSION})"
            )));
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let rest = &bytes[12..];
        if rest.len() < len + 4 {
            return Err(SimError::Artifact(format!(
                "truncated checkpoint: header promises {len} payload bytes + CRC, {} remain",
                rest.len()
            )));
        }
        let payload = &rest[..len];
        let crc = u32::from_le_bytes(rest[len..len + 4].try_into().expect("4 bytes"));
        if crc32::checksum(payload) != crc {
            return Err(SimError::Artifact(
                "checkpoint payload failed its CRC check (corrupt or torn write)".into(),
            ));
        }
        let mut r = ByteReader::new(payload);
        let fingerprint = r.get_u32()?;
        let cycle = r.get_u64()?;
        let scheduler = r.get_str()?.to_string();
        let predictor = r.get_str()?.to_string();
        let state = r.get_bytes()?;
        Ok(Checkpoint {
            fingerprint,
            cycle,
            scheduler,
            predictor,
            state: Arc::new(state),
        })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] with the path on any filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), SimError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| SimError::from(e).with_path(path))
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on filesystem failures, [`SimError::Artifact`]
    /// on a corrupt or truncated file.
    pub fn load(path: &std::path::Path) -> Result<Checkpoint, SimError> {
        let bytes = std::fs::read(path).map_err(|e| SimError::from(e).with_path(path))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF,
            cycle: 12_345,
            scheduler: "FrFcfs".into(),
            predictor: "None".into(),
            state: Arc::new(vec![1, 2, 3, 4, 5]),
        }
    }

    #[test]
    fn wire_round_trip() {
        let c = sample();
        let d = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(d.fingerprint, c.fingerprint);
        assert_eq!(d.cycle(), 12_345);
        assert_eq!(d.scheduler, c.scheduler);
        assert_eq!(*d.state, *c.state);
    }

    #[test]
    fn rejects_bad_magic_version_crc_and_truncation() {
        let bytes = sample().to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(SimError::Artifact(_))
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(SimError::Artifact(_))
        ));

        let mut bad = bytes.clone();
        let flip = bytes.len() - 10; // inside the payload
        bad[flip] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(SimError::Artifact(_))
        ));

        for cut in [0, 3, 11, bytes.len() - 1] {
            assert!(
                matches!(
                    Checkpoint::from_bytes(&bytes[..cut]),
                    Err(SimError::Artifact(_))
                ),
                "cut at {cut} must be a typed error"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_platform_not_cell_knobs() {
        let cfg = SystemConfig::paper_baseline(1_000);
        let wl = AgentMix::Parallel("swim");
        let base = fingerprint_of(&cfg, &wl);

        // Cell knobs (scheduler, predictor, target, sampling) do not
        // change the fingerprint...
        let cell = cfg
            .clone()
            .with_scheduler(critmem_sched::SchedulerKind::CasRasCrit)
            .with_predictor(crate::config::PredictorKind::cbp64(
                critmem_predict::CbpMetric::MaxStallTime,
            ))
            .with_sampling(1_000);
        assert_eq!(fingerprint_of(&cell, &wl), base);

        // ...but the platform and workload do.
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(fingerprint_of(&other, &wl), base);
        assert_ne!(fingerprint_of(&cfg, &AgentMix::Parallel("mg")), base);
    }
}
