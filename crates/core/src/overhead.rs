//! §5.7 storage-overhead accounting, reproducing the paper's
//! bit-by-bit cost model for the CASRAS-Crit implementation, and the
//! storage column of Table 7.
//!
//! Per core, the CBP needs: a 7-bit ROB sequence-number register, a
//! 6-bit PC-substring register, and a 64 x W-bit tagless table, where
//! W is the metric's counter width (Table 5). The load queue grows by
//! either 1 bit (lookup-at-decode stores the prediction) or 6 bits
//! (storing the PC substring), times 32 entries. Each DRAM channel's
//! 64-entry transaction queue grows by W bits per entry.

use critmem_predict::CbpMetric;

/// Width in bits of each CBP metric's counter, from the paper's
/// Table 5 (maximum observed values over its benchmark runs).
pub fn paper_counter_width(metric: CbpMetric) -> u32 {
    match metric {
        CbpMetric::Binary => 1,
        CbpMetric::BlockCount => 21,
        CbpMetric::LastStallTime => 14,
        CbpMetric::MaxStallTime => 14,
        CbpMetric::TotalStallTime => 27,
    }
}

/// Storage overhead of a CBP-based CASRAS-Crit design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadModel {
    /// CBP entries per core.
    pub cbp_entries: u64,
    /// Counter width per entry (bits).
    pub counter_bits: u32,
    /// Cores in the CMP.
    pub cores: u64,
    /// DRAM channels (each with a 64-entry transaction queue).
    pub channels: u64,
    /// Transaction-queue entries per channel.
    pub txq_entries: u64,
    /// Load-queue entries per core.
    pub lq_entries: u64,
    /// ROB entries (sets the sequence-number register width).
    pub rob_entries: u64,
}

impl OverheadModel {
    /// The paper's 8-core, 4-channel configuration with a 64-entry CBP.
    pub fn paper_parallel(metric: CbpMetric) -> Self {
        OverheadModel {
            cbp_entries: 64,
            counter_bits: paper_counter_width(metric),
            cores: 8,
            channels: 4,
            txq_entries: 64,
            lq_entries: 32,
            rob_entries: 128,
        }
    }

    /// Per-core bits in the *cheapest* lookup implementation
    /// (lookup-at-decode: 1 prediction bit per LQ entry).
    pub fn per_core_bits_min(&self) -> u64 {
        let seq_reg = (self.rob_entries as f64).log2().ceil() as u64; // 7 b
        let pc_reg = (self.cbp_entries as f64).log2().ceil() as u64; // 6 b
        let table = self.cbp_entries * u64::from(self.counter_bits);
        // Lookup-at-decode: each LQ entry stores the prediction value.
        let lq = self.lq_entries * u64::from(self.counter_bits);
        seq_reg + pc_reg + table + lq
    }

    /// Per-core bits in the *costliest* implementation (PC substring
    /// stored per LQ entry plus the prediction at issue).
    pub fn per_core_bits_max(&self) -> u64 {
        let pc_bits = (self.cbp_entries as f64).log2().ceil() as u64;
        self.per_core_bits_min() + self.lq_entries * pc_bits
    }

    /// Bits added across all DRAM transaction queues.
    pub fn controller_bits(&self) -> u64 {
        self.channels * self.txq_entries * u64::from(self.counter_bits)
    }

    /// Total SRAM bytes, minimum implementation.
    pub fn total_bytes_min(&self) -> u64 {
        (self.cores * self.per_core_bits_min() + self.controller_bits()).div_ceil(8)
    }

    /// Total SRAM bytes, maximum implementation.
    pub fn total_bytes_max(&self) -> u64 {
        (self.cores * self.per_core_bits_max() + self.controller_bits()).div_ceil(8)
    }
}

/// One row of the Table 7 scheduler-comparison summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Storage description.
    pub storage: String,
    /// Uses processor-side information.
    pub processor_side: bool,
    /// Scales to high-speed memory.
    pub scales: bool,
    /// Works under low contention.
    pub low_contention: bool,
}

/// The qualitative rows of Table 7 (the speedup columns are measured
/// by the experiment harness).
pub fn table7_qualitative() -> Vec<Table7Row> {
    let binary = OverheadModel::paper_parallel(CbpMetric::Binary);
    let max = OverheadModel::paper_parallel(CbpMetric::MaxStallTime);
    vec![
        Table7Row {
            scheduler: "AHB (Hur/Lin)",
            storage: "31 B".into(),
            processor_side: false,
            scales: true,
            low_contention: true,
        },
        Table7Row {
            scheduler: "TCM",
            storage: "4816 B".into(),
            processor_side: false,
            scales: true,
            low_contention: false,
        },
        Table7Row {
            scheduler: "MORSE-P",
            storage: "DDR3-1066: 128 kB; DDR3-2133: <= 512 kB".into(),
            processor_side: true,
            scales: false,
            low_contention: true,
        },
        Table7Row {
            scheduler: "Binary CBP",
            storage: format!(
                "{}-{} B",
                binary.total_bytes_min(),
                binary.total_bytes_max()
            ),
            processor_side: true,
            scales: true,
            low_contention: true,
        },
        Table7Row {
            scheduler: "MaxStallTime CBP",
            storage: format!("{}-{} B", max.total_bytes_min(), max.total_bytes_max()),
            processor_side: true,
            scales: true,
            low_contention: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_overhead_matches_paper_range() {
        // Paper §5.7: binary criticality costs between 109 and 301
        // bytes of SRAM for the 8-core quad-channel system.
        let m = OverheadModel::paper_parallel(CbpMetric::Binary);
        // Per-core: 7 + 6 + 64x1 = 77 bits minimum (paper's figure)
        // plus the 1-bit-per-LQ-entry decode variant.
        assert_eq!(m.per_core_bits_min(), 7 + 6 + 64 + 32);
        assert_eq!(m.per_core_bits_max(), 7 + 6 + 64 + 32 + 32 * 6);
        // Controller: 4 channels x 64 entries x 1 bit.
        assert_eq!(m.controller_bits(), 256);
        let lo = m.total_bytes_min();
        let hi = m.total_bytes_max();
        assert!((100..=330).contains(&lo), "min {lo}");
        assert!((250..=360).contains(&hi), "max {hi}");
        assert!(lo < hi);
    }

    #[test]
    fn maxstalltime_overhead_matches_paper_range() {
        // Paper §5.7: 1,357 to 1,805 bytes for MaxStallTime.
        let m = OverheadModel::paper_parallel(CbpMetric::MaxStallTime);
        let lo = m.total_bytes_min();
        let hi = m.total_bytes_max();
        assert!((1_100..=1_900).contains(&lo), "min {lo}");
        assert!((1_300..=2_100).contains(&hi), "max {hi}");
    }

    #[test]
    fn totalstalltime_is_largest() {
        let total = OverheadModel::paper_parallel(CbpMetric::TotalStallTime);
        let max = OverheadModel::paper_parallel(CbpMetric::MaxStallTime);
        assert!(total.total_bytes_max() > max.total_bytes_max());
        // Paper: 2,605-3,469 bytes.
        assert!((2_200..=3_700).contains(&total.total_bytes_max()));
    }

    #[test]
    fn widths_match_table5() {
        assert_eq!(paper_counter_width(CbpMetric::Binary), 1);
        assert_eq!(paper_counter_width(CbpMetric::BlockCount), 21);
        assert_eq!(paper_counter_width(CbpMetric::LastStallTime), 14);
        assert_eq!(paper_counter_width(CbpMetric::MaxStallTime), 14);
        assert_eq!(paper_counter_width(CbpMetric::TotalStallTime), 27);
    }

    #[test]
    fn table7_includes_both_cbp_rows() {
        let rows = table7_qualitative();
        assert_eq!(rows.len(), 5);
        assert!(rows
            .iter()
            .any(|r| r.scheduler == "Binary CBP" && r.scales && r.processor_side));
        assert!(rows.iter().any(|r| r.scheduler == "MORSE-P" && !r.scales));
    }
}
