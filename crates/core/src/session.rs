//! The unified run API: one builder that covers every way the
//! simulator is driven — plain runs, observed runs, trace capture,
//! metric sampling, checkpoint capture, and warm starts.
//!
//! [`Session`] replaced the former six entry points (`run`, `try_run`,
//! `run_traced`, `try_run_traced`, `run_with_observer`,
//! `try_run_with_observer`), whose deprecated shims have since been
//! deleted. Every option is a chainable method; [`Session::run`] builds
//! the [`System`], restores a checkpoint when one was attached, drives
//! to completion, and returns a [`RunOutput`] carrying the statistics,
//! the observer, and any checkpoint captured along the way.
//!
//! ```
//! use critmem::{Session, SystemConfig, AgentMix};
//!
//! let mut cfg = SystemConfig::paper_baseline(1_000);
//! cfg.cores = 2;
//! cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
//! let out = Session::new(cfg, &AgentMix::Parallel("swim"))
//!     .run()
//!     .unwrap();
//! assert!(out.stats.cycles > 0);
//! ```

use crate::checkpoint::Checkpoint;
use crate::config::{AgentMix, PredictorKind, SystemConfig};
use crate::faults::FaultPlan;
use crate::system::{RunStats, System};
use critmem_common::{RequestObserver, SimError};
use critmem_sched::SchedulerKind;

/// Everything a finished [`Session`] hands back.
#[derive(Debug)]
pub struct RunOutput<O = ()> {
    /// Aggregated statistics of the run.
    pub stats: RunStats,
    /// The observer that watched the LLC-miss → DRAM boundary (e.g. a
    /// filled [`critmem_trace::TraceSink`]); `()` for plain runs.
    pub observer: O,
    /// The snapshot captured at [`Session::checkpoint_at`], when one
    /// was requested.
    pub checkpoint: Option<Checkpoint>,
}

/// Builder for one simulation run.
///
/// Construct with [`Session::new`] (cold start) or
/// [`Session::from_checkpoint`] (warm start), chain options, finish
/// with [`Session::run`] or [`Session::run_to_checkpoint`].
#[derive(Debug)]
pub struct Session<O: RequestObserver = ()> {
    cfg: SystemConfig,
    workload: AgentMix,
    observer: O,
    checkpoint_at: Option<u64>,
    restore: Option<Checkpoint>,
    fault: Option<FaultPlan>,
}

impl Session<()> {
    /// Starts a session from a cold (cycle-zero) system.
    pub fn new(cfg: SystemConfig, workload: &AgentMix) -> Self {
        Session {
            cfg,
            workload: workload.clone(),
            observer: (),
            checkpoint_at: None,
            restore: None,
            fault: None,
        }
    }

    /// Starts a session from a previously captured checkpoint: the
    /// system is rebuilt from `cfg`, the snapshot is overlaid, and the
    /// run continues from the checkpoint's cycle. `cfg` must describe
    /// the same platform the checkpoint was taken on (validated by
    /// fingerprint at [`Session::run`]); its scheduler and predictor
    /// may differ, in which case the saved component state is discarded
    /// and fresh instances take over at the boundary.
    pub fn from_checkpoint(
        checkpoint: &Checkpoint,
        cfg: SystemConfig,
        workload: &AgentMix,
    ) -> Self {
        let mut s = Self::new(cfg, workload);
        s.restore = Some(checkpoint.clone());
        s
    }
}

impl<O: RequestObserver> Session<O> {
    /// Attaches an observer to the LLC-miss → DRAM enqueue boundary.
    pub fn observer<O2: RequestObserver>(self, observer: O2) -> Session<O2> {
        Session {
            cfg: self.cfg,
            workload: self.workload,
            observer,
            checkpoint_at: self.checkpoint_at,
            restore: self.restore,
            fault: self.fault,
        }
    }

    /// Captures the run's LLC-miss request stream as a trace labeled
    /// `source` (the observer becomes a [`critmem_trace::TraceSink`];
    /// take the trace from [`RunOutput::observer`] with
    /// [`critmem_trace::TraceSink::into_trace`]).
    pub fn traced(self, source: &str) -> Session<critmem_trace::TraceSink> {
        let fingerprint =
            critmem_trace::Fingerprint::of(self.cfg.cores, self.cfg.cpu_mhz, &self.cfg.dram);
        let sink = critmem_trace::TraceSink::new(fingerprint, source);
        self.observer(sink)
    }

    /// Replaces the session's workload with `mix` — the entry point for
    /// heterogeneous agent mixes, typically parsed from the grammar:
    ///
    /// ```
    /// use critmem::{Session, SystemConfig, AgentMix};
    ///
    /// let mix: AgentMix = "ooo:mcf*2+stream:2".parse().unwrap();
    /// let mut cfg = SystemConfig::multiprogrammed_baseline(500);
    /// cfg.cores = 2;
    /// cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    /// cfg.max_cycles = 50_000_000;
    /// let out = Session::new(cfg, &AgentMix::Parallel("swim"))
    ///     .agents(&mix)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(out.stats.agents.len(), 2);
    /// ```
    #[must_use]
    pub fn agents(mut self, mix: &AgentMix) -> Self {
        self.workload = mix.clone();
        self
    }

    /// Samples every registered metric each `epoch` CPU cycles into
    /// [`RunStats::series`]. For trace/synth replay the equivalent
    /// knob is [`critmem_trace::ReplayConfig::with_sampling`] — see
    /// [`critmem_trace::ReplayConfig`] for the single reference on how
    /// sampling, windowing, and the watchdog interact.
    #[must_use]
    pub fn sampling(mut self, epoch: u64) -> Self {
        self.cfg.sample_epoch = Some(epoch);
        self
    }

    /// Captures a [`Checkpoint`] when the run first reaches `cycle`
    /// (returned in [`RunOutput::checkpoint`]). If every core finishes
    /// earlier, the snapshot is taken at the finish cycle instead.
    #[must_use]
    pub fn checkpoint_at(mut self, cycle: u64) -> Self {
        self.checkpoint_at = Some(cycle);
        self
    }

    /// Overrides the memory scheduler (for warm starts: the cell's
    /// scheduler, swapped in fresh at the checkpoint boundary).
    #[must_use]
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// Overrides the per-core criticality predictor.
    #[must_use]
    pub fn predictor(mut self, kind: PredictorKind) -> Self {
        self.cfg.predictor = kind;
        self
    }

    /// Overrides the run's hard cycle budget.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.cfg.max_cycles = max_cycles;
        self
    }

    /// Enables (or disables) the independent run auditors
    /// ([`SystemConfig::audit`]): a shadow protocol auditor per DRAM
    /// channel plus a request-conservation auditor at the
    /// L2↔controller boundary. Audited runs export byte-identical
    /// statistics; a violation surfaces as a typed
    /// [`SimError::AuditViolation`] from [`Session::run`].
    #[must_use]
    pub fn audit(mut self, on: bool) -> Self {
        self.cfg.audit = on;
        self
    }

    /// Arms a deterministic [`FaultPlan`]: its live faults inject at
    /// their component boundaries during the run (artifact faults in
    /// the plan are ignored here — they target serialized bytes, not a
    /// live system). Pair with [`Session::audit`] so every injected
    /// fault is *detected* rather than silently absorbed.
    #[must_use]
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builds the system (restoring the attached checkpoint, if any)
    /// ready to drive.
    fn build(self) -> Result<(System<O>, AgentMix, Option<u64>), SimError> {
        let Session {
            cfg,
            workload,
            observer,
            checkpoint_at,
            restore,
            fault,
        } = self;
        let mut sys = System::try_with_observer(cfg, &workload, observer)?;
        if let Some(ckpt) = &restore {
            ckpt.restore_into(&mut sys, &workload)?;
        }
        if let Some(plan) = &fault {
            sys.arm_faults(plan);
        }
        Ok((sys, workload, checkpoint_at))
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] / [`SimError::UnknownWorkload`] if the
    /// system cannot be built, [`SimError::Artifact`] if an attached
    /// checkpoint does not fit the configuration, and
    /// [`SimError::Watchdog`] when the run exceeds its cycle budget or
    /// the forward-progress watchdog detects a livelock.
    pub fn run(self) -> Result<RunOutput<O>, SimError> {
        let (mut sys, workload, checkpoint_at) = self.build()?;
        let checkpoint = match checkpoint_at {
            Some(cycle) => {
                sys.drive(Some(cycle))?;
                Some(Checkpoint::capture(&sys, &workload))
            }
            None => None,
        };
        sys.drive(None)?;
        let (stats, observer) = sys.into_stats_and_observer();
        Ok(RunOutput {
            stats,
            observer,
            checkpoint,
        })
    }

    /// Drives only to the [`Session::checkpoint_at`] boundary and
    /// returns the snapshot, skipping the rest of the run — the warmup
    /// arm of a checkpointed sweep.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] when no checkpoint cycle was set; otherwise
    /// as [`Session::run`].
    pub fn run_to_checkpoint(self) -> Result<Checkpoint, SimError> {
        let Some(cycle) = self.checkpoint_at else {
            return Err(SimError::Config(
                "run_to_checkpoint requires checkpoint_at(cycle)".into(),
            ));
        };
        let (mut sys, workload, _) = self.build()?;
        sys.drive(Some(cycle))?;
        Ok(Checkpoint::capture(&sys, &workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_predict::CbpMetric;

    fn quick(instr: u64) -> SystemConfig {
        let mut c = SystemConfig::paper_baseline(instr);
        c.cores = 2;
        c.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
        c.max_cycles = 20_000_000;
        c
    }

    #[test]
    fn identical_sessions_are_byte_deterministic() {
        let wl = AgentMix::Parallel("swim");
        let a = Session::new(quick(1_500), &wl).run().unwrap().stats;
        let b = Session::new(quick(1_500), &wl).run().unwrap().stats;
        let (mut wa, mut wb) = (
            critmem_common::codec::ByteWriter::new(),
            critmem_common::codec::ByteWriter::new(),
        );
        a.encode(&mut wa);
        b.encode(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn builder_options_compose() {
        let wl = AgentMix::Parallel("swim");
        let out = Session::new(quick(1_500), &wl)
            .scheduler(SchedulerKind::CasRasCrit)
            .predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime))
            .sampling(1_000)
            .run()
            .unwrap();
        assert!(out.stats.series.is_some(), "sampling must produce a series");
        assert!(out.checkpoint.is_none());
    }

    #[test]
    fn traced_session_captures_requests() {
        let wl = AgentMix::Parallel("swim");
        let out = Session::new(quick(1_500), &wl)
            .traced("swim")
            .run()
            .unwrap();
        let trace = out.observer.into_trace();
        assert!(!trace.records.is_empty(), "swim must miss the L2");
    }

    #[test]
    fn checkpointed_run_reports_boundary() {
        let wl = AgentMix::Parallel("swim");
        let out = Session::new(quick(1_500), &wl)
            .checkpoint_at(2_000)
            .run()
            .unwrap();
        let ckpt = out.checkpoint.expect("checkpoint was requested");
        assert_eq!(ckpt.cycle(), 2_000);
        assert!(ckpt.state_len() > 0);
        assert!(out.stats.cycles > 2_000);
    }

    #[test]
    fn run_to_checkpoint_requires_boundary() {
        let wl = AgentMix::Parallel("swim");
        let err = Session::new(quick(1_500), &wl)
            .run_to_checkpoint()
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn restore_rejects_platform_mismatch() {
        let wl = AgentMix::Parallel("swim");
        let ckpt = Session::new(quick(1_500), &wl)
            .checkpoint_at(1_000)
            .run_to_checkpoint()
            .unwrap();
        let mut other = quick(1_500);
        other.seed ^= 1;
        let err = Session::from_checkpoint(&ckpt, other, &wl)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Artifact(_)), "got {err}");
    }
}
