//! Request-conservation auditing at the L2↔controller boundary.
//!
//! The DRAM-side shadow auditor ([`critmem_dram::ProtocolAuditor`])
//! checks that every *command* is legal; this module checks that every
//! *request* is conserved: a request accepted by a memory controller
//! completes exactly once — never lost, never duplicated — the
//! boundary's occupancy stays within the physical queue capacity, and
//! the clock observed at the boundary is monotone (skip-ahead jumps
//! included). Like the protocol auditor it is an independent witness:
//! it keeps its own books from the enqueue/complete events alone and
//! never reads controller internals, so a bookkeeping bug in the model
//! cannot hide itself from the audit.
//!
//! The auditor is optimistic about requests it never saw enqueued
//! (e.g. transactions restored from a checkpoint taken before it was
//! attached): their completions are ignored rather than flagged, which
//! makes mid-run attachment safe. Only the *first* violation is kept —
//! later ones are usually cascading noise from the same root cause.

use critmem_common::{AuditSnapshot, ReqId};
use std::collections::HashSet;

/// Shadow accounting of every request crossing the L2↔controller
/// boundary. Owned by the system when [`crate::SystemConfig::audit`]
/// is set; see the module docs for the invariants checked.
#[derive(Debug)]
pub struct ConservationAuditor {
    /// Requests enqueued since attach and not yet completed.
    pending: HashSet<ReqId>,
    /// Requests that completed exactly once since attach.
    completed: HashSet<ReqId>,
    /// Hard cap on `pending` (physical queue capacity plus in-flight
    /// slack across channels).
    occupancy_bound: usize,
    /// Last CPU cycle observed; the clock must never move backwards.
    last_cycle: u64,
    violation: Option<Box<AuditSnapshot>>,
}

impl ConservationAuditor {
    /// Creates an auditor. `occupancy_bound` is the largest number of
    /// simultaneously outstanding requests the platform can physically
    /// hold (summed transaction-queue capacity plus in-flight slack).
    pub fn new(occupancy_bound: usize) -> Self {
        ConservationAuditor {
            pending: HashSet::new(),
            completed: HashSet::new(),
            occupancy_bound,
            last_cycle: 0,
            violation: None,
        }
    }

    /// Records the first violation; later ones are dropped (they are
    /// almost always knock-on effects of the first).
    fn flag(&mut self, what: String, cycle: u64) {
        if self.violation.is_none() {
            self.violation = Some(Box::new(AuditSnapshot {
                auditor: "conservation",
                what,
                cycle,
                channel: None,
            }));
        }
    }

    /// Witnesses a request accepted by a memory controller.
    pub fn on_enqueue(&mut self, id: ReqId, now: u64) {
        if self.completed.contains(&id) {
            self.flag(
                format!("request {id} re-entered the controller after completing"),
                now,
            );
            return;
        }
        if !self.pending.insert(id) {
            self.flag(
                format!("request {id} enqueued twice without completing (duplicate)"),
                now,
            );
            return;
        }
        if self.pending.len() > self.occupancy_bound {
            self.flag(
                format!(
                    "{} requests outstanding exceeds the physical bound of {}",
                    self.pending.len(),
                    self.occupancy_bound
                ),
                now,
            );
        }
    }

    /// Witnesses a completion delivered back across the boundary.
    /// Completions of requests enqueued before the auditor attached are
    /// ignored (see the module docs).
    pub fn on_complete(&mut self, id: ReqId, now: u64) {
        if self.pending.remove(&id) {
            self.completed.insert(id);
        } else if self.completed.contains(&id) {
            self.flag(format!("request {id} completed twice"), now);
        }
        // Unknown id: enqueued before attach — not a violation.
    }

    /// Witnesses the clock. Skip-ahead jumps land here too, so a
    /// backwards step anywhere in the batching logic is caught.
    pub fn check_clock(&mut self, now: u64) {
        if now < self.last_cycle {
            self.flag(
                format!("clock moved backwards ({} -> {now})", self.last_cycle),
                now,
            );
        }
        self.last_cycle = now;
    }

    /// End-of-run reconciliation: every request this auditor saw
    /// enqueued must either have completed or still be owned by a
    /// controller (`outstanding`, from the controllers' own books).
    /// A shortfall means a request vanished without completing.
    pub fn finish(&mut self, outstanding: usize, now: u64) {
        if self.pending.len() > outstanding {
            self.flag(
                format!(
                    "{} requests pending at end of run but only {outstanding} \
                     outstanding in the controllers (requests lost)",
                    self.pending.len()
                ),
                now,
            );
        }
    }

    /// Forgets all request tracking and re-anchors the clock —
    /// called after a checkpoint restore invalidates the books.
    pub fn reset(&mut self, now: u64) {
        self.pending.clear();
        self.completed.clear();
        self.last_cycle = now;
        self.violation = None;
    }

    /// The recorded violation, if any (non-destructive).
    pub fn violation(&self) -> Option<&AuditSnapshot> {
        self.violation.as_deref()
    }

    /// Removes and returns the recorded violation.
    pub fn take_violation(&mut self) -> Option<Box<AuditSnapshot>> {
        self.violation.take()
    }

    /// Requests currently tracked as outstanding.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lifecycle_is_silent() {
        let mut a = ConservationAuditor::new(4);
        for id in 0..3u64 {
            a.on_enqueue(id, 10 + id);
        }
        for id in 0..3u64 {
            a.on_complete(id, 100 + id);
        }
        a.check_clock(200);
        a.finish(0, 200);
        assert!(a.violation().is_none());
    }

    #[test]
    fn duplicate_enqueue_is_flagged() {
        let mut a = ConservationAuditor::new(16);
        a.on_enqueue(7, 10);
        a.on_enqueue(7, 11);
        let v = a.violation().expect("duplicate must be flagged");
        assert!(v.what.contains("enqueued twice"), "{}", v.what);
        assert_eq!(v.cycle, 11);
    }

    #[test]
    fn double_completion_is_flagged() {
        let mut a = ConservationAuditor::new(16);
        a.on_enqueue(3, 1);
        a.on_complete(3, 50);
        a.on_complete(3, 51);
        let v = a.violation().expect("double completion must be flagged");
        assert!(v.what.contains("completed twice"), "{}", v.what);
    }

    #[test]
    fn pre_attach_completion_is_ignored() {
        let mut a = ConservationAuditor::new(16);
        a.on_complete(99, 5); // restored from a checkpoint: unknown id
        assert!(a.violation().is_none());
    }

    #[test]
    fn occupancy_bound_is_enforced() {
        let mut a = ConservationAuditor::new(2);
        a.on_enqueue(0, 1);
        a.on_enqueue(1, 2);
        assert!(a.violation().is_none());
        a.on_enqueue(2, 3);
        let v = a.violation().expect("third request exceeds the bound");
        assert!(v.what.contains("physical bound"), "{}", v.what);
    }

    #[test]
    fn backwards_clock_is_flagged() {
        let mut a = ConservationAuditor::new(16);
        a.check_clock(100);
        a.check_clock(100); // equal is fine (same-cycle polls)
        assert!(a.violation().is_none());
        a.check_clock(99);
        assert!(a.violation().unwrap().what.contains("backwards"));
    }

    #[test]
    fn lost_request_fails_reconciliation() {
        let mut a = ConservationAuditor::new(16);
        a.on_enqueue(1, 1);
        a.on_enqueue(2, 2);
        a.on_complete(1, 60);
        // Request 2 never completed and the controllers claim nothing
        // outstanding: it vanished.
        a.finish(0, 100);
        let v = a.violation().expect("lost request must be flagged");
        assert!(v.what.contains("lost"), "{}", v.what);
    }

    #[test]
    fn reset_clears_books_and_violation() {
        let mut a = ConservationAuditor::new(16);
        a.on_enqueue(1, 1);
        a.on_enqueue(1, 2);
        assert!(a.violation().is_some());
        a.reset(500);
        assert!(a.violation().is_none());
        assert_eq!(a.pending_len(), 0);
        a.check_clock(500);
        assert!(a.violation().is_none());
    }
}
