//! Full-system configuration: the Tables 1 + 3 platform, the workload,
//! the scheduler, and the processor-side predictor.

use critmem_cache::{HierarchyConfig, PrefetchConfig};
use critmem_cpu::{AgentClass, CoreConfig};
use critmem_dram::DramConfig;
use critmem_predict::{CbpMetric, ClptMode, TableSize};
use critmem_sched::SchedulerKind;

/// Which processor-side criticality predictor each core carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// No predictor: all requests non-critical (FR-FCFS baseline).
    None,
    /// The Commit Block Predictor (§3).
    Cbp {
        /// Annotation metric.
        metric: CbpMetric,
        /// Table geometry.
        size: TableSize,
        /// Optional periodic reset interval in CPU cycles (§5.3.2).
        reset_interval: Option<u64>,
    },
    /// Subramaniam et al.'s consumer-count predictor (§2).
    Clpt(ClptMode),
}

impl PredictorKind {
    /// The paper's default 64-entry CBP with the given metric.
    pub fn cbp64(metric: CbpMetric) -> Self {
        PredictorKind::Cbp {
            metric,
            size: TableSize::Entries(64),
            reset_interval: None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            PredictorKind::None => "none".into(),
            PredictorKind::Cbp {
                metric,
                size,
                reset_interval,
            } => {
                let size = match size {
                    TableSize::Entries(n) => format!("{n}-entry"),
                    TableSize::Unlimited => "unlimited".into(),
                };
                let reset = if reset_interval.is_some() {
                    "+reset"
                } else {
                    ""
                };
                format!("{} CBP ({size}){reset}", metric.name())
            }
            PredictorKind::Clpt(ClptMode::Binary { threshold }) => {
                format!("CLPT-Binary(t={threshold})")
            }
            PredictorKind::Clpt(ClptMode::Consumers { .. }) => "CLPT-Consumers".into(),
        }
    }
}

impl std::str::FromStr for PredictorKind {
    type Err = critmem_common::SimError;

    /// Parses a predictor name: `none`, or a CBP annotation metric
    /// (`binary`, `blockcount`, `laststalltime`, `maxstalltime`,
    /// `totalstalltime`) mapped to the paper's 64-entry table.
    /// Case-insensitive.
    ///
    /// # Examples
    ///
    /// ```
    /// use critmem::PredictorKind;
    /// use critmem_predict::CbpMetric;
    /// let p: PredictorKind = "maxstalltime".parse().unwrap();
    /// assert_eq!(p, PredictorKind::cbp64(CbpMetric::MaxStallTime));
    /// assert!("nope".parse::<PredictorKind>().is_err());
    /// ```
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        let metric = match name.to_ascii_lowercase().as_str() {
            "none" => return Ok(PredictorKind::None),
            "binary" => CbpMetric::Binary,
            "blockcount" => CbpMetric::BlockCount,
            "laststalltime" => CbpMetric::LastStallTime,
            "maxstalltime" => CbpMetric::MaxStallTime,
            "totalstalltime" => CbpMetric::TotalStallTime,
            _ => {
                return Err(critmem_common::SimError::Config(format!(
                    "unknown predictor {name:?} (expected none, binary, blockcount, \
                     laststalltime, maxstalltime, or totalstalltime)"
                )))
            }
        };
        Ok(PredictorKind::cbp64(metric))
    }
}

/// One term of a heterogeneous agent mix: a class, an application (for
/// OoO cores) or traffic profile (for accelerator-class agents), an
/// instance count, and a QoS slowdown budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentSpec {
    /// What kind of producer this term instantiates.
    pub class: AgentClass,
    /// Application name (OoO) or traffic profile (other classes; see
    /// [`critmem_workloads::agent_profiles`]). Always the canonical
    /// `'static` spelling, so the derived `Debug` rendering — which
    /// feeds checkpoint fingerprints — is stable.
    pub profile: &'static str,
    /// How many instances of this term to build (>= 1).
    pub count: u32,
    /// QoS slowdown budget in thousandths; `0` inherits the class
    /// default ([`AgentClass::default_qos_millis`]).
    pub qos_millis: u32,
}

impl AgentSpec {
    /// An OoO core running `app`.
    pub fn ooo(app: &'static str) -> Self {
        AgentSpec {
            class: AgentClass::Ooo,
            profile: app,
            count: 1,
            qos_millis: 0,
        }
    }

    /// An accelerator-class agent with its default profile.
    ///
    /// # Panics
    ///
    /// Panics for [`AgentClass::Ooo`], whose profile is an application
    /// name — use [`AgentSpec::ooo`].
    pub fn agent(class: AgentClass) -> Self {
        let profile =
            critmem_workloads::default_profile(class).expect("non-ooo classes have a profile");
        AgentSpec {
            class,
            profile,
            count: 1,
            qos_millis: 0,
        }
    }

    /// Sets the instance count (builder style).
    #[must_use]
    pub fn with_count(mut self, count: u32) -> Self {
        self.count = count;
        self
    }

    /// Sets the QoS slowdown budget in thousandths (builder style).
    #[must_use]
    pub fn with_qos_millis(mut self, millis: u32) -> Self {
        self.qos_millis = millis;
        self
    }

    /// The budget this spec's instances actually carry: the explicit
    /// value, or the class default when none was given.
    pub fn effective_qos_millis(&self) -> u32 {
        if self.qos_millis == 0 {
            self.class.default_qos_millis()
        } else {
            self.qos_millis
        }
    }

    /// Renders the canonical grammar term (`class[:name][*count]
    /// [@budget]`).
    fn write_term(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.class.keyword())?;
        if self.class == AgentClass::Ooo
            || Some(self.profile) != critmem_workloads::default_profile(self.class)
        {
            write!(f, ":{}", self.profile)?;
        }
        if self.count != 1 {
            write!(f, "*{}", self.count)?;
        }
        if self.qos_millis != 0 {
            write!(f, "@{}", fmt_qos(self.qos_millis))?;
        }
        Ok(())
    }
}

/// Thousandths -> decimal text without floating-point round-trips
/// (`1500` -> `"1.5"`, `3000` -> `"3"`).
fn fmt_qos(millis: u32) -> String {
    let (int, frac) = (millis / 1000, millis % 1000);
    if frac == 0 {
        int.to_string()
    } else {
        format!("{int}.{}", format!("{frac:03}").trim_end_matches('0'))
    }
}

/// Decimal text -> thousandths; `None` on malformed input or more than
/// three fractional digits.
fn parse_qos(s: &str) -> Option<u32> {
    let (int, frac) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    if int.is_empty() && frac.is_empty() {
        return None;
    }
    if frac.len() > 3 || !frac.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let int: u32 = if int.is_empty() { 0 } else { int.parse().ok()? };
    let mut frac_val = 0u32;
    for (i, c) in frac.chars().enumerate() {
        frac_val += c.to_digit(10)? * 10u32.pow(2 - i as u32);
    }
    int.checked_mul(1000)?.checked_add(frac_val)
}

/// The workload: which agents share the memory system.
///
/// The three legacy shapes (`Parallel`, `Bundle`, `Alone`) are
/// preserved as first-class variants — their derived `Debug`
/// renderings feed checkpoint fingerprints and warmup memo keys, so
/// existing CMCK artifacts and `--resume` journals stay valid.
/// `Hetero` is the composable shape: any sequence of [`AgentSpec`]
/// terms.
///
/// # Grammar
///
/// [`AgentMix::from_str`] and [`AgentMix::to_string`] round-trip a
/// compact spec grammar:
///
/// ```text
/// mix    := "parallel:" app | "bundle:" NAME | "alone:" app
///         | term ("+" term)*
/// term   := class [":" name] ["*" count] ["@" budget]
/// class  := "ooo" | "stream" | "bulk" | "prefetch"
/// ```
///
/// `ooo` terms name an application (`ooo:mcf*2`); the other classes
/// take an optional traffic profile (`prefetch:wild`) or, as sugar, a
/// bare count (`stream:2` == `stream*2`). `budget` is a decimal
/// slowdown bound (`@1.5`), resolved in thousandths.
///
/// # Examples
///
/// ```
/// use critmem::AgentMix;
///
/// let legacy: AgentMix = "bundle:RGTM".parse().unwrap();
/// assert_eq!(legacy, AgentMix::Bundle("RGTM"));
///
/// let mix: AgentMix = "ooo:mcf*2+stream:2@1.5".parse().unwrap();
/// assert_eq!(mix.ooo_count(), Some(2));
/// assert_eq!(mix.to_string(), "ooo:mcf*2+stream*2@1.5");
/// assert!("ooo:unknown-app".parse::<AgentMix>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentMix {
    /// One of the nine parallel apps (Table 2), all cores running its
    /// threads.
    Parallel(&'static str),
    /// A Table 4 bundle: four single-threaded apps on four cores.
    Bundle(&'static str),
    /// A single app alone on core 0 (for weighted-speedup baselines).
    Alone(&'static str),
    /// A composed heterogeneous mix of agent terms.
    Hetero(Vec<AgentSpec>),
}

/// Canonicalizes an application name usable by an OoO agent (bundle
/// apps, parallel apps, and the `chase` microbenchmark).
fn static_ooo_app(name: &str) -> Option<&'static str> {
    critmem_workloads::MULTI_APPS
        .iter()
        .chain(critmem_workloads::PARALLEL_APPS.iter())
        .chain(std::iter::once(&"chase"))
        .copied()
        .find(|a| *a == name)
}

fn unknown(kind: &'static str, name: impl Into<String>) -> critmem_common::SimError {
    critmem_common::SimError::UnknownWorkload {
        kind,
        name: name.into(),
    }
}

impl AgentMix {
    /// Number of OoO cores this mix requires, when the mix itself pins
    /// it: `Bundle` -> 4, `Alone` -> 1, `Hetero` -> the sum of its
    /// `ooo` counts. `Parallel` runs on however many cores the
    /// platform has, so it returns `None`.
    pub fn ooo_count(&self) -> Option<usize> {
        match self {
            AgentMix::Parallel(_) => None,
            AgentMix::Bundle(_) => Some(4),
            AgentMix::Alone(_) => Some(1),
            AgentMix::Hetero(specs) => Some(
                specs
                    .iter()
                    .filter(|s| s.class == AgentClass::Ooo)
                    .map(|s| s.count as usize)
                    .sum(),
            ),
        }
    }

    /// Number of non-core (accelerator-class) agents in the mix.
    pub fn agent_count(&self) -> usize {
        match self {
            AgentMix::Hetero(specs) => specs
                .iter()
                .filter(|s| s.class != AgentClass::Ooo)
                .map(|s| s.count as usize)
                .sum(),
            _ => 0,
        }
    }

    /// The hetero terms, when this is a [`AgentMix::Hetero`] mix.
    pub fn specs(&self) -> Option<&[AgentSpec]> {
        match self {
            AgentMix::Hetero(specs) => Some(specs),
            _ => None,
        }
    }

    /// Parses one hetero grammar term.
    fn parse_term(term: &str) -> Result<AgentSpec, critmem_common::SimError> {
        let term = term.trim();
        // Split off `@budget`, then `*count`, then `:name`.
        let (head, qos) = match term.rsplit_once('@') {
            Some((h, q)) => (
                h,
                parse_qos(q).ok_or_else(|| unknown("QoS budget", format!("{q} (in {term:?})")))?,
            ),
            None => (term, 0),
        };
        let (head, count) = match head.rsplit_once('*') {
            Some((h, c)) => (
                h,
                c.parse::<u32>()
                    .ok()
                    .filter(|&c| c >= 1)
                    .ok_or_else(|| unknown("agent count", format!("{c} (in {term:?})")))?,
            ),
            None => (head, 1),
        };
        let (class_word, name) = match head.split_once(':') {
            Some((c, n)) => (c, Some(n)),
            None => (head, None),
        };
        let class = AgentClass::parse(class_word)
            .ok_or_else(|| unknown("agent class", format!("{class_word} (in {term:?})")))?;
        if class == AgentClass::Ooo {
            let app =
                name.ok_or_else(|| unknown("application", format!("<missing> (in {term:?})")))?;
            let app = static_ooo_app(app).ok_or_else(|| unknown("application", app))?;
            return Ok(AgentSpec {
                class,
                profile: app,
                count,
                qos_millis: qos,
            });
        }
        // Sugar: a bare integer after the colon is a count
        // (`stream:2` == `stream*2`).
        let profile = match name {
            None => critmem_workloads::default_profile(class).expect("non-ooo default"),
            Some(n) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                let sugar: u32 = n.parse().map_err(|_| unknown("agent count", n))?;
                if sugar < 1 || count != 1 {
                    return Err(unknown("agent count", format!("{n} (in {term:?})")));
                }
                return Ok(AgentSpec {
                    class,
                    profile: critmem_workloads::default_profile(class).expect("non-ooo default"),
                    count: sugar,
                    qos_millis: qos,
                });
            }
            Some(n) => critmem_workloads::resolve_profile(class, n)
                .ok_or_else(|| unknown("agent profile", format!("{n} (for {class})")))?,
        };
        Ok(AgentSpec {
            class,
            profile,
            count,
            qos_millis: qos,
        })
    }
}

impl std::str::FromStr for AgentMix {
    type Err = critmem_common::SimError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some(app) = s.strip_prefix("parallel:") {
            let app = critmem_workloads::PARALLEL_APPS
                .iter()
                .copied()
                .find(|a| *a == app)
                .ok_or_else(|| unknown("parallel app", app))?;
            return Ok(AgentMix::Parallel(app));
        }
        if let Some(name) = s.strip_prefix("bundle:") {
            let b = critmem_workloads::bundle(name).ok_or_else(|| unknown("bundle", name))?;
            return Ok(AgentMix::Bundle(b.name));
        }
        if let Some(app) = s.strip_prefix("alone:") {
            let app = static_ooo_app(app).ok_or_else(|| unknown("application", app))?;
            return Ok(AgentMix::Alone(app));
        }
        if s.is_empty() {
            return Err(unknown("agent mix", "<empty>"));
        }
        let specs = s
            .split('+')
            .map(Self::parse_term)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AgentMix::Hetero(specs))
    }
}

impl std::fmt::Display for AgentMix {
    /// The canonical grammar rendering; [`AgentMix::from_str`] parses
    /// it back to an equal value.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentMix::Parallel(app) => write!(f, "parallel:{app}"),
            AgentMix::Bundle(name) => write!(f, "bundle:{name}"),
            AgentMix::Alone(app) => write!(f, "alone:{app}"),
            AgentMix::Hetero(specs) => {
                for (i, spec) in specs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("+")?;
                    }
                    spec.write_term(f)?;
                }
                Ok(())
            }
        }
    }
}

/// Complete system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core microarchitecture (Table 1).
    pub core: CoreConfig,
    /// Cache hierarchy (Tables 1 and 3).
    pub hierarchy: HierarchyConfig,
    /// DRAM subsystem (Table 3).
    pub dram: DramConfig,
    /// CPU clock in MHz (Table 1: 4.27 GHz).
    pub cpu_mhz: u64,
    /// Memory scheduler.
    pub scheduler: SchedulerKind,
    /// Per-core criticality predictor.
    pub predictor: PredictorKind,
    /// Instructions each core must commit before the run ends.
    pub instructions_per_core: u64,
    /// Master seed for all per-thread RNGs.
    pub seed: u64,
    /// §5.1 naive forwarding: notify the controller when a load starts
    /// blocking the ROB head (no predictor involved).
    pub naive_forwarding: bool,
    /// Side-channel latency for naive forwarding, in CPU cycles.
    pub forward_latency: u64,
    /// Safety valve: abort the run after this many CPU cycles.
    pub max_cycles: u64,
    /// When set, sample every registered metric each `N` CPU cycles
    /// into an in-memory time series ([`crate::RunStats::series`]).
    /// `None` (the default) disables sampling entirely.
    pub sample_epoch: Option<u64>,
    /// Forward-progress watchdog thresholds (livelock detection). The
    /// defaults trip only on pathological runs; use
    /// [`critmem_common::WatchdogConfig::disabled`] to turn the checks
    /// off entirely.
    pub watchdog: critmem_common::WatchdogConfig,
    /// Worker threads for the sharded DRAM tick. `1` (the default)
    /// keeps the tick serial; values above one partition the channels
    /// across a scoped worker pool with a cycle barrier at the
    /// L2↔controller boundary. Output is byte-identical at any shard
    /// count — this is purely a wall-clock knob, so it is deliberately
    /// excluded from checkpoint fingerprints and sweep memo keys.
    pub shards: usize,
    /// Event-driven skip-ahead: when every component reports a quiet
    /// window, batch-advance the clock to the next event horizon
    /// instead of stepping cycle by cycle. Byte-identical to serial
    /// stepping by construction (and asserted by the identity suite);
    /// also excluded from checkpoint fingerprints and memo keys.
    pub skip_ahead: bool,
    /// Independent run auditing: attach a shadow protocol auditor to
    /// every DRAM channel and a request-conservation auditor to the
    /// L2↔controller boundary. Audited runs are byte-identical in
    /// exported statistics to unaudited ones — the auditors only watch —
    /// so, like [`SystemConfig::shards`] and
    /// [`SystemConfig::skip_ahead`], this knob is excluded from
    /// checkpoint fingerprints and sweep memo keys. A violation
    /// surfaces as a typed [`critmem_common::SimError::AuditViolation`].
    pub audit: bool,
}

impl SystemConfig {
    /// The paper's 8-core parallel-workload baseline: FR-FCFS, no
    /// predictor, quad-channel DDR3-2133.
    pub fn paper_baseline(instructions_per_core: u64) -> Self {
        SystemConfig {
            cores: 8,
            core: CoreConfig::paper_baseline(),
            hierarchy: HierarchyConfig::paper_baseline(8),
            dram: DramConfig::paper_baseline(),
            cpu_mhz: 4_270,
            scheduler: SchedulerKind::FrFcfs,
            predictor: PredictorKind::None,
            instructions_per_core,
            seed: 0x15CA_2013,
            naive_forwarding: false,
            forward_latency: 24,
            max_cycles: u64::MAX,
            sample_epoch: None,
            watchdog: critmem_common::WatchdogConfig::default(),
            shards: 1,
            skip_ahead: true,
            audit: false,
        }
    }

    /// The quad-core multiprogrammed configuration of §5.8.2: half the
    /// channels (2), half the L2 MSHRs (32), PAR-BS marking cap 5.
    pub fn multiprogrammed_baseline(instructions_per_core: u64) -> Self {
        let mut cfg = Self::paper_baseline(instructions_per_core);
        cfg.cores = 4;
        cfg.hierarchy = HierarchyConfig::paper_baseline(4);
        cfg.hierarchy.l2_mshrs = 32;
        cfg.dram.org.channels = 2;
        cfg.scheduler = SchedulerKind::ParBs { marking_cap: 5 };
        cfg
    }

    /// Enables the §5.5 L2 stream prefetcher (builder style).
    #[must_use]
    pub fn with_prefetcher(mut self) -> Self {
        self.hierarchy.prefetch = Some(PrefetchConfig::default());
        self
    }

    /// Sets the scheduler (builder style).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the predictor (builder style).
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Enables metric sampling every `epoch` CPU cycles (builder
    /// style).
    #[must_use]
    pub fn with_sampling(mut self, epoch: u64) -> Self {
        self.sample_epoch = Some(epoch);
        self
    }

    /// Sets the DRAM-tick shard count (builder style). The effective
    /// worker count is clamped to the channel count at system build
    /// time, so oversizing is harmless.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables the independent run auditors (builder style).
    #[must_use]
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        self.dram.validate()?;
        // `cores == 0` is legal: an agent-only [`AgentMix::Hetero`]
        // run (the alone baseline for accelerator-class agents) has no
        // OoO cores at all. The system build rejects zero-core runs of
        // workloads that need cores.
        if self.cores != self.hierarchy.num_cores {
            return Err(format!(
                "core count ({}) must match hierarchy ({})",
                self.cores, self.hierarchy.num_cores
            ));
        }
        if self.cpu_mhz < self.dram.preset.bus_mhz {
            return Err("CPU clock must be at least the DRAM bus clock".into());
        }
        if self.instructions_per_core == 0 {
            return Err("instruction target must be nonzero".into());
        }
        if self.sample_epoch == Some(0) {
            return Err("sampling epoch must be nonzero".into());
        }
        if self.watchdog.enabled() && self.watchdog.check_interval == 0 {
            return Err("watchdog check interval must be nonzero".into());
        }
        if self.shards == 0 {
            return Err("shard count must be nonzero (1 = serial tick)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_validate() {
        SystemConfig::paper_baseline(1000).validate().unwrap();
        SystemConfig::multiprogrammed_baseline(1000)
            .validate()
            .unwrap();
    }

    #[test]
    fn multiprogrammed_halves_resources() {
        let c = SystemConfig::multiprogrammed_baseline(1000);
        assert_eq!(c.cores, 4);
        assert_eq!(c.dram.org.channels, 2);
        assert_eq!(c.hierarchy.l2_mshrs, 32);
        assert_eq!(c.scheduler, SchedulerKind::ParBs { marking_cap: 5 });
    }

    #[test]
    fn validation_rejects_zero_shards() {
        let mut c = SystemConfig::paper_baseline(1000);
        assert_eq!(c.shards, 1, "default tick is serial");
        assert!(c.skip_ahead, "skip-ahead is on by default");
        c.shards = 0;
        assert!(c.validate().is_err());
        assert!(SystemConfig::paper_baseline(1000).with_shards(4).shards == 4);
    }

    #[test]
    fn validation_catches_core_mismatch() {
        let mut c = SystemConfig::paper_baseline(1000);
        c.cores = 4; // hierarchy still sized for 8
        assert!(c.validate().is_err());
    }

    #[test]
    fn mix_grammar_parses_legacy_shapes() {
        assert_eq!(
            "parallel:swim".parse::<AgentMix>().unwrap(),
            AgentMix::Parallel("swim")
        );
        assert_eq!(
            "bundle:RGTM".parse::<AgentMix>().unwrap(),
            AgentMix::Bundle("RGTM")
        );
        assert_eq!(
            "alone:mcf".parse::<AgentMix>().unwrap(),
            AgentMix::Alone("mcf")
        );
        for bad in ["parallel:mcf", "bundle:XXXX", "alone:nope", ""] {
            assert!(
                matches!(
                    bad.parse::<AgentMix>(),
                    Err(critmem_common::SimError::UnknownWorkload { .. })
                ),
                "{bad:?} must be a typed error"
            );
        }
    }

    #[test]
    fn mix_grammar_parses_hetero_terms() {
        let mix: AgentMix = "ooo:swim*4+stream:2".parse().unwrap();
        assert_eq!(mix.ooo_count(), Some(4));
        assert_eq!(mix.agent_count(), 2);
        let specs = mix.specs().unwrap();
        assert_eq!(specs[0], AgentSpec::ooo("swim").with_count(4));
        assert_eq!(specs[1], AgentSpec::agent(AgentClass::Stream).with_count(2));

        let mix: AgentMix = "ooo:mcf+prefetch:wild@2.5+bulk".parse().unwrap();
        let specs = mix.specs().unwrap();
        assert_eq!(specs[1].profile, "wild");
        assert_eq!(specs[1].qos_millis, 2_500);
        assert_eq!(specs[2], AgentSpec::agent(AgentClass::Bulk));
        assert_eq!(
            specs[2].effective_qos_millis(),
            AgentClass::Bulk.default_qos_millis()
        );

        for bad in [
            "ooo",           // ooo needs an app
            "ooo:nosuchapp", // unknown app
            "stream:nope",   // unknown profile
            "gpu:2",         // unknown class
            "stream*0",      // zero count
            "stream:2*3",    // count sugar + explicit count
            "stream@1.2345", // too many budget digits
        ] {
            assert!(
                matches!(
                    bad.parse::<AgentMix>(),
                    Err(critmem_common::SimError::UnknownWorkload { .. })
                ),
                "{bad:?} must be a typed error"
            );
        }
    }

    /// Display -> FromStr round-trip over a systematic property sweep:
    /// every class x profile x count x budget combination the grammar
    /// can express must print to a string that parses back to an equal
    /// mix (and printing is a fixed point).
    #[test]
    fn mix_grammar_round_trips() {
        let mut mixes = vec![
            AgentMix::Parallel("swim"),
            AgentMix::Bundle("RGTM"),
            AgentMix::Alone("mcf"),
        ];
        let classes = [AgentClass::Stream, AgentClass::Bulk, AgentClass::Prefetch];
        for class in classes {
            for &profile in critmem_workloads::agent_profiles(class) {
                for count in [1, 2, 7] {
                    for qos in [0u32, 500, 1_000, 1_500, 2_125, 10_000] {
                        let spec = AgentSpec {
                            class,
                            profile,
                            count,
                            qos_millis: qos,
                        };
                        mixes.push(AgentMix::Hetero(vec![
                            AgentSpec::ooo("mcf").with_count(2),
                            spec,
                        ]));
                    }
                }
            }
        }
        mixes.push(AgentMix::Hetero(vec![
            AgentSpec::ooo("art1"),
            AgentSpec::ooo("mcf"),
            AgentSpec::agent(AgentClass::Stream).with_qos_millis(1_500),
            AgentSpec::agent(AgentClass::Bulk).with_count(3),
            AgentSpec::agent(AgentClass::Prefetch),
        ]));
        for mix in mixes {
            let text = mix.to_string();
            let parsed: AgentMix = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, mix, "round trip through {text:?}");
            assert_eq!(parsed.to_string(), text, "printing is a fixed point");
        }
    }

    #[test]
    fn qos_text_is_exact() {
        for (millis, text) in [
            (3_000, "3"),
            (1_500, "1.5"),
            (2_125, "2.125"),
            (500, "0.5"),
            (10, "0.01"),
        ] {
            assert_eq!(super::fmt_qos(millis), text);
            assert_eq!(super::parse_qos(text), Some(millis));
        }
        assert_eq!(super::parse_qos("1.2345"), None);
        assert_eq!(super::parse_qos(""), None);
        assert_eq!(super::parse_qos("x.5"), None);
    }

    #[test]
    fn legacy_debug_renderings_are_stable() {
        // Checkpoint fingerprints and warmup memo keys embed the
        // workload's Debug form; the three legacy shapes must render
        // exactly as the retired `WorkloadKind` did.
        assert_eq!(
            format!("{:?}", AgentMix::Parallel("swim")),
            "Parallel(\"swim\")"
        );
        assert_eq!(
            format!("{:?}", AgentMix::Bundle("RGTM")),
            "Bundle(\"RGTM\")"
        );
        assert_eq!(format!("{:?}", AgentMix::Alone("mcf")), "Alone(\"mcf\")");
    }

    #[test]
    fn zero_core_config_validates_for_agent_only_mixes() {
        let mut c = SystemConfig::paper_baseline(1000);
        c.cores = 0;
        c.hierarchy = HierarchyConfig::paper_baseline(0);
        c.validate().unwrap();
    }

    #[test]
    fn predictor_names() {
        assert_eq!(PredictorKind::None.name(), "none");
        assert_eq!(
            PredictorKind::cbp64(CbpMetric::MaxStallTime).name(),
            "MaxStallTime CBP (64-entry)"
        );
        assert_eq!(
            PredictorKind::Clpt(ClptMode::Binary { threshold: 3 }).name(),
            "CLPT-Binary(t=3)"
        );
    }
}
