//! Full-system configuration: the Tables 1 + 3 platform, the workload,
//! the scheduler, and the processor-side predictor.

use critmem_cache::{HierarchyConfig, PrefetchConfig};
use critmem_cpu::CoreConfig;
use critmem_dram::DramConfig;
use critmem_predict::{CbpMetric, ClptMode, TableSize};
use critmem_sched::SchedulerKind;

/// Which processor-side criticality predictor each core carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// No predictor: all requests non-critical (FR-FCFS baseline).
    None,
    /// The Commit Block Predictor (§3).
    Cbp {
        /// Annotation metric.
        metric: CbpMetric,
        /// Table geometry.
        size: TableSize,
        /// Optional periodic reset interval in CPU cycles (§5.3.2).
        reset_interval: Option<u64>,
    },
    /// Subramaniam et al.'s consumer-count predictor (§2).
    Clpt(ClptMode),
}

impl PredictorKind {
    /// The paper's default 64-entry CBP with the given metric.
    pub fn cbp64(metric: CbpMetric) -> Self {
        PredictorKind::Cbp {
            metric,
            size: TableSize::Entries(64),
            reset_interval: None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            PredictorKind::None => "none".into(),
            PredictorKind::Cbp {
                metric,
                size,
                reset_interval,
            } => {
                let size = match size {
                    TableSize::Entries(n) => format!("{n}-entry"),
                    TableSize::Unlimited => "unlimited".into(),
                };
                let reset = if reset_interval.is_some() {
                    "+reset"
                } else {
                    ""
                };
                format!("{} CBP ({size}){reset}", metric.name())
            }
            PredictorKind::Clpt(ClptMode::Binary { threshold }) => {
                format!("CLPT-Binary(t={threshold})")
            }
            PredictorKind::Clpt(ClptMode::Consumers { .. }) => "CLPT-Consumers".into(),
        }
    }
}

impl std::str::FromStr for PredictorKind {
    type Err = critmem_common::SimError;

    /// Parses a predictor name: `none`, or a CBP annotation metric
    /// (`binary`, `blockcount`, `laststalltime`, `maxstalltime`,
    /// `totalstalltime`) mapped to the paper's 64-entry table.
    /// Case-insensitive.
    ///
    /// # Examples
    ///
    /// ```
    /// use critmem::PredictorKind;
    /// use critmem_predict::CbpMetric;
    /// let p: PredictorKind = "maxstalltime".parse().unwrap();
    /// assert_eq!(p, PredictorKind::cbp64(CbpMetric::MaxStallTime));
    /// assert!("nope".parse::<PredictorKind>().is_err());
    /// ```
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        let metric = match name.to_ascii_lowercase().as_str() {
            "none" => return Ok(PredictorKind::None),
            "binary" => CbpMetric::Binary,
            "blockcount" => CbpMetric::BlockCount,
            "laststalltime" => CbpMetric::LastStallTime,
            "maxstalltime" => CbpMetric::MaxStallTime,
            "totalstalltime" => CbpMetric::TotalStallTime,
            _ => {
                return Err(critmem_common::SimError::Config(format!(
                    "unknown predictor {name:?} (expected none, binary, blockcount, \
                     laststalltime, maxstalltime, or totalstalltime)"
                )))
            }
        };
        Ok(PredictorKind::cbp64(metric))
    }
}

/// The workload to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadKind {
    /// One of the nine parallel apps (Table 2), all cores running its
    /// threads.
    Parallel(&'static str),
    /// A Table 4 bundle: four single-threaded apps on four cores.
    Bundle(&'static str),
    /// A single app alone on core 0 (for weighted-speedup baselines).
    Alone(&'static str),
}

/// Complete system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core microarchitecture (Table 1).
    pub core: CoreConfig,
    /// Cache hierarchy (Tables 1 and 3).
    pub hierarchy: HierarchyConfig,
    /// DRAM subsystem (Table 3).
    pub dram: DramConfig,
    /// CPU clock in MHz (Table 1: 4.27 GHz).
    pub cpu_mhz: u64,
    /// Memory scheduler.
    pub scheduler: SchedulerKind,
    /// Per-core criticality predictor.
    pub predictor: PredictorKind,
    /// Instructions each core must commit before the run ends.
    pub instructions_per_core: u64,
    /// Master seed for all per-thread RNGs.
    pub seed: u64,
    /// §5.1 naive forwarding: notify the controller when a load starts
    /// blocking the ROB head (no predictor involved).
    pub naive_forwarding: bool,
    /// Side-channel latency for naive forwarding, in CPU cycles.
    pub forward_latency: u64,
    /// Safety valve: abort the run after this many CPU cycles.
    pub max_cycles: u64,
    /// When set, sample every registered metric each `N` CPU cycles
    /// into an in-memory time series ([`crate::RunStats::series`]).
    /// `None` (the default) disables sampling entirely.
    pub sample_epoch: Option<u64>,
    /// Forward-progress watchdog thresholds (livelock detection). The
    /// defaults trip only on pathological runs; use
    /// [`critmem_common::WatchdogConfig::disabled`] to turn the checks
    /// off entirely.
    pub watchdog: critmem_common::WatchdogConfig,
    /// Worker threads for the sharded DRAM tick. `1` (the default)
    /// keeps the tick serial; values above one partition the channels
    /// across a scoped worker pool with a cycle barrier at the
    /// L2↔controller boundary. Output is byte-identical at any shard
    /// count — this is purely a wall-clock knob, so it is deliberately
    /// excluded from checkpoint fingerprints and sweep memo keys.
    pub shards: usize,
    /// Event-driven skip-ahead: when every component reports a quiet
    /// window, batch-advance the clock to the next event horizon
    /// instead of stepping cycle by cycle. Byte-identical to serial
    /// stepping by construction (and asserted by the identity suite);
    /// also excluded from checkpoint fingerprints and memo keys.
    pub skip_ahead: bool,
    /// Independent run auditing: attach a shadow protocol auditor to
    /// every DRAM channel and a request-conservation auditor to the
    /// L2↔controller boundary. Audited runs are byte-identical in
    /// exported statistics to unaudited ones — the auditors only watch —
    /// so, like [`SystemConfig::shards`] and
    /// [`SystemConfig::skip_ahead`], this knob is excluded from
    /// checkpoint fingerprints and sweep memo keys. A violation
    /// surfaces as a typed [`critmem_common::SimError::AuditViolation`].
    pub audit: bool,
}

impl SystemConfig {
    /// The paper's 8-core parallel-workload baseline: FR-FCFS, no
    /// predictor, quad-channel DDR3-2133.
    pub fn paper_baseline(instructions_per_core: u64) -> Self {
        SystemConfig {
            cores: 8,
            core: CoreConfig::paper_baseline(),
            hierarchy: HierarchyConfig::paper_baseline(8),
            dram: DramConfig::paper_baseline(),
            cpu_mhz: 4_270,
            scheduler: SchedulerKind::FrFcfs,
            predictor: PredictorKind::None,
            instructions_per_core,
            seed: 0x15CA_2013,
            naive_forwarding: false,
            forward_latency: 24,
            max_cycles: u64::MAX,
            sample_epoch: None,
            watchdog: critmem_common::WatchdogConfig::default(),
            shards: 1,
            skip_ahead: true,
            audit: false,
        }
    }

    /// The quad-core multiprogrammed configuration of §5.8.2: half the
    /// channels (2), half the L2 MSHRs (32), PAR-BS marking cap 5.
    pub fn multiprogrammed_baseline(instructions_per_core: u64) -> Self {
        let mut cfg = Self::paper_baseline(instructions_per_core);
        cfg.cores = 4;
        cfg.hierarchy = HierarchyConfig::paper_baseline(4);
        cfg.hierarchy.l2_mshrs = 32;
        cfg.dram.org.channels = 2;
        cfg.scheduler = SchedulerKind::ParBs { marking_cap: 5 };
        cfg
    }

    /// Enables the §5.5 L2 stream prefetcher (builder style).
    #[must_use]
    pub fn with_prefetcher(mut self) -> Self {
        self.hierarchy.prefetch = Some(PrefetchConfig::default());
        self
    }

    /// Sets the scheduler (builder style).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the predictor (builder style).
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Enables metric sampling every `epoch` CPU cycles (builder
    /// style).
    #[must_use]
    pub fn with_sampling(mut self, epoch: u64) -> Self {
        self.sample_epoch = Some(epoch);
        self
    }

    /// Sets the DRAM-tick shard count (builder style). The effective
    /// worker count is clamped to the channel count at system build
    /// time, so oversizing is harmless.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables the independent run auditors (builder style).
    #[must_use]
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        self.dram.validate()?;
        if self.cores == 0 || self.cores != self.hierarchy.num_cores {
            return Err(format!(
                "core count ({}) must match hierarchy ({})",
                self.cores, self.hierarchy.num_cores
            ));
        }
        if self.cpu_mhz < self.dram.preset.bus_mhz {
            return Err("CPU clock must be at least the DRAM bus clock".into());
        }
        if self.instructions_per_core == 0 {
            return Err("instruction target must be nonzero".into());
        }
        if self.sample_epoch == Some(0) {
            return Err("sampling epoch must be nonzero".into());
        }
        if self.watchdog.enabled() && self.watchdog.check_interval == 0 {
            return Err("watchdog check interval must be nonzero".into());
        }
        if self.shards == 0 {
            return Err("shard count must be nonzero (1 = serial tick)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_validate() {
        SystemConfig::paper_baseline(1000).validate().unwrap();
        SystemConfig::multiprogrammed_baseline(1000)
            .validate()
            .unwrap();
    }

    #[test]
    fn multiprogrammed_halves_resources() {
        let c = SystemConfig::multiprogrammed_baseline(1000);
        assert_eq!(c.cores, 4);
        assert_eq!(c.dram.org.channels, 2);
        assert_eq!(c.hierarchy.l2_mshrs, 32);
        assert_eq!(c.scheduler, SchedulerKind::ParBs { marking_cap: 5 });
    }

    #[test]
    fn validation_rejects_zero_shards() {
        let mut c = SystemConfig::paper_baseline(1000);
        assert_eq!(c.shards, 1, "default tick is serial");
        assert!(c.skip_ahead, "skip-ahead is on by default");
        c.shards = 0;
        assert!(c.validate().is_err());
        assert!(SystemConfig::paper_baseline(1000).with_shards(4).shards == 4);
    }

    #[test]
    fn validation_catches_core_mismatch() {
        let mut c = SystemConfig::paper_baseline(1000);
        c.cores = 4; // hierarchy still sized for 8
        assert!(c.validate().is_err());
    }

    #[test]
    fn predictor_names() {
        assert_eq!(PredictorKind::None.name(), "none");
        assert_eq!(
            PredictorKind::cbp64(CbpMetric::MaxStallTime).name(),
            "MaxStallTime CBP (64-entry)"
        );
        assert_eq!(
            PredictorKind::Clpt(ClptMode::Binary { threshold: 3 }).name(),
            "CLPT-Binary(t=3)"
        );
    }
}
