//! A dependency-free scoped worker pool.
//!
//! The experiment engine fans independent simulations out across
//! threads without pulling in rayon (this is an offline, zero-dep
//! build): [`scoped_map`] runs a closure over a work list on `jobs`
//! scoped threads and hands the results back **in input order**, so
//! callers can merge them deterministically regardless of which worker
//! finished first.
//!
//! [`scoped_map_isolated`] adds fault isolation on top: a panic in one
//! cell is caught ([`std::panic::catch_unwind`]), retried a bounded
//! number of times (the simulator is deterministic, so retries only
//! help against nondeterministic faults — but they are cheap and make
//! the policy explicit), and finally reported as a per-cell
//! [`SimError::CellPanic`] while every other cell completes normally.

use critmem_common::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The persistent barrier pool behind the sharded DRAM tick
/// ([`critmem_dram::DramSystem::tick_sharded`]) — re-exported here so
/// both parallelism layers (sweep-level `scoped_map*`, tick-level
/// sharding) are reachable from one module.
pub use critmem_common::ShardPool;

/// How many times [`scoped_map_isolated`] attempts a cell before
/// reporting its panic (1 initial run + 1 retry).
pub const MAX_ATTEMPTS: u32 = 2;

/// The default worker count: the machine's available parallelism, or 1
/// if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using up to `jobs` worker
/// threads, returning the outputs in input order.
///
/// Work is distributed by an atomic claim index (workers pull the next
/// unclaimed item), so an uneven mix of long and short simulations
/// still load-balances. With `jobs <= 1` (or a single item) everything
/// runs on the calling thread — byte-for-byte the serial path.
///
/// # Panics
///
/// Propagates a panic from any worker once all workers have joined
/// (the semantics of [`std::thread::scope`]).
pub fn scoped_map<I, O, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker exited without producing a result")
        })
        .collect()
}

/// Renders a panic payload as text (the common `&str` / `String` cases,
/// with a fallback for exotic payloads).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one cell under [`catch_unwind`] with bounded deterministic
/// retry.
fn run_isolated<I, O, F>(f: &F, item: &I) -> Result<O, SimError>
where
    F: Fn(&I) -> O,
{
    let mut last_payload = String::new();
    for _ in 0..MAX_ATTEMPTS {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(out) => return Ok(out),
            Err(payload) => last_payload = payload_text(payload.as_ref()),
        }
    }
    Err(SimError::CellPanic {
        payload: last_payload,
        attempts: MAX_ATTEMPTS,
    })
}

/// Fault-isolated variant of [`scoped_map`]: applies `f` to every item
/// on up to `jobs` worker threads, catching panics per cell. A
/// panicking cell is retried up to [`MAX_ATTEMPTS`] times total, then
/// reported as `Err(SimError::CellPanic)` in its input-order slot —
/// the other cells are unaffected.
///
/// `f` takes the item by reference (items must survive a retry), and
/// must be unwind-safe in the practical sense: the simulator
/// constructs all of its state inside the closure, so a panic cannot
/// leave shared state half-mutated.
///
/// The serial path (`jobs <= 1` or a single item) applies the same
/// isolation on the calling thread, so failure semantics do not depend
/// on the job count.
pub fn scoped_map_isolated<I, O, F>(jobs: usize, items: &[I], f: F) -> Vec<Result<O, SimError>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().map(|item| run_isolated(&f, item)).collect();
    }
    let outputs: Vec<Mutex<Option<Result<O, SimError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run_isolated(f, &items[i]);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker exited without producing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = scoped_map(4, (0..100).collect(), |i: u64| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Vec<u64> = (0..17).collect();
        let a = scoped_map(1, items.clone(), |i| i + 1);
        let b = scoped_map(8, items, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(scoped_map(4, Vec::<u8>::new(), |i| i), Vec::<u8>::new());
        assert_eq!(scoped_map(4, vec![7u8], |i| i), vec![7]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = scoped_map(32, vec![1u8, 2, 3], |i| i);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn isolated_panics_are_contained_per_cell() {
        let items: Vec<u64> = (0..16).collect();
        let out = scoped_map_isolated(4, &items, |&i| {
            if i == 7 {
                panic!("cell {i} exploded");
            }
            i * 10
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let err = r.as_ref().unwrap_err();
                let msg = err.to_string();
                assert!(msg.contains("cell 7 exploded"), "{msg}");
                assert!(
                    matches!(
                        err,
                        SimError::CellPanic {
                            attempts: MAX_ATTEMPTS,
                            ..
                        }
                    ),
                    "{err:?}"
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 10);
            }
        }
    }

    #[test]
    fn isolated_serial_and_parallel_agree() {
        let items: Vec<u64> = (0..9).collect();
        let run = |jobs| {
            scoped_map_isolated(jobs, &items, |&i| {
                if i % 4 == 2 {
                    panic!("boom {i}");
                }
                i + 1
            })
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn isolated_transient_panic_recovers_on_retry() {
        use std::sync::atomic::AtomicBool;
        let flaky = AtomicBool::new(true);
        let items = vec![0u8];
        let out = scoped_map_isolated(1, &items, |_| {
            if flaky.swap(false, Ordering::SeqCst) {
                panic!("transient fault");
            }
            42
        });
        assert_eq!(*out[0].as_ref().unwrap(), 42);
    }
}
