//! A dependency-free scoped worker pool.
//!
//! The experiment engine fans independent simulations out across
//! threads without pulling in rayon (this is an offline, zero-dep
//! build): [`scoped_map`] runs a closure over a work list on `jobs`
//! scoped threads and hands the results back **in input order**, so
//! callers can merge them deterministically regardless of which worker
//! finished first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism, or 1
/// if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using up to `jobs` worker
/// threads, returning the outputs in input order.
///
/// Work is distributed by an atomic claim index (workers pull the next
/// unclaimed item), so an uneven mix of long and short simulations
/// still load-balances. With `jobs <= 1` (or a single item) everything
/// runs on the calling thread — byte-for-byte the serial path.
///
/// # Panics
///
/// Propagates a panic from any worker once all workers have joined
/// (the semantics of [`std::thread::scope`]).
pub fn scoped_map<I, O, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker exited without producing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = scoped_map(4, (0..100).collect(), |i: u64| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Vec<u64> = (0..17).collect();
        let a = scoped_map(1, items.clone(), |i| i + 1);
        let b = scoped_map(8, items, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(scoped_map(4, Vec::<u8>::new(), |i| i), Vec::<u8>::new());
        assert_eq!(scoped_map(4, vec![7u8], |i| i), vec![7]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = scoped_map(32, vec![1u8, 2, 3], |i| i);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
