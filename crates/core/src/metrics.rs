//! Evaluation metrics: speedups, averages, and the weighted-speedup /
//! maximum-slowdown metrics used for multiprogrammed workloads
//! (Snavely & Tullsen, as the paper does in §5.8.2).

use crate::system::RunStats;

/// Speedup of `variant` over `baseline` by total execution time.
pub fn speedup(baseline: &RunStats, variant: &RunStats) -> f64 {
    baseline.cycles as f64 / variant.cycles as f64
}

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics if the slice is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Which average a report uses (the paper reports arithmetic averages
/// of speedups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Average {
    /// Arithmetic mean.
    Arithmetic,
    /// Geometric mean.
    Geometric,
}

impl Average {
    /// Applies the average.
    pub fn apply(self, values: &[f64]) -> f64 {
        match self {
            Average::Arithmetic => mean(values),
            Average::Geometric => geomean(values),
        }
    }
}

/// Weighted speedup of a multiprogrammed run: `Σ IPC_shared / IPC_alone`.
///
/// `alone_ipc[i]` must be the IPC of application *i* running alone on
/// the baseline (PAR-BS) configuration, as the paper specifies.
///
/// # Panics
///
/// Panics if the lengths differ or any alone-IPC is non-positive.
pub fn weighted_speedup(shared: &RunStats, alone_ipc: &[f64]) -> f64 {
    assert_eq!(
        shared.cores.len(),
        alone_ipc.len(),
        "per-app IPC length mismatch"
    );
    shared
        .core_finish
        .iter()
        .enumerate()
        .map(|(i, _)| {
            assert!(alone_ipc[i] > 0.0, "alone IPC must be positive");
            shared.ipc(i) / alone_ipc[i]
        })
        .sum()
}

/// Maximum slowdown of a multiprogrammed run: `max_i IPC_alone / IPC_shared`
/// — TCM's fairness metric.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_slowdown(shared: &RunStats, alone_ipc: &[f64]) -> f64 {
    assert_eq!(
        shared.cores.len(),
        alone_ipc.len(),
        "per-app IPC length mismatch"
    );
    (0..alone_ipc.len())
        .map(|i| alone_ipc[i] / shared.ipc(i))
        .fold(0.0f64, f64::max)
}

/// Harmonic speedup of a multiprogrammed run:
/// `N / Σ_i IPC_alone_i / IPC_shared_i` (Luo, Gummaraju & Franklin) —
/// the balanced performance–fairness metric: it rewards throughput but
/// collapses toward the slowest application, so a run that sacrifices
/// one application for the others scores poorly.
///
/// # Panics
///
/// Panics if the lengths differ or the slice is empty.
pub fn harmonic_speedup(shared: &RunStats, alone_ipc: &[f64]) -> f64 {
    assert_eq!(
        shared.cores.len(),
        alone_ipc.len(),
        "per-app IPC length mismatch"
    );
    assert!(!alone_ipc.is_empty(), "harmonic speedup of zero apps");
    let slowdown_sum: f64 = (0..alone_ipc.len())
        .map(|i| alone_ipc[i] / shared.ipc(i))
        .sum();
    alone_ipc.len() as f64 / slowdown_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known_value() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_known_value() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn averages_dispatch() {
        let v = [1.0, 4.0];
        assert!((Average::Arithmetic.apply(&v) - 2.5).abs() < 1e-12);
        assert!((Average::Geometric.apply(&v) - 2.0).abs() < 1e-12);
    }
}
