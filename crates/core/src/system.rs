//! The assembled system: cores + cache hierarchy + DRAM, advanced in
//! lock-step under the CPU clock with the DRAM channels ticking on the
//! divided bus clock.

use crate::audit::ConservationAuditor;
use crate::config::{AgentMix, PredictorKind, SystemConfig};
use crate::faults::{FaultKind, FaultPlan};
use critmem_cache::CacheHierarchy;
use critmem_common::codec::{ByteReader, ByteWriter, CodecError};
use critmem_common::{
    AccessKind, BankId, ClockDivider, CoreId, CpuCycle, Criticality, MemRequest, MetricVisitor,
    Observable, RankId, RequestObserver, Sampler, Schema, SeriesSet, ShardPool, SimError, Snapshot,
    WatchdogReason, WatchdogSnapshot,
};
use critmem_cpu::{
    AgentClass, AgentStats, CbpPredictor, ClptPredictor, Core, CoreStats, InstrSource,
    LoadCriticalityPredictor, MemoryAgent, NoPredictor,
};
use critmem_dram::{ChannelStats, DramSystem};
use critmem_predict::{Clpt, CommitBlockPredictor};
use critmem_workloads::{build_agent, multi_app, parallel_app, target_units_for, AppThread};
use std::collections::VecDeque;

/// Aggregated result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// CPU cycle at which every core had committed its target.
    pub cycles: u64,
    /// Per-core CPU cycle at which the target was reached.
    pub core_finish: Vec<u64>,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Cache-hierarchy statistics.
    pub hierarchy: critmem_cache::HierarchyStats,
    /// Per-channel DRAM statistics.
    pub channels: Vec<ChannelStats>,
    /// Per-core cycles during which the load queue was full.
    pub lq_full_cycles: Vec<u64>,
    /// Instruction target per core.
    pub instructions_per_core: u64,
    /// Per-core `(max counter value, bits)` observed by the predictor
    /// (Table 5), if it has counters.
    pub predictor_observed: Vec<Option<(u64, u32)>>,
    /// Cycle-sampled metric time series, present when
    /// [`SystemConfig::sample_epoch`] was set.
    pub series: Option<SeriesSet>,
    /// Per-agent statistics for the non-OoO agents of a heterogeneous
    /// mix, in agent-index order. Empty for core-only workloads.
    pub agents: Vec<AgentStats>,
}

impl RunStats {
    /// IPC of one core over its measured window. Zero for a run that
    /// never stepped (the core's finish cycle is zero).
    pub fn ipc(&self, core: usize) -> f64 {
        if self.core_finish[core] == 0 {
            0.0
        } else {
            self.instructions_per_core as f64 / self.core_finish[core] as f64
        }
    }

    /// Fraction of committed loads that long-blocked the ROB head
    /// (Figure 1, left panel), averaged over cores.
    pub fn blocked_load_fraction(&self) -> f64 {
        let loads: u64 = self.cores.iter().map(|c| c.loads).sum();
        let blocked: u64 = self.cores.iter().map(|c| c.long_blocked_loads).sum();
        if loads == 0 {
            0.0
        } else {
            blocked as f64 / loads as f64
        }
    }

    /// Fraction of execution cycles the ROB head was blocked by a
    /// long-latency load (Figure 1, right panel), averaged over cores.
    pub fn blocked_cycle_fraction(&self) -> f64 {
        let total: u64 = self.cores.iter().map(|c| c.cycles).sum();
        let blocked: u64 = self.cores.iter().map(|c| c.long_block_cycles).sum();
        if total == 0 {
            0.0
        } else {
            blocked as f64 / total as f64
        }
    }

    /// Mean L2-miss latency (CPU cycles) of critical loads.
    pub fn miss_latency_critical(&self) -> Option<f64> {
        self.hierarchy.miss_latency_critical.mean()
    }

    /// Mean L2-miss latency (CPU cycles) of non-critical loads.
    pub fn miss_latency_noncritical(&self) -> Option<f64> {
        self.hierarchy.miss_latency_noncritical.mean()
    }

    /// Fraction of execution time the load queue was full, averaged
    /// over cores (§5.6).
    pub fn lq_full_fraction(&self) -> f64 {
        let total: u64 = self.cores.iter().map(|c| c.cycles).sum();
        let full: u64 = self.lq_full_cycles.iter().sum();
        if total == 0 {
            0.0
        } else {
            full as f64 / total as f64
        }
    }

    /// Fraction of DRAM ticks during which a transaction queue held at
    /// least one (and more than one) critical read (§3.1).
    pub fn critical_queue_fractions(&self) -> (f64, f64) {
        let ticks: u64 = self.channels.iter().map(|c| c.ticks).sum();
        let one: u64 = self.channels.iter().map(|c| c.ticks_with_critical).sum();
        let many: u64 = self
            .channels
            .iter()
            .map(|c| c.ticks_with_multiple_critical)
            .sum();
        if ticks == 0 {
            (0.0, 0.0)
        } else {
            (one as f64 / ticks as f64, many as f64 / ticks as f64)
        }
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.cycles);
        w.put_u64_seq(&self.core_finish);
        w.put_u32(self.cores.len() as u32);
        for c in &self.cores {
            c.encode(w);
        }
        self.hierarchy.encode(w);
        w.put_u32(self.channels.len() as u32);
        for c in &self.channels {
            c.encode(w);
        }
        w.put_u64_seq(&self.lq_full_cycles);
        w.put_u64(self.instructions_per_core);
        w.put_u32(self.predictor_observed.len() as u32);
        for p in &self.predictor_observed {
            w.put_bool(p.is_some());
            if let Some((max, bits)) = p {
                w.put_u64(*max);
                w.put_u32(*bits);
            }
        }
        w.put_bool(self.series.is_some());
        if let Some(series) = &self.series {
            series.encode(w);
        }
        // Trailing field: readers of journals written before the agent
        // model existed see an exhausted stream here and decode an
        // empty agent list, keeping old `--resume` journals valid.
        w.put_u32(self.agents.len() as u32);
        for a in &self.agents {
            a.encode(w);
        }
    }

    /// Deserializes journaled run statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let cycles = r.get_u64()?;
        let core_finish = r.get_u64_seq()?;
        let n_cores = r.get_u32()? as usize;
        let cores = (0..n_cores)
            .map(|_| CoreStats::decode(r))
            .collect::<Result<Vec<_>, _>>()?;
        let hierarchy = critmem_cache::HierarchyStats::decode(r)?;
        let n_channels = r.get_u32()? as usize;
        let channels = (0..n_channels)
            .map(|_| ChannelStats::decode(r))
            .collect::<Result<Vec<_>, _>>()?;
        let lq_full_cycles = r.get_u64_seq()?;
        let instructions_per_core = r.get_u64()?;
        let n_pred = r.get_u32()? as usize;
        let mut predictor_observed = Vec::with_capacity(n_pred);
        for _ in 0..n_pred {
            predictor_observed.push(if r.get_bool()? {
                Some((r.get_u64()?, r.get_u32()?))
            } else {
                None
            });
        }
        let series = if r.get_bool()? {
            Some(SeriesSet::decode(r)?)
        } else {
            None
        };
        let agents = if r.is_empty() {
            Vec::new() // journal entry predates the agent model
        } else {
            let n_agents = r.get_u32()? as usize;
            (0..n_agents)
                .map(|_| AgentStats::decode(r))
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(RunStats {
            cycles,
            core_finish,
            cores,
            hierarchy,
            channels,
            lq_full_cycles,
            instructions_per_core,
            predictor_observed,
            series,
            agents,
        })
    }
}

/// A pending naive-forwarding message (§5.1).
#[derive(Debug, Clone, Copy)]
struct ForwardMsg {
    deliver_at: CpuCycle,
    addr: u64,
    core: CoreId,
}

/// A [`FaultKind::WedgeBank`] waiting for its trigger cycle.
#[derive(Debug)]
struct ArmedWedge {
    channel: usize,
    rank: RankId,
    bank: BankId,
    at: CpuCycle,
    fired: bool,
}

/// A [`FaultKind::CorruptSchedulerDecision`] waiting for its trigger
/// cycle.
#[derive(Debug)]
struct ArmedCorrupt {
    channel: usize,
    at: CpuCycle,
    fired: bool,
}

/// Runtime state of an armed [`FaultPlan`]: counters, held-back
/// requests, and one-shot device-fault triggers. Boxed behind an
/// `Option` on the system so an un-faulted run pays one branch.
#[derive(Debug, Default)]
struct FaultState {
    /// 1-based index of the demand read to drop.
    drop_nth: Option<u64>,
    /// 1-based index of the demand read to duplicate.
    dup_nth: Option<u64>,
    /// `(1-based index, delay in CPU cycles)` of the read to delay.
    delay_nth: Option<(u64, u64)>,
    /// Demand reads seen at the boundary so far.
    reads_seen: u64,
    /// A duplicated request waiting to be enqueued a second time.
    dup_pending: Option<MemRequest>,
    /// A delayed request and the cycle at which to release it.
    delayed: Option<(MemRequest, CpuCycle)>,
    wedges: Vec<ArmedWedge>,
    corrupts: Vec<ArmedCorrupt>,
}

impl FaultState {
    /// Whether any time-triggered or held-back work remains, i.e. the
    /// per-step fault bookkeeping still has something to do.
    fn idle(&self) -> bool {
        self.dup_pending.is_none()
            && self.delayed.is_none()
            && self.wedges.iter().all(|w| w.fired)
            && self.corrupts.iter().all(|c| c.fired)
    }
}

/// The full simulated system.
///
/// Generic over a [`RequestObserver`] attached to the LLC-miss → DRAM
/// enqueue boundary. The default `()` observer is a no-op the compiler
/// erases, so execution-driven runs pay nothing for the seam; trace
/// capture attaches a `TraceSink` via [`System::with_observer`].
pub struct System<O: RequestObserver = ()> {
    cfg: SystemConfig,
    cores: Vec<Core>,
    sources: Vec<Box<dyn InstrSource>>,
    /// Non-OoO memory agents of a heterogeneous mix, indexed after the
    /// cores: agent `i` issues as scheduler thread `cores + i`.
    agents: Vec<Box<dyn MemoryAgent>>,
    /// Agent requests that found the DRAM queues full, retried in FIFO
    /// order ahead of fresh generation so backpressure is fair.
    agent_pending: VecDeque<MemRequest>,
    /// Reused per-cycle generation buffer (keeps the tick loop
    /// allocation-free once warm).
    agent_scratch: Vec<MemRequest>,
    hierarchy: CacheHierarchy,
    dram: DramSystem,
    divider: ClockDivider,
    now: CpuCycle,
    core_finish: Vec<Option<u64>>,
    lq_full_cycles: Vec<u64>,
    /// Pending §5.1 forwarding messages. `forward_latency` is constant,
    /// so `deliver_at` is monotone over the queue and the due set is
    /// always a prefix.
    forwards: VecDeque<ForwardMsg>,
    sampler: Option<Sampler>,
    /// Worker pool for the sharded DRAM tick; `None` runs the channels
    /// serially. Purely a wall-clock accelerator — never serialized,
    /// never observable in results.
    shard_pool: Option<ShardPool>,
    /// Request-conservation auditor at the L2↔controller boundary;
    /// `Some` exactly when [`SystemConfig::audit`] is set (the DRAM
    /// protocol auditors are enabled alongside it).
    conservation: Option<Box<ConservationAuditor>>,
    /// Armed fault plan, `None` for healthy runs.
    faults: Option<Box<FaultState>>,
    observer: O,
}

/// One registration/sampling pass over every observable component, in
/// a fixed order: `cpu.coreN`, `cbp.coreN`, `cache.l2`, `dram.chN`,
/// then `agent.aN` for heterogeneous mixes — agents come last so
/// core-only schemas are unchanged from before the agent model.
/// Driving both the schema build and every sample row through this one
/// function guarantees they can never disagree.
fn observe_components(
    cores: &[Core],
    agents: &[Box<dyn MemoryAgent>],
    hierarchy: &CacheHierarchy,
    dram: &DramSystem,
    v: &mut dyn MetricVisitor,
) {
    for (i, core) in cores.iter().enumerate() {
        v.component(&format!("cpu.core{i}"));
        core.stats().observe(v);
    }
    for (i, core) in cores.iter().enumerate() {
        v.component(&format!("cbp.core{i}"));
        core.predictor().observe_metrics(v);
    }
    hierarchy.observe(v);
    dram.observe(v);
    for (i, agent) in agents.iter().enumerate() {
        v.component(&format!("agent.a{i}"));
        agent.observe(v);
    }
}

impl<O: RequestObserver> std::fmt::Debug for System<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

fn build_predictor(kind: PredictorKind) -> Box<dyn LoadCriticalityPredictor> {
    match kind {
        PredictorKind::None => Box::new(NoPredictor),
        PredictorKind::Cbp {
            metric,
            size,
            reset_interval,
        } => {
            let mut cbp = CommitBlockPredictor::new(metric, size);
            if let Some(interval) = reset_interval {
                cbp = cbp.with_reset_interval(interval);
            }
            Box::new(CbpPredictor::new(cbp))
        }
        PredictorKind::Clpt(mode) => Box::new(ClptPredictor::new(Clpt::new(mode))),
    }
}

impl System {
    /// Builds the system for a workload with the no-op observer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation or the workload
    /// names an unknown application.
    pub fn new(cfg: SystemConfig, workload: &AgentMix) -> Self {
        Self::with_observer(cfg, workload, ())
    }

    /// Fallible version of [`System::new`].
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if the configuration fails validation,
    /// [`SimError::UnknownWorkload`] if the workload names an unknown
    /// application or bundle.
    pub fn try_new(cfg: SystemConfig, workload: &AgentMix) -> Result<Self, SimError> {
        Self::try_with_observer(cfg, workload, ())
    }
}

impl<O: RequestObserver> System<O> {
    /// Builds the system for a workload, attaching `observer` to the
    /// LLC-miss → DRAM enqueue boundary.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation or the workload
    /// names an unknown application.
    pub fn with_observer(cfg: SystemConfig, workload: &AgentMix, observer: O) -> Self {
        Self::try_with_observer(cfg, workload, observer).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Self::with_observer`]: operational
    /// mistakes (bad configuration, unknown workload names) come back
    /// as typed errors instead of panics, so the experiment harness can
    /// report them per cell.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if the configuration fails validation,
    /// [`SimError::UnknownWorkload`] if the workload names an unknown
    /// application or bundle.
    pub fn try_with_observer(
        cfg: SystemConfig,
        workload: &AgentMix,
        observer: O,
    ) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        let sources: Vec<Box<dyn InstrSource>> = match workload {
            AgentMix::Parallel(app) => {
                let spec = parallel_app(app).ok_or_else(|| SimError::UnknownWorkload {
                    kind: "parallel app",
                    name: (*app).to_string(),
                })?;
                (0..cfg.cores)
                    .map(|c| Box::new(AppThread::new(&spec, c, cfg.seed)) as Box<dyn InstrSource>)
                    .collect()
            }
            AgentMix::Bundle(name) => {
                let bundle =
                    critmem_workloads::bundle(name).ok_or_else(|| SimError::UnknownWorkload {
                        kind: "bundle",
                        name: (*name).to_string(),
                    })?;
                if cfg.cores != 4 {
                    return Err(SimError::Config(format!(
                        "bundles are four-application workloads (got {} cores)",
                        cfg.cores
                    )));
                }
                bundle
                    .apps
                    .iter()
                    .enumerate()
                    .map(|(c, app)| {
                        let spec = multi_app(app).ok_or_else(|| SimError::UnknownWorkload {
                            kind: "application",
                            name: (*app).to_string(),
                        })?;
                        Ok(Box::new(AppThread::new(&spec, c, cfg.seed)) as Box<dyn InstrSource>)
                    })
                    .collect::<Result<_, SimError>>()?
            }
            AgentMix::Alone(app) => {
                if cfg.cores != 1 {
                    return Err(SimError::Config(format!(
                        "alone runs use a single core (got {})",
                        cfg.cores
                    )));
                }
                let spec = multi_app(app)
                    .or_else(|| parallel_app(app))
                    .ok_or_else(|| SimError::UnknownWorkload {
                        kind: "application",
                        name: (*app).to_string(),
                    })?;
                vec![Box::new(AppThread::new(&spec, 0, cfg.seed)) as Box<dyn InstrSource>]
            }
            AgentMix::Hetero(specs) => {
                let mut srcs: Vec<Box<dyn InstrSource>> = Vec::new();
                for spec in specs.iter().filter(|s| s.class == AgentClass::Ooo) {
                    let app = spec.profile;
                    let app_spec =
                        multi_app(app)
                            .or_else(|| parallel_app(app))
                            .ok_or_else(|| SimError::UnknownWorkload {
                                kind: "application",
                                name: app.to_string(),
                            })?;
                    for _ in 0..spec.count {
                        let thread = srcs.len();
                        srcs.push(Box::new(AppThread::new(&app_spec, thread, cfg.seed)));
                    }
                }
                if srcs.len() != cfg.cores {
                    return Err(SimError::Config(format!(
                        "mix has {} ooo agents but the configuration has {} cores",
                        srcs.len(),
                        cfg.cores
                    )));
                }
                srcs
            }
        };
        let cores: Vec<Core>;
        let mut agents: Vec<Box<dyn MemoryAgent>> = Vec::new();
        if let AgentMix::Hetero(specs) = workload {
            let mut qos = Vec::new();
            for spec in specs {
                for _ in 0..spec.count {
                    if spec.class == AgentClass::Ooo {
                        qos.push(spec.effective_qos_millis());
                    } else {
                        let index = agents.len();
                        let thread = cfg.cores + index;
                        let target = target_units_for(spec.class, cfg.instructions_per_core);
                        let agent = build_agent(
                            spec.class,
                            spec.profile,
                            index,
                            CoreId(thread as u8),
                            spec.effective_qos_millis(),
                            target,
                            cfg.seed,
                        )
                        .ok_or_else(|| SimError::UnknownWorkload {
                            kind: "agent profile",
                            name: format!("{}:{}", spec.class.keyword(), spec.profile),
                        })?;
                        agents.push(agent);
                    }
                }
            }
            if agents.is_empty() && cfg.cores == 0 {
                return Err(SimError::Config("empty agent mix".to_string()));
            }
            if cfg.cores + agents.len() > 64 {
                return Err(SimError::Config(format!(
                    "mix has {} participants (64 max)",
                    cfg.cores + agents.len()
                )));
            }
            cores = qos
                .into_iter()
                .enumerate()
                .map(|(c, millis)| {
                    Core::new(
                        CoreId(c as u8),
                        cfg.core,
                        build_predictor(cfg.predictor),
                        u64::MAX / 2, // the system, not the core, ends the run
                    )
                    .with_qos_budget_millis(millis)
                })
                .collect();
        } else {
            cores = (0..cfg.cores)
                .map(|c| {
                    Core::new(
                        CoreId(c as u8),
                        cfg.core,
                        build_predictor(cfg.predictor),
                        u64::MAX / 2, // the system, not the core, ends the run
                    )
                })
                .collect();
        }
        // Agents are scheduler threads too: TCM/ATLAS/BLISS rank them
        // alongside the cores.
        let num_threads = cfg.cores + agents.len();
        let mut dram = DramSystem::new(cfg.dram, |ch| {
            cfg.scheduler.build(num_threads, u64::from(ch.0))
        });
        let conservation = cfg.audit.then(|| {
            dram.enable_audit();
            // The physical occupancy ceiling: every transaction queue
            // full plus a per-channel slack for in-flight CAS bursts.
            let bound = cfg.dram.org.channels as usize * (cfg.dram.queue_capacity + 64);
            Box::new(ConservationAuditor::new(bound))
        });
        let hierarchy = CacheHierarchy::new(cfg.hierarchy);
        let sampler = cfg.sample_epoch.map(|epoch| {
            let schema =
                Schema::build(|v| observe_components(&cores, &agents, &hierarchy, &dram, v));
            Sampler::new(schema, epoch)
        });
        // A pool with one worker per shard, clamped so no worker can
        // ever be left without a channel chunk to tick.
        let channels = cfg.dram.org.channels as usize;
        let shard_pool = (cfg.shards > 1 && channels > 1)
            .then(|| ShardPool::new(cfg.shards.min(channels).min(critmem_dram::MAX_TICK_SHARDS)));
        Ok(System {
            hierarchy,
            dram,
            divider: ClockDivider::new(cfg.dram.preset.bus_mhz, cfg.cpu_mhz),
            now: 0,
            core_finish: vec![None; cfg.cores],
            lq_full_cycles: vec![0; cfg.cores],
            forwards: VecDeque::new(),
            sampler,
            shard_pool,
            conservation,
            faults: None,
            cores,
            sources,
            agents,
            agent_pending: VecDeque::new(),
            agent_scratch: Vec::new(),
            cfg,
            observer,
        })
    }

    /// Arms a [`FaultPlan`]: live faults (request drops/duplicates/
    /// delays, bank wedges, corrupted scheduler decisions) inject at
    /// their component boundaries as the run executes. Artifact faults
    /// in the plan ([`FaultKind::is_artifact_fault`]) do not touch the
    /// live system and are ignored here — the campaign runner applies
    /// them to serialized bytes directly.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        let mut st = FaultState::default();
        for fault in &plan.faults {
            match *fault {
                FaultKind::DropRequest { nth_read } => st.drop_nth = Some(nth_read),
                FaultKind::DuplicateRequest { nth_read } => st.dup_nth = Some(nth_read),
                FaultKind::DelayRequest { nth_read, delay } => {
                    st.delay_nth = Some((nth_read, delay));
                }
                FaultKind::WedgeBank {
                    channel,
                    rank,
                    bank,
                    at_cycle,
                } => st.wedges.push(ArmedWedge {
                    channel: channel as usize,
                    rank: RankId(rank),
                    bank: BankId(bank),
                    at: at_cycle,
                    fired: false,
                }),
                FaultKind::CorruptSchedulerDecision { channel, at_cycle } => {
                    st.corrupts.push(ArmedCorrupt {
                        channel: channel as usize,
                        at: at_cycle,
                        fired: false,
                    });
                }
                FaultKind::BitFlipTraceChunk { .. } | FaultKind::BitFlipCheckpoint { .. } => {}
            }
        }
        self.faults = Some(Box::new(st));
    }

    /// Per-step fault bookkeeping: fire due device faults and retry
    /// held-back requests. Runs before the phase-3 drain so a released
    /// request competes for queue space like a fresh one. Skip-ahead
    /// may overshoot a trigger cycle; the trigger then fires on the
    /// next executed cycle (`now >= at`), which is all the detection
    /// contract needs.
    fn fault_step(&mut self, now: CpuCycle) {
        let Some(f) = self.faults.as_deref_mut() else {
            return;
        };
        if f.idle() {
            return;
        }
        for w in &mut f.wedges {
            if !w.fired && now >= w.at {
                w.fired = true;
                self.dram.wedge_bank(w.channel, w.rank, w.bank);
            }
        }
        for c in &mut f.corrupts {
            if !c.fired && now >= c.at {
                c.fired = true;
                self.dram.corrupt_decision(c.channel);
            }
        }
        if let Some(dup) = f.dup_pending.take() {
            match self.dram.enqueue(dup) {
                Ok(()) => {
                    // The phantom copy is invisible to the observer (a
                    // trace must not record it) but not to the
                    // conservation auditor — catching it is the point.
                    if let Some(a) = &mut self.conservation {
                        a.on_enqueue(dup.id, now);
                    }
                }
                Err(back) => f.dup_pending = Some(back),
            }
        }
        if let Some((req, release_at)) = f.delayed {
            if release_at <= now {
                // Queue full leaves `f.delayed` set: retry next cycle.
                if self.dram.enqueue(req).is_ok() {
                    f.delayed = None;
                    if let Some(a) = &mut self.conservation {
                        a.on_enqueue(req.id, now);
                    }
                    self.observer.on_enqueue(now, &req);
                }
            }
        }
    }

    /// Intercepts one popped request under the armed fault plan.
    /// Returns `true` when the request was consumed (dropped or held
    /// back) and must not be enqueued this cycle.
    fn fault_intercept(&mut self, req: MemRequest, now: CpuCycle) -> bool {
        let Some(f) = self.faults.as_deref_mut() else {
            return false;
        };
        if req.kind != AccessKind::Read {
            return false; // faults target demand reads: they stall cores
        }
        f.reads_seen += 1;
        let n = f.reads_seen;
        if f.drop_nth == Some(n) {
            return true; // silently discarded: the core never hears back
        }
        if f.delay_nth.is_some_and(|(nth, _)| nth == n) {
            let delay = f.delay_nth.expect("checked above").1;
            f.delayed = Some((req, now.saturating_add(delay)));
            return true;
        }
        if f.dup_nth == Some(n) {
            f.dup_pending = Some(req); // the copy; the original proceeds
        }
        false
    }

    /// The first violation any attached auditor holds, wrapped as a
    /// typed error; `None` while the run is clean.
    fn audit_violation_error(&mut self) -> Option<SimError> {
        if let Some(snap) = self.dram.take_audit_violation() {
            return Some(SimError::AuditViolation(snap));
        }
        if let Some(a) = &mut self.conservation {
            if let Some(snap) = a.take_violation() {
                return Some(SimError::AuditViolation(snap));
            }
        }
        None
    }

    /// Current CPU cycle.
    pub fn now(&self) -> CpuCycle {
        self.now
    }

    /// Advances one CPU cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        // 1. Cores, in rotating order: shared-resource races (L2 MSHRs,
        // transaction-queue slots) must not systematically favor
        // low-numbered cores. An agent-only mix has none.
        let n = self.cores.len();
        let start = if n > 0 { (now as usize) % n } else { 0 };
        for k in 0..n {
            let i = (start + k) % n;
            let core = &mut self.cores[i];
            let events = core.step(now, self.sources[i].as_mut(), &mut self.hierarchy);
            if core.lq_full() {
                self.lq_full_cycles[i] += 1;
            }
            if self.core_finish[i].is_none()
                && core.stats().committed >= self.cfg.instructions_per_core
            {
                self.core_finish[i] = Some(now);
            }
            if self.cfg.naive_forwarding {
                if let Some(b) = events.block_started {
                    self.forwards.push_back(ForwardMsg {
                        deliver_at: now + self.cfg.forward_latency,
                        addr: b.addr & !63,
                        core: CoreId(i as u8),
                    });
                }
            }
        }
        // 2. Deliver naive-forwarding promotions. Messages are pushed
        // with a constant latency, so `deliver_at` is non-decreasing
        // from front to back and the due messages are exactly a prefix:
        // delivery is O(delivered), not O(queue) per cycle.
        while self.forwards.front().is_some_and(|m| m.deliver_at <= now) {
            let m = self.forwards.pop_front().expect("front checked above");
            self.dram
                .promote_by_addr(m.addr, m.core, Criticality::binary());
        }
        // 3. Drain cache-miss requests into the DRAM queues. The
        // observer sees exactly the accepted requests, stamped with the
        // cycle of successful enqueue. An armed fault plan intercepts
        // here — this is the boundary the conservation auditor watches.
        if self.faults.is_some() {
            self.fault_step(now);
        }
        while let Some(req) = self.hierarchy.pop_request(now) {
            if self.faults.is_some() && self.fault_intercept(req, now) {
                continue;
            }
            match self.dram.enqueue(req) {
                Ok(()) => {
                    if let Some(a) = &mut self.conservation {
                        a.on_enqueue(req.id, now);
                    }
                    self.observer.on_enqueue(now, &req);
                }
                Err(back) => {
                    self.hierarchy.unpop_request(back);
                    break;
                }
            }
        }
        // 3b. Heterogeneous agents inject their traffic directly at the
        // controller boundary (no cache hierarchy in front of a GPU-like
        // streamer or a PIM engine): overflow from earlier cycles drains
        // first, then each agent generates in rotating order.
        if !self.agents.is_empty() {
            self.agent_step(now);
        }
        // 4. DRAM bus clock. With a shard pool the channels tick on
        // worker threads behind a cycle barrier; the merged completion
        // list is identical to the serial tick either way.
        if self.divider.tick() {
            let completions = match &mut self.shard_pool {
                Some(pool) => self.dram.tick_sharded(pool),
                None => self.dram.tick(),
            };
            for done in completions {
                if let Some(a) = &mut self.conservation {
                    a.on_complete(done.req.id, now);
                }
                let origin = done.req.core.index();
                if origin >= self.cores.len() {
                    // Agent traffic bypasses the hierarchy on the way
                    // back too: completions route by thread index.
                    self.agents[origin - self.cores.len()].complete(&done.req, now);
                } else {
                    for c in self.hierarchy.dram_completed(&done.req, now) {
                        self.cores[c.core.index()].mem_completed(c.token.0, c.done);
                    }
                }
            }
        }
        // 5. Epoch sampling (pull-based: reads the counters the
        // components already maintain; nothing runs when disabled).
        if let Some(sampler) = &mut self.sampler {
            if sampler.due(now) {
                let (cores, agents, hierarchy, dram) =
                    (&self.cores, &self.agents, &self.hierarchy, &self.dram);
                sampler.sample(now, |v| {
                    observe_components(cores, agents, hierarchy, dram, v)
                });
            }
        }
    }

    /// Phase 3b of [`Self::step`]: drain the agent overflow queue into
    /// the DRAM controllers, then let each unfinished agent generate
    /// this cycle's requests in rotating order. A full transaction
    /// queue pushes the remainder back onto the overflow queue, which
    /// keeps strict FIFO priority next cycle — the same backpressure
    /// discipline the cache outbox gets from `unpop_request`.
    fn agent_step(&mut self, now: CpuCycle) {
        while let Some(req) = self.agent_pending.front().copied() {
            match self.dram.enqueue(req) {
                Ok(()) => {
                    self.agent_pending.pop_front();
                    if let Some(a) = &mut self.conservation {
                        a.on_enqueue(req.id, now);
                    }
                    self.observer.on_enqueue(now, &req);
                }
                Err(_) => break,
            }
        }
        let n = self.agents.len();
        let start = (now as usize) % n;
        let mut scratch = std::mem::take(&mut self.agent_scratch);
        for k in 0..n {
            let i = (start + k) % n;
            scratch.clear();
            self.agents[i].generate(now, &mut scratch);
            for &req in scratch.iter() {
                // Once anything queued up behind a full controller,
                // later requests must queue too or ordering inverts.
                if !self.agent_pending.is_empty() {
                    self.agent_pending.push_back(req);
                    continue;
                }
                match self.dram.enqueue(req) {
                    Ok(()) => {
                        if let Some(a) = &mut self.conservation {
                            a.on_enqueue(req.id, now);
                        }
                        self.observer.on_enqueue(now, &req);
                    }
                    Err(back) => self.agent_pending.push_back(back),
                }
            }
        }
        self.agent_scratch = scratch;
    }

    /// The earliest future CPU cycle at which [`Self::step`] could do
    /// observable work — the system-wide event horizon for the
    /// skip-ahead kernel.
    ///
    /// Every cycle in `now + 1 .. horizon` is provably quiescent: each
    /// core reports it cannot commit, issue, dispatch, or retire a
    /// store ([`Core::quiescent_until`]); no forwarding message comes
    /// due (the queue is deliver-time ordered, so the front bounds the
    /// whole queue); the cache outbox has nothing ready (an unpopped
    /// DRAM-full retry carries `ready_at = 0` and pins the horizon to
    /// `now + 1`); no DRAM controller has a completion, refresh,
    /// candidate re-check, direction flip, or scheduler quantum due
    /// before the CPU cycle of the corresponding bus tick; and the
    /// sampler's next epoch has not arrived. The (private) `skip` step
    /// the run loop pairs this with replays the
    /// per-cycle bookkeeping those quiescent cycles would have done in
    /// closed form, which is what makes batch-advancing byte-identical
    /// to stepping.
    ///
    /// Always returns at least `now + 1`; returning exactly `now + 1`
    /// means "no skippable window".
    pub fn idle_horizon(&self) -> CpuCycle {
        let now = self.now;
        let nxt = now + 1;
        let mut horizon = CpuCycle::MAX;
        for core in &self.cores {
            horizon = horizon.min(core.quiescent_until(now));
            if horizon <= nxt {
                return nxt;
            }
        }
        // Agents honor the same contract: `quiescent_until` bounds the
        // first cycle at which `generate` could emit. Overflow pending
        // against a full controller pins the horizon outright.
        if !self.agent_pending.is_empty() {
            return nxt;
        }
        for agent in &self.agents {
            horizon = horizon.min(agent.quiescent_until(now));
            if horizon <= nxt {
                return nxt;
            }
        }
        if let Some(m) = self.forwards.front() {
            horizon = horizon.min(m.deliver_at.max(nxt));
        }
        if let Some(ready) = self.hierarchy.next_request_ready_at() {
            horizon = horizon.min(ready.max(nxt));
        }
        // Translate the DRAM-clock horizon into the CPU cycle whose
        // divider tick reaches it: the d-th future bus tick falls on
        // CPU cycle `now + fast_cycles_until(d)`, so every skipped
        // cycle strictly before that produces strictly fewer ticks.
        let d = self
            .dram
            .next_event_cycle()
            .saturating_sub(self.divider.slow_cycles());
        horizon = horizon.min(now.saturating_add(self.divider.fast_cycles_until(d)));
        if let Some(s) = &self.sampler {
            horizon = horizon.min(s.next_due().max(nxt));
        }
        horizon.max(nxt)
    }

    /// Batch-advances the clock across `n` cycles that
    /// [`Self::idle_horizon`] proved quiescent, replaying exactly the
    /// bookkeeping [`Self::step`] would have accumulated: per-core
    /// stall counters ([`Core::skip`]), the system's LQ-full counter,
    /// the clock divider (whose bus ticks in the window are all empty
    /// controller cycles, applied in closed form via
    /// [`DramSystem::skip`]), and `now` itself. No commits, deliveries,
    /// enqueues, completions, or samples can occur in the window, so
    /// nothing else changes.
    fn skip(&mut self, n: u64) {
        let now = self.now;
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.skip(now, n);
            // The LQ occupancy is frozen while the core is quiescent,
            // so either every skipped cycle counts or none does.
            if core.lq_full() {
                self.lq_full_cycles[i] += n;
            }
        }
        let d = self.divider.advance(n);
        if d > 0 {
            self.dram.skip(d);
        }
        self.now += n;
    }

    /// Number of naive-forwarding messages still in flight (test and
    /// inspection hook for the skip-ahead identity suite).
    pub fn pending_forwards(&self) -> usize {
        self.forwards.len()
    }

    /// Number of metric samples recorded so far; zero when sampling is
    /// disabled.
    pub fn samples_taken(&self) -> usize {
        self.sampler.as_ref().map_or(0, Sampler::samples_taken)
    }

    /// Per-core committed instruction counts (progress inspection).
    pub fn committed(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.stats().committed).collect()
    }

    /// Total transactions currently queued in the DRAM controllers and
    /// requests waiting in the cache outbox (progress inspection).
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.dram.total_queued(), self.hierarchy.outbox_len())
    }

    /// Whether every core has reached the instruction target and every
    /// agent its work-unit target.
    pub fn done(&self) -> bool {
        self.core_finish.iter().all(|f| f.is_some()) && self.agents.iter().all(|a| a.finished())
    }

    /// Advances until every core finished, `stop` (a CPU cycle) is
    /// reached, or a guard trips. The tick loop carries a
    /// forward-progress watchdog ([`SystemConfig::watchdog`]) and
    /// returns a typed [`SimError::Watchdog`] whose snapshot shows
    /// where every core is stuck (ROB head PC), how full the miss
    /// machinery is (L2 MSHRs, outbox), and what every bank queue
    /// holds.
    pub(crate) fn drive(&mut self, stop: Option<CpuCycle>) -> Result<(), SimError> {
        let wd = self.cfg.watchdog;
        let progress_total = |cores: &[Core], agents: &[Box<dyn MemoryAgent>]| -> u64 {
            cores.iter().map(|c| c.stats().committed).sum::<u64>()
                + agents.iter().map(|a| a.units_done()).sum::<u64>()
        };
        let mut last_committed_total: u64 = progress_total(&self.cores, &self.agents);
        let mut last_commit_cycle = self.now;
        let mut next_check = self.now.saturating_add(wd.check_interval);
        while !self.done() && stop.is_none_or(|s| self.now < s) {
            if self.now >= self.cfg.max_cycles {
                return Err(self.watchdog_error(WatchdogReason::CycleLimit {
                    max_cycles: self.cfg.max_cycles,
                }));
            }
            if self.cfg.skip_ahead {
                // Cap the jump so every loop-level decision point —
                // watchdog check, cycle limit, stop boundary — still
                // lands on exactly the cycle it would serially. With a
                // zero check interval `next_check` trails `now`, so it
                // only caps when the watchdog actually paces checks.
                let mut cap = self.cfg.max_cycles.min(stop.unwrap_or(CpuCycle::MAX));
                if wd.check_interval > 0 {
                    cap = cap.min(next_check);
                }
                let horizon = self.idle_horizon().min(cap);
                if horizon > self.now + 1 {
                    self.skip(horizon - self.now - 1);
                }
            }
            self.step();
            // Poll the auditors every iteration (audited runs only):
            // a violation must surface at the cycle it occurred, before
            // a faulty completion can corrupt downstream state.
            if self.conservation.is_some() {
                if let Some(a) = &mut self.conservation {
                    a.check_clock(self.now);
                }
                if self.dram.has_audit_violation()
                    || self
                        .conservation
                        .as_ref()
                        .is_some_and(|a| a.violation().is_some())
                {
                    if let Some(e) = self.audit_violation_error() {
                        return Err(e);
                    }
                }
            }
            if self.now >= next_check {
                next_check = self.now.saturating_add(wd.check_interval);
                if wd.no_commit_cycles > 0 {
                    let total: u64 = progress_total(&self.cores, &self.agents);
                    if total > last_committed_total {
                        last_committed_total = total;
                        last_commit_cycle = self.now;
                    } else if self.now - last_commit_cycle >= wd.no_commit_cycles {
                        let idle_cycles = self.now - last_commit_cycle;
                        return Err(self.watchdog_error(WatchdogReason::NoCommit { idle_cycles }));
                    }
                }
                if wd.max_request_age > 0 {
                    if let Some(age) = self.dram.oldest_queued_age() {
                        if age > wd.max_request_age {
                            return Err(self.watchdog_error(WatchdogReason::StarvedRequest {
                                age,
                                limit: wd.max_request_age,
                            }));
                        }
                    }
                }
            }
        }
        // End-of-run audit reconciliation, only at a true finish (this
        // method also drives to intermediate checkpoint boundaries).
        if self.conservation.is_some() && self.done() {
            self.dram.finish_audit();
            let outstanding = self.dram.outstanding();
            if let Some(a) = &mut self.conservation {
                a.finish(outstanding, self.now);
            }
            if let Some(e) = self.audit_violation_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Swaps the memory scheduler and the per-core criticality
    /// predictor in place, preserving every other piece of
    /// architectural state. This is the warm-start engine's component
    /// switch expressed without serialization: restoring a checkpoint
    /// under a different `(scheduler, predictor)` cell must be
    /// byte-identical to driving the original system to the boundary
    /// and calling this.
    pub fn reconfigure(
        &mut self,
        scheduler: critmem_sched::SchedulerKind,
        predictor: PredictorKind,
    ) {
        self.cfg.scheduler = scheduler;
        self.cfg.predictor = predictor;
        let num_threads = self.cfg.cores + self.agents.len();
        self.dram
            .replace_schedulers(|ch| scheduler.build(num_threads, u64::from(ch.0)));
        for core in &mut self.cores {
            core.replace_predictor(build_predictor(predictor));
        }
    }

    /// Captures the full mutable state of the system — cores,
    /// instruction sources, caches, DRAM, clock divider, and run
    /// bookkeeping — in deterministic order. The configuration itself
    /// is not serialized: a restore rebuilds a fresh system from a
    /// compatible configuration and overlays this state
    /// ([`Self::load_state`]).
    pub(crate) fn save_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.cores.len() as u32);
        for core in &self.cores {
            core.save_state(w);
        }
        for src in &self.sources {
            src.save_state(w);
        }
        self.hierarchy.save_state(w);
        self.dram.save_state(w);
        self.divider.save_state(w);
        w.put_u64(self.now);
        for f in &self.core_finish {
            match f {
                Some(c) => {
                    w.put_bool(true);
                    w.put_u64(*c);
                }
                None => w.put_bool(false),
            }
        }
        w.put_u64_seq(&self.lq_full_cycles);
        // The forwards queue delivers in order from the front, so its
        // front-to-back order is state.
        w.put_u32(self.forwards.len() as u32);
        for m in &self.forwards {
            w.put_u64(m.deliver_at);
            w.put_u64(m.addr);
            w.put_u8(m.core.0);
        }
        // The sampler travels as a length-prefixed block so a restore
        // into a differently-sampled configuration can skip it.
        let mut sampler = ByteWriter::new();
        if let Some(s) = &self.sampler {
            s.save_state(&mut sampler);
        }
        w.put_bool(self.sampler.is_some());
        w.put_bytes(&sampler.into_bytes());
        // Agent block, present exactly when the mix has agents. The
        // checkpoint fingerprint covers the workload, so a restore
        // always agrees with the save on whether this block exists —
        // core-only checkpoints keep their pre-agent byte layout.
        if !self.agents.is_empty() {
            for agent in &self.agents {
                agent.save_state(w);
            }
            w.put_u32(self.agent_pending.len() as u32);
            for req in &self.agent_pending {
                req.encode(w);
            }
        }
    }

    /// Overlays state captured by [`Self::save_state`] onto this
    /// freshly built system. `load_predictors` / `load_schedulers`
    /// select whether the saved predictor and scheduler blocks are
    /// replayed or discarded in favor of the fresh components this
    /// system was built with — the hook that lets one warmup checkpoint
    /// fan out across every `(scheduler, predictor)` sweep cell.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream, or when the
    /// snapshot's core count does not match this configuration.
    pub(crate) fn load_state(
        &mut self,
        r: &mut ByteReader<'_>,
        load_predictors: bool,
        load_schedulers: bool,
    ) -> Result<(), CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.cores.len() {
            return Err(CodecError {
                message: format!("snapshot holds {n} cores, system has {}", self.cores.len()),
                offset: r.position(),
            });
        }
        for core in &mut self.cores {
            core.load_state(r, load_predictors)?;
        }
        for src in &mut self.sources {
            src.load_state(r)?;
        }
        self.hierarchy.load_state(r)?;
        self.dram.load_state(r, load_schedulers)?;
        self.divider.load_state(r)?;
        self.now = r.get_u64()?;
        for f in &mut self.core_finish {
            *f = if r.get_bool()? {
                Some(r.get_u64()?)
            } else {
                None
            };
        }
        self.lq_full_cycles = r.get_u64_seq()?;
        let n = r.get_u32()? as usize;
        self.forwards.clear();
        for _ in 0..n {
            self.forwards.push_back(ForwardMsg {
                deliver_at: r.get_u64()?,
                addr: r.get_u64()?,
                core: CoreId(r.get_u8()?),
            });
        }
        let had_sampler = r.get_bool()?;
        let block = r.get_bytes()?;
        if had_sampler {
            if let Some(s) = &mut self.sampler {
                let mut sr = ByteReader::new(&block);
                s.load_state(&mut sr)?;
            }
        }
        if !self.agents.is_empty() {
            for agent in &mut self.agents {
                agent.load_state(r)?;
            }
            let n = r.get_u32()? as usize;
            self.agent_pending.clear();
            for _ in 0..n {
                self.agent_pending.push_back(MemRequest::decode(r)?);
            }
        }
        // Restored state invalidates the conservation books: requests
        // outstanding in the snapshot were never seen enqueued here.
        // Re-anchor at the restored cycle; pre-attach completions are
        // ignored by design. (The DRAM-side protocol auditors re-seed
        // themselves inside `DramSystem::load_state`.)
        if let Some(a) = &mut self.conservation {
            a.reset(self.now);
        }
        Ok(())
    }

    /// Builds the diagnostic snapshot for a watchdog trip.
    fn watchdog_error(&self, reason: WatchdogReason) -> SimError {
        SimError::Watchdog(Box::new(WatchdogSnapshot {
            reason,
            cycle: self.now,
            committed: self.committed(),
            rob_head_pc: self.cores.iter().map(|c| c.rob_head_pc()).collect(),
            mshr_occupancy: self.hierarchy.l2_mshr_occupancy(),
            outbox_len: self.hierarchy.outbox_len(),
            bank_queues: self.dram.bank_queue_snapshot(),
        }))
    }

    /// Finalizes statistics without requiring completion.
    pub fn into_stats(self) -> RunStats {
        self.into_stats_and_observer().0
    }

    /// Finalizes statistics and hands the observer back.
    pub fn into_stats_and_observer(mut self) -> (RunStats, O) {
        // Close the series with an end-of-run sample so the final
        // counter values are always present, even mid-epoch.
        let series = self.sampler.take().map(|mut sampler| {
            if sampler.last_sampled() != Some(self.now) {
                let (cores, agents, hierarchy, dram) =
                    (&self.cores, &self.agents, &self.hierarchy, &self.dram);
                sampler.sample(self.now, |v| {
                    observe_components(cores, agents, hierarchy, dram, v);
                });
            }
            sampler.into_series()
        });
        let stats = RunStats {
            cycles: self
                .core_finish
                .iter()
                .map(|f| f.unwrap_or(self.now))
                .chain(
                    self.agents
                        .iter()
                        .map(|a| a.finish_cycle().unwrap_or(self.now)),
                )
                .max()
                .unwrap_or(0),
            core_finish: self
                .core_finish
                .iter()
                .map(|f| f.unwrap_or(self.now))
                .collect(),
            cores: self.cores.iter().map(|c| c.stats().clone()).collect(),
            hierarchy: self.hierarchy.stats().clone(),
            channels: self.dram.channel_stats().into_iter().cloned().collect(),
            lq_full_cycles: self.lq_full_cycles,
            instructions_per_core: self.cfg.instructions_per_core,
            predictor_observed: self
                .cores
                .iter()
                .map(|c| c.predictor().observed_extremes())
                .collect(),
            series,
            agents: self.agents.iter().map(|a| a.stats()).collect(),
        };
        (stats, self.observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use critmem_predict::CbpMetric;
    use critmem_sched::SchedulerKind;

    fn run(cfg: SystemConfig, workload: &AgentMix) -> RunStats {
        Session::new(cfg, workload)
            .run()
            .unwrap_or_else(|e| panic!("{e}"))
            .stats
    }

    fn quick(instr: u64) -> SystemConfig {
        let mut c = SystemConfig::paper_baseline(instr);
        c.cores = 2;
        c.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
        c.max_cycles = 20_000_000;
        c
    }

    #[test]
    fn small_parallel_run_completes() {
        let stats = run(quick(2_000), &AgentMix::Parallel("swim"));
        assert!(stats.cycles > 0);
        assert_eq!(stats.cores.len(), 2);
        for c in &stats.cores {
            assert!(c.committed >= 2_000);
            assert!(c.loads > 0);
        }
        // Memory-intensive: the L2 must have missed.
        assert!(stats.hierarchy.l2_misses > 0);
        let dram_reads: u64 = stats.channels.iter().map(|c| c.reads_completed).sum();
        assert!(dram_reads > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(quick(1_500), &AgentMix::Parallel("mg"));
        let b = run(quick(1_500), &AgentMix::Parallel("mg"));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hierarchy.l2_misses, b.hierarchy.l2_misses);
    }

    #[test]
    fn criticality_annotations_reach_dram() {
        let cfg = quick(3_000)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
        let stats = run(cfg, &AgentMix::Parallel("swim"));
        let crit_ticks: u64 = stats.channels.iter().map(|c| c.ticks_with_critical).sum();
        assert!(crit_ticks > 0, "critical requests never reached a queue");
        let crit_issued: u64 = stats.cores.iter().map(|c| c.issued_critical_loads).sum();
        assert!(crit_issued > 0);
    }

    #[test]
    fn bundle_runs_on_four_cores() {
        let mut cfg = SystemConfig::multiprogrammed_baseline(1_500);
        cfg.max_cycles = 50_000_000;
        let stats = run(cfg, &AgentMix::Bundle("AELV"));
        assert_eq!(stats.cores.len(), 4);
        assert!(stats.ipc(0) > 0.0);
    }

    #[test]
    fn alone_run_uses_one_core() {
        let mut cfg = SystemConfig::multiprogrammed_baseline(1_500);
        cfg.cores = 1;
        cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
        cfg.hierarchy.l2_mshrs = 32;
        cfg.max_cycles = 50_000_000;
        let stats = run(cfg, &AgentMix::Alone("mcf"));
        assert_eq!(stats.cores.len(), 1);
        assert!(stats.cores[0].committed >= 1_500);
    }

    #[test]
    fn forwards_deliver_in_fifo_order() {
        // Same-deliver-cycle messages must come out in push order and
        // later ones must stay queued: the due set is a strict prefix
        // of the deliver-time-ordered queue.
        let mut sys = System::new(quick(1_000), &AgentMix::Parallel("swim"));
        let at = sys.now() + 1;
        for (addr, core, deliver_at) in [(0x40, 0, at), (0x80, 1, at), (0xC0, 0, at + 1)] {
            sys.forwards.push_back(ForwardMsg {
                deliver_at,
                addr,
                core: CoreId(core),
            });
        }
        sys.step();
        assert_eq!(
            sys.pending_forwards(),
            1,
            "the due prefix is delivered, the later message is retained"
        );
        assert_eq!(sys.forwards.front().unwrap().addr, 0xC0);
        sys.step();
        assert_eq!(sys.pending_forwards(), 0);
    }

    #[test]
    fn idle_horizon_never_hides_events() {
        // Step serially; every time the horizon claims a quiet window,
        // walk through that window cycle by cycle and check nothing
        // event-observable changes before the horizon cycle.
        let mut cfg = quick(600);
        cfg.naive_forwarding = true;
        cfg.scheduler = SchedulerKind::CasRasCrit;
        cfg.sample_epoch = Some(5_000);
        cfg.skip_ahead = false; // this test IS the skip, done by hand
        let mut sys = System::new(cfg, &AgentMix::Parallel("art"));
        fn fingerprint<O: critmem_common::RequestObserver>(
            s: &System<O>,
        ) -> (u64, u64, usize, usize, (usize, usize)) {
            (
                s.committed().iter().sum(),
                s.dram
                    .channel_stats()
                    .iter()
                    .map(|c| c.reads_completed + c.writes_completed + c.refreshes)
                    .sum(),
                s.pending_forwards(),
                s.samples_taken(),
                s.queue_depths(),
            )
        }
        let mut windows = 0u32;
        while !sys.done() && sys.now() < 5_000_000 {
            let h = sys.idle_horizon();
            if h > sys.now() + 1 {
                windows += 1;
                let before = fingerprint(&sys);
                while sys.now() < h - 1 {
                    sys.step();
                    assert_eq!(
                        fingerprint(&sys),
                        before,
                        "an event fired inside a claimed quiet window at cycle {}",
                        sys.now()
                    );
                }
            }
            sys.step();
        }
        assert!(sys.done(), "run must finish under the cycle bound");
        assert!(windows > 0, "workload never produced a quiet window");
    }

    #[test]
    fn skip_ahead_matches_serial_stepping() {
        let mut cfg = quick(1_200);
        cfg.naive_forwarding = true;
        cfg.scheduler = SchedulerKind::CasRasCrit;
        cfg.sample_epoch = Some(10_000);
        let mut serial = cfg.clone();
        serial.skip_ahead = false;
        let a = run(cfg, &AgentMix::Parallel("art"));
        let b = run(serial, &AgentMix::Parallel("art"));
        let (mut wa, mut wb) = (ByteWriter::new(), ByteWriter::new());
        a.encode(&mut wa);
        b.encode(&mut wb);
        assert_eq!(
            wa.into_bytes(),
            wb.into_bytes(),
            "skip-ahead must be byte-identical to serial stepping"
        );
    }

    #[test]
    fn naive_forwarding_promotes_requests() {
        let mut cfg = quick(3_000);
        cfg.naive_forwarding = true;
        cfg.scheduler = SchedulerKind::CasRasCrit;
        let stats = run(cfg, &AgentMix::Parallel("art"));
        let crit_ticks: u64 = stats.channels.iter().map(|c| c.ticks_with_critical).sum();
        assert!(
            crit_ticks > 0,
            "forwarded blocks should mark queued requests"
        );
    }

    #[test]
    fn audited_run_is_silent_and_byte_identical() {
        let wl = AgentMix::Parallel("swim");
        let plain = run(quick(1_500), &wl);
        let audited = Session::new(quick(1_500), &wl)
            .audit(true)
            .run()
            .expect("a clean run must not raise audit violations")
            .stats;
        let (mut wa, mut wb) = (ByteWriter::new(), ByteWriter::new());
        plain.encode(&mut wa);
        audited.encode(&mut wb);
        assert_eq!(
            wa.into_bytes(),
            wb.into_bytes(),
            "auditing must not perturb the run"
        );
    }

    /// A tight watchdog for fault-detection tests: trips quickly so an
    /// injected stall surfaces in well under a second.
    fn faulted(instr: u64) -> SystemConfig {
        let mut cfg = quick(instr);
        cfg.watchdog.no_commit_cycles = 30_000;
        cfg.watchdog.check_interval = 1_024;
        cfg
    }

    #[test]
    fn dropped_read_trips_the_watchdog() {
        let wl = AgentMix::Parallel("swim");
        let plan = crate::faults::FaultPlan::new(7)
            .with_fault(crate::faults::FaultKind::DropRequest { nth_read: 3 });
        let err = Session::new(faulted(1_500), &wl)
            .audit(true)
            .fault(plan)
            .run()
            .expect_err("a dropped read must never complete silently");
        assert!(
            matches!(err, SimError::Watchdog(_)),
            "expected a watchdog trip, got {err}"
        );
    }

    #[test]
    fn duplicated_read_flags_conservation() {
        let wl = AgentMix::Parallel("swim");
        let plan = crate::faults::FaultPlan::new(7)
            .with_fault(crate::faults::FaultKind::DuplicateRequest { nth_read: 3 });
        let err = Session::new(faulted(1_500), &wl)
            .audit(true)
            .fault(plan)
            .run()
            .expect_err("a duplicated request must be flagged");
        match err {
            SimError::AuditViolation(snap) => assert_eq!(snap.auditor, "conservation"),
            other => panic!("expected a conservation violation, got {other}"),
        }
    }

    #[test]
    fn corrupted_decision_flags_protocol() {
        let wl = AgentMix::Parallel("swim");
        let plan = crate::faults::FaultPlan::new(7).with_fault(
            crate::faults::FaultKind::CorruptSchedulerDecision {
                channel: 0,
                at_cycle: 5_000,
            },
        );
        let err = Session::new(faulted(1_500), &wl)
            .audit(true)
            .fault(plan)
            .run()
            .expect_err("a rogue command must be flagged");
        match err {
            SimError::AuditViolation(snap) => assert_eq!(snap.auditor, "protocol"),
            other => panic!("expected a protocol violation, got {other}"),
        }
    }

    #[test]
    fn delayed_read_trips_the_watchdog() {
        let wl = AgentMix::Parallel("swim");
        let plan =
            crate::faults::FaultPlan::new(7).with_fault(crate::faults::FaultKind::DelayRequest {
                nth_read: 3,
                delay: 40_000_000,
            });
        let err = Session::new(faulted(1_500), &wl)
            .audit(true)
            .fault(plan)
            .run()
            .expect_err("a delayed read must never complete silently");
        assert!(matches!(err, SimError::Watchdog(_)), "got {err}");
    }

    /// A baseline for heterogeneous mixes. Streaming agents keep a row
    /// open for long stretches, so FR-FCFS legitimately queues same-bank
    /// victims for hundreds of thousands of cycles — that starvation is
    /// the phenomenon under study, not a hang, so the starved-request
    /// watchdog gets a much looser leash than the core-only default.
    fn hetero(cores: usize, instr: u64) -> SystemConfig {
        let mut cfg = SystemConfig::multiprogrammed_baseline(instr);
        cfg.cores = cores;
        cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(cores);
        cfg.max_cycles = 50_000_000;
        cfg.watchdog.max_request_age = 2_000_000;
        cfg
    }

    #[test]
    fn hetero_mix_runs_and_completes() {
        let mix: AgentMix = "ooo:mcf*2+stream:2+bulk".parse().unwrap();
        let stats = run(hetero(2, 1_000), &mix);
        assert_eq!(stats.cores.len(), 2);
        assert_eq!(stats.agents.len(), 3);
        for a in &stats.agents {
            assert!(a.units_done >= a.units_target, "agent missed its target");
            assert!(a.completed > 0);
        }
        assert!(stats.cores.iter().all(|c| c.committed >= 1_000));
    }

    #[test]
    fn agent_only_mix_runs_without_cores() {
        let mix: AgentMix = "stream:2+prefetch".parse().unwrap();
        let stats = run(hetero(0, 2_000), &mix);
        assert!(stats.cores.is_empty());
        assert_eq!(stats.agents.len(), 3);
        assert!(stats.cycles > 0, "cycles must come from agent finishes");
        let dram_total: u64 = stats
            .channels
            .iter()
            .map(|c| c.reads_completed + c.writes_completed)
            .sum();
        assert!(dram_total > 0);
    }

    #[test]
    fn hetero_mix_byte_identical_across_engine_knobs() {
        let mix: AgentMix = "ooo:mcf+stream+bulk:copy+prefetch".parse().unwrap();
        let base = || {
            let mut cfg = hetero(1, 800);
            cfg.hierarchy.l2_mshrs = 32;
            cfg.sample_epoch = Some(10_000);
            cfg
        };
        let bytes = |stats: RunStats| {
            let mut w = ByteWriter::new();
            stats.encode(&mut w);
            w.into_bytes()
        };
        let reference = bytes(run(base(), &mix));
        let mut serial = base();
        serial.skip_ahead = false;
        assert_eq!(
            bytes(run(serial, &mix)),
            reference,
            "--no-skip-ahead must not perturb a hetero run"
        );
        let mut sharded = base();
        sharded.shards = 2;
        assert_eq!(
            bytes(run(sharded, &mix)),
            reference,
            "--shards must not perturb a hetero run"
        );
        let audited = Session::new(base(), &mix)
            .audit(true)
            .run()
            .expect("a clean hetero run must not raise audit violations")
            .stats;
        assert_eq!(
            bytes(audited),
            reference,
            "--audit must not perturb a hetero run"
        );
    }

    #[test]
    fn hetero_mix_rejects_core_count_mismatch() {
        let mix: AgentMix = "ooo:mcf*2+stream".parse().unwrap();
        let mut cfg = SystemConfig::multiprogrammed_baseline(500);
        cfg.cores = 4;
        let err = System::try_new(cfg, &mix).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "got {err}");
    }

    #[test]
    fn rob_blocking_is_observed() {
        let stats = run(quick(3_000), &AgentMix::Parallel("art"));
        assert!(stats.blocked_load_fraction() > 0.0);
        assert!(
            stats.blocked_cycle_fraction() > 0.05,
            "art should stall the ROB a lot"
        );
    }
}
