//! Deterministic fault injection: typed, seeded fault plans applied at
//! real component boundaries, plus the legacy env-var panic hooks for
//! the sweep-harness resilience tests.
//!
//! # Fault plans
//!
//! A [`FaultPlan`] names the exact faults to inject into one run. Each
//! [`FaultKind`] targets a specific seam of the system:
//!
//! * request-stream faults ([`FaultKind::DropRequest`],
//!   [`FaultKind::DuplicateRequest`], [`FaultKind::DelayRequest`])
//!   intercept the L2→controller enqueue of the *n*-th demand read;
//! * device faults ([`FaultKind::WedgeBank`],
//!   [`FaultKind::CorruptSchedulerDecision`]) corrupt one channel's
//!   controller at a chosen cycle;
//! * artifact faults ([`FaultKind::BitFlipTraceChunk`],
//!   [`FaultKind::BitFlipCheckpoint`]) flip one byte of a serialized
//!   trace or checkpoint before it is read back.
//!
//! The plan is plain data — fully determined by its fields plus the
//! seed — so a campaign run is reproducible from its printed spec
//! alone. Plans attach to a run via `Session::fault` (live faults) or
//! are applied by the `repro audit campaign` runner (artifact faults).
//! The audit campaign's contract: every injected fault must surface as
//! a typed error, a watchdog trip, or an audit violation — never a
//! silently different result.
//!
//! # Panic hooks (legacy env-var path)
//!
//! [`FaultHooks`] carries the panic-injection patterns the worker-pool
//! resilience tests arm through the environment. Compiled to an inert
//! no-op unless the `fault-inject` cargo feature is on; with the
//! feature, [`FaultHooks::from_env`] reads:
//!
//! * `CRITMEM_FAULT_PANIC_KEY` — cells whose memo key contains the
//!   pattern panic on **every** attempt (retry exhaustion path);
//! * `CRITMEM_FAULT_PANIC_ONCE` — matching cells panic on their
//!   **first** attempt only (retry recovery path).
//!
//! The hooks are owned per harness `Runner`, so the once-per-cell
//! bookkeeping resets with every sweep instead of leaking across
//! sweeps that share a process (the old process-global set did leak).

use critmem_common::SimError;
use std::collections::HashSet;
use std::sync::Mutex;

/// One fault to inject, targeting a specific component boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently discard the `nth_read`-th demand read (1-based) at the
    /// L2→controller boundary. The issuing core never hears back, so a
    /// healthy system trips the no-commit watchdog.
    DropRequest {
        /// Which demand read to drop (1-based).
        nth_read: u64,
    },
    /// Enqueue the `nth_read`-th demand read twice. The conservation
    /// auditor flags the duplicate at the boundary.
    DuplicateRequest {
        /// Which demand read to duplicate (1-based).
        nth_read: u64,
    },
    /// Hold the `nth_read`-th demand read back for `delay` CPU cycles
    /// before enqueuing it. With a delay beyond the watchdog's
    /// no-commit threshold, the watchdog trips.
    DelayRequest {
        /// Which demand read to delay (1-based).
        nth_read: u64,
        /// How long to hold it back, in CPU cycles.
        delay: u64,
    },
    /// Freeze one bank of one channel at `at_cycle` (CPU cycles): the
    /// bank stops accepting commands forever, so queued requests age
    /// until the starvation watchdog trips.
    WedgeBank {
        /// Channel index.
        channel: u16,
        /// Rank index within the channel.
        rank: u8,
        /// Bank index within the rank.
        bank: u8,
        /// CPU cycle at (or after) which the bank wedges.
        at_cycle: u64,
    },
    /// Feed one channel a rogue illegal command pair at `at_cycle`
    /// (CPU cycles), modeling a corrupted scheduler decision. The
    /// shadow protocol auditor reports the violation; without the
    /// auditor the perturbation would be silent.
    CorruptSchedulerDecision {
        /// Channel index.
        channel: u16,
        /// CPU cycle at (or after) which the rogue commands issue.
        at_cycle: u64,
    },
    /// Flip one byte of a serialized trace before replaying it; the
    /// chunk CRC must reject it with a typed trace error.
    BitFlipTraceChunk {
        /// Absolute byte offset into the serialized trace.
        byte_offset: u64,
    },
    /// Flip one byte of a serialized `CMCK` checkpoint before loading
    /// it; the payload CRC must reject it with a typed artifact error.
    BitFlipCheckpoint {
        /// Absolute byte offset into the serialized checkpoint.
        byte_offset: u64,
    },
}

impl FaultKind {
    /// Short stable name, used in campaign tables and parse specs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DropRequest { .. } => "drop-read",
            FaultKind::DuplicateRequest { .. } => "dup-read",
            FaultKind::DelayRequest { .. } => "delay-read",
            FaultKind::WedgeBank { .. } => "wedge-bank",
            FaultKind::CorruptSchedulerDecision { .. } => "corrupt-sched",
            FaultKind::BitFlipTraceChunk { .. } => "flip-trace",
            FaultKind::BitFlipCheckpoint { .. } => "flip-ckpt",
        }
    }

    /// Whether this fault targets a serialized artifact (trace or
    /// checkpoint bytes) rather than the live system.
    pub fn is_artifact_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::BitFlipTraceChunk { .. } | FaultKind::BitFlipCheckpoint { .. }
        )
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::DropRequest { nth_read } => write!(f, "drop-read@n{nth_read}"),
            FaultKind::DuplicateRequest { nth_read } => write!(f, "dup-read@n{nth_read}"),
            FaultKind::DelayRequest { nth_read, delay } => {
                write!(f, "delay-read@n{nth_read},d{delay}")
            }
            FaultKind::WedgeBank {
                channel,
                rank,
                bank,
                at_cycle,
            } => write!(f, "wedge-bank@ch{channel},r{rank},b{bank},c{at_cycle}"),
            FaultKind::CorruptSchedulerDecision { channel, at_cycle } => {
                write!(f, "corrupt-sched@ch{channel},c{at_cycle}")
            }
            FaultKind::BitFlipTraceChunk { byte_offset } => {
                write!(f, "flip-trace@o{byte_offset}")
            }
            FaultKind::BitFlipCheckpoint { byte_offset } => {
                write!(f, "flip-ckpt@o{byte_offset}")
            }
        }
    }
}

impl std::str::FromStr for FaultKind {
    type Err = SimError;

    /// Parses the spec grammar [`FaultKind`]'s `Display` emits:
    /// `name@field…` with comma-separated single-letter-prefixed
    /// numeric fields, e.g. `corrupt-sched@ch0,c5000` or
    /// `delay-read@n3,d4000000`.
    ///
    /// # Examples
    ///
    /// ```
    /// use critmem::FaultKind;
    /// let k: FaultKind = "wedge-bank@ch0,r0,b0,c100".parse().unwrap();
    /// assert_eq!(k.to_string(), "wedge-bank@ch0,r0,b0,c100");
    /// assert!("warp-core@n1".parse::<FaultKind>().is_err());
    /// ```
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let bad = |msg: String| SimError::Config(format!("fault spec {spec:?}: {msg}"));
        let (name, rest) = spec
            .split_once('@')
            .ok_or_else(|| bad("expected name@fields".into()))?;
        let fields: Vec<&str> = rest.split(',').collect();
        let field = |prefix: &str| -> Result<u64, SimError> {
            fields
                .iter()
                // Prefixes must bind to a full digit run so `c` does
                // not greedily claim the `ch0` channel field.
                .find_map(|f| {
                    f.strip_prefix(prefix)
                        .filter(|v| !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()))
                })
                .ok_or_else(|| bad(format!("missing field {prefix}<N>")))?
                .parse::<u64>()
                .map_err(|e| bad(format!("field {prefix}: {e}")))
        };
        let narrow = |v: u64, max: u64, what: &str| -> Result<u64, SimError> {
            if v > max {
                Err(bad(format!("{what} {v} out of range (max {max})")))
            } else {
                Ok(v)
            }
        };
        Ok(match name {
            "drop-read" => FaultKind::DropRequest {
                nth_read: field("n")?,
            },
            "dup-read" => FaultKind::DuplicateRequest {
                nth_read: field("n")?,
            },
            "delay-read" => FaultKind::DelayRequest {
                nth_read: field("n")?,
                delay: field("d")?,
            },
            "wedge-bank" => FaultKind::WedgeBank {
                channel: narrow(field("ch")?, u64::from(u16::MAX), "channel")? as u16,
                rank: narrow(field("r")?, u64::from(u8::MAX), "rank")? as u8,
                bank: narrow(field("b")?, u64::from(u8::MAX), "bank")? as u8,
                at_cycle: field("c")?,
            },
            "corrupt-sched" => FaultKind::CorruptSchedulerDecision {
                channel: narrow(field("ch")?, u64::from(u16::MAX), "channel")? as u16,
                at_cycle: field("c")?,
            },
            "flip-trace" => FaultKind::BitFlipTraceChunk {
                byte_offset: field("o")?,
            },
            "flip-ckpt" => FaultKind::BitFlipCheckpoint {
                byte_offset: field("o")?,
            },
            other => {
                return Err(bad(format!(
                    "unknown fault {other:?} (expected drop-read, dup-read, delay-read, \
                     wedge-bank, corrupt-sched, flip-trace, or flip-ckpt)"
                )))
            }
        })
    }
}

/// A seeded, fully deterministic set of faults for one run or
/// campaign cell. The seed keys the campaign's bookkeeping (and any
/// future randomized placement); the faults themselves are explicit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Campaign seed; distinguishes repeated runs of the same matrix.
    pub seed: u64,
    /// The faults to inject, in declaration order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// Creates an empty plan under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// Parses a semicolon-separated list of fault specs (the
    /// [`FromStr`](std::str::FromStr) grammar on [`FaultKind`]) into a
    /// plan under `seed`.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] on the first malformed spec.
    pub fn parse(specs: &str, seed: u64) -> Result<Self, SimError> {
        let mut plan = FaultPlan::new(seed);
        for spec in specs.split(';').filter(|s| !s.trim().is_empty()) {
            plan.faults.push(spec.trim().parse()?);
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Panic-injection hooks for the sweep-harness resilience tests, owned
/// by one harness `Runner` (see the module docs for the environment
/// variables and why ownership is per-runner).
#[derive(Debug, Default)]
pub struct FaultHooks {
    panic_key: Option<String>,
    panic_once: Option<String>,
    fired: Mutex<HashSet<String>>,
}

impl FaultHooks {
    /// Builds hooks from the `CRITMEM_FAULT_PANIC_*` environment
    /// variables. Without the `fault-inject` cargo feature the
    /// environment is never read and the hooks are inert.
    pub fn from_env() -> Self {
        #[cfg(feature = "fault-inject")]
        {
            let read = |var: &str| std::env::var(var).ok().filter(|p| !p.is_empty());
            FaultHooks {
                panic_key: read("CRITMEM_FAULT_PANIC_KEY"),
                panic_once: read("CRITMEM_FAULT_PANIC_ONCE"),
                fired: Mutex::new(HashSet::new()),
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            FaultHooks::default()
        }
    }

    /// Panics if an armed pattern matches `key` (substring match on
    /// the cell's memo key). With no armed patterns — always the case
    /// without the `fault-inject` feature — this is two `Option`
    /// checks.
    pub fn maybe_inject(&self, key: &str) {
        if let Some(pat) = &self.panic_key {
            if key.contains(pat.as_str()) {
                panic!("injected fault: cell {key:?} matched CRITMEM_FAULT_PANIC_KEY={pat:?}");
            }
        }
        if let Some(pat) = &self.panic_once {
            if key.contains(pat.as_str()) && self.fired.lock().unwrap().insert(key.to_string()) {
                panic!(
                    "injected transient fault: cell {key:?} matched \
                     CRITMEM_FAULT_PANIC_ONCE={pat:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_display() {
        let specs = [
            "drop-read@n5",
            "dup-read@n3",
            "delay-read@n2,d4000000",
            "wedge-bank@ch0,r1,b7,c1000",
            "corrupt-sched@ch1,c5000",
            "flip-trace@o100",
            "flip-ckpt@o64",
        ];
        for spec in specs {
            let k: FaultKind = spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(k.to_string(), spec);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop-read",                   // no fields
            "drop-read@x5",                // wrong prefix
            "delay-read@n2",               // missing delay
            "wedge-bank@ch0,r1,b7",        // missing cycle
            "warp-core@n1",                // unknown fault
            "wedge-bank@ch99999,r0,b0,c1", // channel out of range
        ] {
            assert!(bad.parse::<FaultKind>().is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn plan_parses_spec_lists() {
        let plan = FaultPlan::parse("drop-read@n1; corrupt-sched@ch0,c50", 42).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0], FaultKind::DropRequest { nth_read: 1 });
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
        assert!(FaultPlan::parse("nope@n1", 0).is_err());
    }

    #[test]
    fn artifact_faults_are_classified() {
        assert!(FaultKind::BitFlipTraceChunk { byte_offset: 1 }.is_artifact_fault());
        assert!(FaultKind::BitFlipCheckpoint { byte_offset: 1 }.is_artifact_fault());
        assert!(!FaultKind::DropRequest { nth_read: 1 }.is_artifact_fault());
    }

    #[test]
    fn inert_hooks_never_fire() {
        // Default hooks carry no patterns regardless of feature flags.
        let hooks = FaultHooks::default();
        hooks.maybe_inject("any|cell|key");
    }

    #[test]
    fn once_hooks_track_per_instance_not_per_process() {
        // The per-runner reset semantics satellite: two hook instances
        // with the same pattern each fire independently.
        let mk = || FaultHooks {
            panic_key: None,
            panic_once: Some("target".into()),
            fired: Mutex::new(HashSet::new()),
        };
        for _ in 0..2 {
            let hooks = mk();
            let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                hooks.maybe_inject("a|target|cell")
            }));
            assert!(hit.is_err(), "fresh instance must fire");
            // Second attempt on the same instance recovers.
            hooks.maybe_inject("a|target|cell");
        }
    }
}
