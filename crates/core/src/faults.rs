//! Feature-gated fault injection for the resilience test harness.
//!
//! Compiled to a no-op unless the `fault-inject` cargo feature is on.
//! With the feature enabled, two environment variables arm panics at
//! the start of a sweep cell's execution (both match on a substring of
//! the cell's memo key):
//!
//! * `CRITMEM_FAULT_PANIC_KEY` — the cell panics on **every** attempt,
//!   so bounded retry is exhausted and the cell is reported failed.
//! * `CRITMEM_FAULT_PANIC_ONCE` — the cell panics on its **first**
//!   attempt only, proving that the worker pool's retry recovers from
//!   transient faults.
//!
//! Injection happens inside the worker's `catch_unwind` boundary, so
//! an armed fault exercises exactly the path a real bug would take.

/// Panics if an armed fault matches `key`. No-op without the
/// `fault-inject` feature.
#[cfg(feature = "fault-inject")]
pub fn maybe_inject(key: &str) {
    use std::collections::HashSet;
    use std::sync::Mutex;

    if let Ok(pat) = std::env::var("CRITMEM_FAULT_PANIC_KEY") {
        if !pat.is_empty() && key.contains(&pat) {
            panic!("injected fault: cell {key:?} matched CRITMEM_FAULT_PANIC_KEY={pat:?}");
        }
    }
    if let Ok(pat) = std::env::var("CRITMEM_FAULT_PANIC_ONCE") {
        if !pat.is_empty() && key.contains(&pat) {
            static FIRED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
            let mut fired = FIRED.lock().unwrap();
            if fired
                .get_or_insert_with(HashSet::new)
                .insert(key.to_string())
            {
                panic!(
                    "injected transient fault: cell {key:?} matched \
                     CRITMEM_FAULT_PANIC_ONCE={pat:?}"
                );
            }
        }
    }
}

/// Panics if an armed fault matches `key`. No-op without the
/// `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn maybe_inject(_key: &str) {}
