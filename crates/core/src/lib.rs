//! `critmem` — a full-system reproduction of *"Improving Memory
//! Scheduling via Processor-Side Load Criticality Information"*
//! (Ghose, Lee, Martínez; ISCA 2013) in Rust.
//!
//! The paper pairs a tiny per-core **Commit Block Predictor** — which
//! learns the static loads that block the reorder-buffer head — with a
//! lean FR-FCFS-derived DRAM scheduler that simply prepends the
//! predicted criticality magnitude to its age comparator. This crate
//! assembles the whole evaluation platform from the workspace's
//! substrate crates and reproduces every figure and table of the
//! paper's evaluation:
//!
//! * [`SystemConfig`] / [`System`] — the 8-core CMP of Tables 1 and 3,
//! * [`experiments`] — one harness per paper figure/table,
//! * [`overhead`] — the §5.7 storage-overhead accounting,
//! * the `repro` binary — prints every reproduced table.
//!
//! # Quick start
//!
//! ```
//! use critmem::{run, PredictorKind, SystemConfig, WorkloadKind};
//! use critmem_predict::CbpMetric;
//! use critmem_sched::SchedulerKind;
//!
//! // Baseline FR-FCFS vs the paper's MaxStallTime CBP scheduler on a
//! // small swim run (2 cores / 2k instructions to keep the doctest fast).
//! let mut base = SystemConfig::paper_baseline(2_000);
//! base.cores = 2;
//! base.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
//! let crit = base.clone()
//!     .with_scheduler(SchedulerKind::CasRasCrit)
//!     .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
//!
//! let b = run(base, &WorkloadKind::Parallel("swim"));
//! let c = run(crit, &WorkloadKind::Parallel("swim"));
//! assert!(b.cycles > 0 && c.cycles > 0);
//! ```

pub mod config;
pub mod experiments;
pub mod faults;
pub mod journal;
pub mod metrics;
pub mod overhead;
pub mod pool;
pub mod system;

pub use config::{PredictorKind, SystemConfig, WorkloadKind};
pub use metrics::{geomean, speedup, Average};
pub use system::{run, run_traced, try_run, try_run_traced, RunStats, System};
