//! `critmem` — a full-system reproduction of *"Improving Memory
//! Scheduling via Processor-Side Load Criticality Information"*
//! (Ghose, Lee, Martínez; ISCA 2013) in Rust.
//!
//! The paper pairs a tiny per-core **Commit Block Predictor** — which
//! learns the static loads that block the reorder-buffer head — with a
//! lean FR-FCFS-derived DRAM scheduler that simply prepends the
//! predicted criticality magnitude to its age comparator. This crate
//! assembles the whole evaluation platform from the workspace's
//! substrate crates and reproduces every figure and table of the
//! paper's evaluation:
//!
//! * [`SystemConfig`] / [`System`] — the 8-core CMP of Tables 1 and 3,
//! * [`Session`] — the one run API: observe, sample, checkpoint, warm-start,
//! * [`checkpoint`] — `CMCK` snapshots for warm-started sweeps,
//! * [`experiments`] — one harness per paper figure/table,
//! * [`overhead`] — the §5.7 storage-overhead accounting,
//! * [`audit`] / [`faults`] — independent run auditors and typed,
//!   deterministic fault-injection plans (`repro audit`),
//! * the `repro` binary — prints every reproduced table.
//!
//! # Quick start
//!
//! ```
//! use critmem::{PredictorKind, Session, SystemConfig, AgentMix};
//! use critmem_predict::CbpMetric;
//! use critmem_sched::SchedulerKind;
//!
//! // Baseline FR-FCFS vs the paper's MaxStallTime CBP scheduler on a
//! // small swim run (2 cores / 2k instructions to keep the doctest fast).
//! let mut base = SystemConfig::paper_baseline(2_000);
//! base.cores = 2;
//! base.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
//! let wl = AgentMix::Parallel("swim");
//!
//! let b = Session::new(base.clone(), &wl).run().unwrap();
//! let c = Session::new(base, &wl)
//!     .scheduler(SchedulerKind::CasRasCrit)
//!     .predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime))
//!     .run()
//!     .unwrap();
//! assert!(b.stats.cycles > 0 && c.stats.cycles > 0);
//! ```
//!
//! # Warm-started sweeps
//!
//! Sweep cells that share a workload and platform re-simulate a
//! byte-identical warmup region. [`Session::checkpoint_at`] snapshots
//! the full architectural state at a boundary cycle;
//! [`Session::from_checkpoint`] fans every cell out from that shared
//! [`checkpoint::Checkpoint`], swapping in the cell's scheduler and
//! predictor fresh at the boundary.

pub mod audit;
pub mod checkpoint;
pub mod config;
pub mod experiments;
pub mod faults;
pub mod journal;
pub mod metrics;
pub mod overhead;
pub mod pool;
pub mod session;
pub mod system;

pub use audit::ConservationAuditor;
pub use checkpoint::Checkpoint;
pub use config::{AgentMix, PredictorKind, SystemConfig};
pub use faults::{FaultHooks, FaultKind, FaultPlan};
pub use metrics::{geomean, speedup, Average};
pub use session::{RunOutput, Session};
pub use system::{RunStats, System};
