//! The on-disk sweep journal (`CMJR` format).
//!
//! As a sweep executes, the [`Runner`](crate::experiments::Runner)
//! appends every *completed* simulation result — one CRC-framed record
//! per memo-table entry — to a [`SweepJournal`]. If the process is
//! killed mid-sweep (OOM, ^C, a machine reboot), `repro --resume`
//! reopens the journal, recovers the longest valid prefix of records,
//! preloads them into the memo tables, and re-runs **only the missing
//! cells**. The simulator is deterministic and every persisted codec is
//! lossless (f64s travel as raw bits), so a resumed sweep's final
//! output is byte-identical to an uninterrupted run.
//!
//! # Format
//!
//! ```text
//! "CMJR" magic | u32 version | record*
//! record := u8 kind (1 = run, 2 = replay)
//!         | u32 payload length
//!         | payload bytes
//!         | u32 CRC-32 of the payload
//! payload := length-prefixed key string | stats encoding
//! ```
//!
//! A record that is truncated (the tail of a killed write) or fails its
//! CRC ends recovery: everything before it is trusted, the file is
//! truncated back to the valid prefix, and appending continues from
//! there. Failed cells are deliberately *not* journaled — a resume
//! retries them, which is exactly what the operator wants after fixing
//! whatever killed the run.

use crate::system::RunStats;
use critmem_common::codec::{ByteReader, ByteWriter};
use critmem_common::{crc32, SimError};
use critmem_trace::ReplayStats;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal file.
pub const MAGIC: &[u8; 4] = b"CMJR";
/// Format version written by this build.
pub const VERSION: u32 = 1;

const KIND_RUN: u8 = 1;
const KIND_REPLAY: u8 = 2;

/// One recovered journal record: a completed simulation keyed exactly
/// as the runner's memo table keys it.
#[derive(Debug)]
pub enum JournalEntry {
    /// An execution-driven run.
    Run {
        /// The runner's memo key.
        key: String,
        /// The persisted result.
        stats: RunStats,
    },
    /// A trace replay.
    Replay {
        /// The runner's replay memo key.
        key: String,
        /// The persisted result.
        stats: ReplayStats,
    },
}

impl JournalEntry {
    /// The memo key this entry restores.
    pub fn key(&self) -> &str {
        match self {
            JournalEntry::Run { key, .. } | JournalEntry::Replay { key, .. } => key,
        }
    }
}

/// An append-only journal of completed sweep cells.
#[derive(Debug)]
pub struct SweepJournal {
    file: File,
    path: PathBuf,
}

fn io_err(path: &Path, source: std::io::Error) -> SimError {
    SimError::from(source).with_path(path)
}

impl SweepJournal {
    /// Creates (or truncates) a journal at `path` and writes the
    /// header.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] if the file cannot be created or written.
    pub fn create(path: &Path) -> Result<Self, SimError> {
        let mut file = File::create(path).map_err(|e| io_err(path, e))?;
        file.write_all(MAGIC).map_err(|e| io_err(path, e))?;
        file.write_all(&VERSION.to_le_bytes())
            .map_err(|e| io_err(path, e))?;
        file.flush().map_err(|e| io_err(path, e))?;
        Ok(SweepJournal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing journal for resumption: decodes the longest
    /// valid prefix of records, truncates away any torn tail (so the
    /// next append starts on a record boundary), and returns the
    /// recovered entries together with the reopened journal.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] if the file cannot be read or reopened, and
    /// [`SimError::Artifact`] if the header is missing or from a
    /// different format version (a torn *record* is recovery, a bad
    /// *header* is the wrong file).
    pub fn resume(path: &Path) -> Result<(Self, Vec<JournalEntry>), SimError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err(path, e))?;
        if bytes.len() < 8 || &bytes[..4] != MAGIC {
            return Err(SimError::Artifact(format!(
                "{} is not a sweep journal (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(SimError::Artifact(format!(
                "{}: journal version {version} (this build reads {VERSION})",
                path.display()
            )));
        }
        let mut entries = Vec::new();
        let mut valid_end = 8usize;
        let mut pos = 8usize;
        while let Some((entry, next)) = decode_record(&bytes, pos) {
            entries.push(entry);
            valid_end = next;
            pos = next;
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(valid_end as u64)
            .map_err(|e| io_err(path, e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, e))?;
        Ok((
            SweepJournal {
                file,
                path: path.to_path_buf(),
            },
            entries,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a completed execution-driven run.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on a failed write.
    pub fn append_run(&mut self, key: &str, stats: &RunStats) -> Result<(), SimError> {
        let mut payload = ByteWriter::new();
        payload.put_str(key);
        stats.encode(&mut payload);
        self.append_record(KIND_RUN, &payload.into_bytes())
    }

    /// Appends a completed trace replay.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on a failed write.
    pub fn append_replay(&mut self, key: &str, stats: &ReplayStats) -> Result<(), SimError> {
        let mut payload = ByteWriter::new();
        payload.put_str(key);
        stats.encode(&mut payload);
        self.append_record(KIND_REPLAY, &payload.into_bytes())
    }

    /// Writes one framed record and flushes, so a kill between appends
    /// never tears more than the record being written.
    fn append_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), SimError> {
        let mut frame = Vec::with_capacity(payload.len() + 9);
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&crc32::checksum(payload).to_le_bytes());
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err(&self.path, e))
    }
}

/// Decodes the record starting at `pos`, returning it and the offset of
/// the next record — or `None` on a torn/corrupt record (end of the
/// valid prefix).
fn decode_record(bytes: &[u8], pos: usize) -> Option<(JournalEntry, usize)> {
    let header = bytes.get(pos..pos + 5)?;
    let kind = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    let payload = bytes.get(pos + 5..pos + 5 + len)?;
    let crc_bytes = bytes.get(pos + 5 + len..pos + 9 + len)?;
    if crc32::checksum(payload) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return None;
    }
    let mut r = ByteReader::new(payload);
    let key = r.get_str().ok()?;
    let entry = match kind {
        KIND_RUN => JournalEntry::Run {
            key,
            stats: RunStats::decode(&mut r).ok()?,
        },
        KIND_REPLAY => JournalEntry::Replay {
            key,
            stats: ReplayStats::decode(&mut r).ok()?,
        },
        _ => return None,
    };
    Some((entry, pos + 9 + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AgentMix, SystemConfig};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("critmem-journal-{name}-{}", std::process::id()));
        p
    }

    fn small_stats() -> RunStats {
        let mut cfg = SystemConfig::paper_baseline(300);
        cfg.cores = 1;
        cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
        crate::session::Session::new(cfg, &AgentMix::Alone("swim"))
            .run()
            .unwrap_or_else(|e| panic!("{e}"))
            .stats
    }

    #[test]
    fn round_trips_run_and_replay_records() {
        let path = tmp("roundtrip");
        let stats = small_stats();
        let replay = ReplayStats {
            injected: 11,
            completed: 11,
            ..Default::default()
        };
        {
            let mut j = SweepJournal::create(&path).unwrap();
            j.append_run("swim|FR-FCFS@300", &stats).unwrap();
            j.append_replay("swim|FCFS|replay@300", &replay).unwrap();
        }
        let (_, entries) = SweepJournal::resume(&path).unwrap();
        assert_eq!(entries.len(), 2);
        match &entries[0] {
            JournalEntry::Run { key, stats: got } => {
                assert_eq!(key, "swim|FR-FCFS@300");
                assert_eq!(got.cycles, stats.cycles);
                assert_eq!(got.cores[0].committed, stats.cores[0].committed);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match &entries[1] {
            JournalEntry::Replay { key, stats: got } => {
                assert_eq!(key, "swim|FCFS|replay@300");
                assert_eq!(got.injected, 11);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_appending_continues() {
        let path = tmp("torn");
        let stats = small_stats();
        {
            let mut j = SweepJournal::create(&path).unwrap();
            j.append_run("a@300", &stats).unwrap();
            j.append_run("b@300", &stats).unwrap();
        }
        // Simulate a kill mid-write: chop 7 bytes off the second record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (mut j, entries) = SweepJournal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1, "torn record must not survive");
        assert_eq!(entries[0].key(), "a@300");
        j.append_run("c@300", &stats).unwrap();
        drop(j);
        let (_, entries) = SweepJournal::resume(&path).unwrap();
        let keys: Vec<&str> = entries.iter().map(|e| e.key()).collect();
        assert_eq!(keys, ["a@300", "c@300"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_invalidates_exactly_the_flipped_record() {
        let path = tmp("bitflip");
        let stats = small_stats();
        {
            let mut j = SweepJournal::create(&path).unwrap();
            j.append_run("a@300", &stats).unwrap();
            j.append_run("b@300", &stats).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2; // inside the first or second payload
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, entries) = SweepJournal::resume(&path).unwrap();
        assert!(
            entries.len() < 2,
            "a flipped bit must kill at least the record holding it"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_file_is_an_artifact_error() {
        let path = tmp("wrongfile");
        std::fs::write(&path, b"not a journal at all").unwrap();
        let err = SweepJournal::resume(&path).unwrap_err();
        assert!(matches!(err, SimError::Artifact(_)), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }
}
