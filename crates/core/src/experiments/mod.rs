//! Per-figure/table experiment harnesses (see the DESIGN.md experiment
//! index).
//!
//! Every function takes a memoizing [`Runner`] so that shared runs
//! (notably each app's FR-FCFS baseline) are simulated once, and
//! returns a structured result with a `to_table()` text rendering —
//! the same rows/series the paper's figure reports.

pub mod audit;
pub mod compare;
pub mod fairness;
pub mod harness;
pub mod hetero;
pub mod multiprog;
pub mod parallel_figs;
pub mod stats_export;
pub mod streaming;
pub mod tables;
pub mod trace_sweep;

pub use audit::{
    audit_schedulers, campaign, certify, inject, AuditCertification, CampaignRow, CertifyRow,
    Detection, FaultCampaign,
};
pub use compare::{fig10, fig11, Fig11};
pub use fairness::{fairness_frontier, frontier_schedulers, FairnessFrontier, FrontierPoint};
pub use harness::{CellFailure, Runner, Scale, TextTable};
pub use hetero::{default_mixes, hetero_study, HeteroPoint, HeteroStudy};
pub use multiprog::{fig12, Fig12};
pub use parallel_figs::{
    fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, Fig1, Fig6, Fig8, Fig9, SpeedupFigure,
    SpeedupSeries,
};
pub use stats_export::stats_export;
pub use streaming::{stream_replay, synth_replay, StreamReplayOutcome, SynthReplayOutcome};
pub use tables::{
    config_dump, naive, reset_study, table5, table7, NaiveResult, ResetResult, Table5, Table7,
};
pub use trace_sweep::{
    default_schedulers, trace_sweep, trace_sweep_with, TraceSweep, TraceSweepRow,
};
