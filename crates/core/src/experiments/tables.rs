//! Reproductions of Table 5 (counter widths), Table 7 (scheduler
//! summary), the §5.1 naive-forwarding experiment, the §5.3.2 periodic
//! table-reset study, and the configuration dumps of Tables 1–4.

use crate::config::PredictorKind;
use crate::experiments::compare::fig10;
use crate::experiments::harness::{Runner, TextTable};
use crate::experiments::multiprog::fig12;
use crate::experiments::parallel_figs::fig4;
use crate::metrics::mean;
use crate::overhead::{paper_counter_width, table7_qualitative, OverheadModel};
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

/// Table 5: maximum observed criticality-counter values and the bit
/// widths they imply, measured vs the paper's 500M-instruction values.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// `(metric, max observed, bits, paper bits)`.
    pub rows: Vec<(CbpMetric, u64, u32, u32)>,
}

impl Table5 {
    /// Renders the table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 5: criticality counter widths",
            &["max observed", "bits (measured)", "bits (paper)"],
        );
        for (m, max, bits, paper) in &self.rows {
            t.row(
                m.name(),
                vec![max.to_string(), bits.to_string(), paper.to_string()],
            );
        }
        t
    }
}

/// Runs Table 5: worst-case observed counter values across all apps
/// and cores under the CASRAS-Crit scheduler.
pub fn table5(r: &mut Runner) -> Table5 {
    let apps = r.scale.apps.clone();
    let rows = CbpMetric::ALL
        .map(|metric| {
            let mut max_val = 0u64;
            let mut max_bits = 1u32;
            for &app in &apps {
                let s = r.parallel(app, SchedulerKind::CasRasCrit, PredictorKind::cbp64(metric));
                for obs in s.predictor_observed.iter().flatten() {
                    max_val = max_val.max(obs.0);
                    max_bits = max_bits.max(obs.1);
                }
            }
            (metric, max_val, max_bits, paper_counter_width(metric))
        })
        .to_vec();
    Table5 { rows }
}

/// One Table 7 row: `(scheduler, parallel speedup, multiprog weighted
/// speedup, storage, processor-side?, scales?, low contention?)`.
pub type Table7Row = (String, Option<f64>, Option<f64>, String, bool, bool, bool);

/// Table 7: the cross-scheduler summary — measured speedups composed
/// with the analytic storage model and the paper's qualitative rows.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// The rendered comparison rows.
    pub rows: Vec<Table7Row>,
}

impl Table7 {
    /// Renders the table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 7: scheduler comparison summary",
            &[
                "parallel speedup (vs FR-FCFS)",
                "multiprog W-speedup (vs PAR-BS)",
                "storage (8 cores)",
                "proc-side",
                "hi-speed",
                "low-contention",
            ],
        );
        let yn = |b: bool| {
            if b {
                "yes".to_string()
            } else {
                "no".to_string()
            }
        };
        let pct = |v: Option<f64>| v.map(TextTable::pct).unwrap_or_else(|| "-".to_string());
        for (name, par, mp, storage, ps, hs, lc) in &self.rows {
            t.row(
                name.clone(),
                vec![
                    pct(*par),
                    pct(*mp),
                    storage.clone(),
                    yn(*ps),
                    yn(*hs),
                    yn(*lc),
                ],
            );
        }
        t
    }
}

/// Runs Table 7 (reuses the Figure 4 / 10 / 12 runs via the memoizing
/// runner).
pub fn table7(r: &mut Runner) -> Table7 {
    let f4 = fig4(r);
    let f10 = fig10(r);
    let f12 = if r.scale.bundles.is_empty() {
        None
    } else {
        Some(fig12(r))
    };
    let quali = table7_qualitative();
    let find = |name: &str| quali.iter().find(|q| q.scheduler == name).expect("row");
    let mp = |label: &str| f12.as_ref().and_then(|f| f.average_of(label));
    let binary = OverheadModel::paper_parallel(CbpMetric::Binary);
    let maxstall = OverheadModel::paper_parallel(CbpMetric::MaxStallTime);
    let rows = vec![
        (
            "AHB (Hur/Lin)".to_string(),
            f10.average_of("AHB (Hur/Lin)"),
            None,
            find("AHB (Hur/Lin)").storage.clone(),
            false,
            true,
            true,
        ),
        (
            "TCM".to_string(),
            None,
            mp("TCM"),
            find("TCM").storage.clone(),
            false,
            true,
            false,
        ),
        (
            "MORSE-P".to_string(),
            f10.average_of("MORSE-P"),
            None,
            find("MORSE-P").storage.clone(),
            true,
            false,
            true,
        ),
        (
            "Binary CBP".to_string(),
            f4.average_of("Binary"),
            None,
            format!(
                "{}-{} B",
                binary.total_bytes_min(),
                binary.total_bytes_max()
            ),
            true,
            true,
            true,
        ),
        (
            "MaxStallTime CBP".to_string(),
            f4.average_of("MaxStallTime"),
            mp("MaxStallTime"),
            format!(
                "{}-{} B",
                maxstall.total_bytes_min(),
                maxstall.total_bytes_max()
            ),
            true,
            true,
            true,
        ),
    ];
    Table7 { rows }
}

/// §5.1: the predictor-less naive forwarding experiment (paper: 3.5%,
/// "within simulation noise").
#[derive(Debug, Clone)]
pub struct NaiveResult {
    /// Per-app speedups of naive forwarding over FR-FCFS.
    pub per_app: Vec<(&'static str, f64)>,
    /// Per-app speedups of the Binary CBP for contrast.
    pub cbp_per_app: Vec<(&'static str, f64)>,
}

impl NaiveResult {
    /// Average naive-forwarding speedup.
    pub fn average(&self) -> f64 {
        mean(&self.per_app.iter().map(|(_, v)| *v).collect::<Vec<_>>())
    }

    /// Average Binary CBP speedup.
    pub fn cbp_average(&self) -> f64 {
        mean(&self.cbp_per_app.iter().map(|(_, v)| *v).collect::<Vec<_>>())
    }

    /// Renders the comparison.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Section 5.1: naive predictor-less forwarding vs Binary CBP (vs FR-FCFS)",
            &["naive forwarding", "Binary CBP"],
        );
        for (i, (app, v)) in self.per_app.iter().enumerate() {
            t.row(
                *app,
                vec![TextTable::pct(*v), TextTable::pct(self.cbp_per_app[i].1)],
            );
        }
        t.row(
            "Average",
            vec![
                TextTable::pct(self.average()),
                TextTable::pct(self.cbp_average()),
            ],
        );
        t
    }
}

/// Runs the §5.1 experiment.
pub fn naive(r: &mut Runner) -> NaiveResult {
    let apps = r.scale.apps.clone();
    let mut per_app = Vec::new();
    let mut cbp_per_app = Vec::new();
    for &app in &apps {
        let base = r.baseline(app);
        let fwd = r.parallel_with(
            app,
            SchedulerKind::CasRasCrit,
            PredictorKind::None,
            "naive-fwd",
            |mut c| {
                c.naive_forwarding = true;
                c
            },
        );
        per_app.push((app, base.cycles as f64 / fwd.cycles as f64));
        let cbp = r.parallel(
            app,
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::Binary),
        );
        cbp_per_app.push((app, base.cycles as f64 / cbp.cycles as f64));
    }
    NaiveResult {
        per_app,
        cbp_per_app,
    }
}

/// §5.3.2: periodic CBP reset at 100K cycles on the paper's test set
/// (everything except the {fft, mg, radix} training apps).
#[derive(Debug, Clone)]
pub struct ResetResult {
    /// Test apps.
    pub apps: Vec<&'static str>,
    /// Per-app speedup without reset.
    pub no_reset: Vec<f64>,
    /// Per-app speedup with 100K-cycle reset.
    pub with_reset: Vec<f64>,
}

impl ResetResult {
    /// Averages `(no reset, with reset)`.
    pub fn averages(&self) -> (f64, f64) {
        (mean(&self.no_reset), mean(&self.with_reset))
    }

    /// Renders the comparison.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Section 5.3.2: 64-entry Binary CBP, periodic 100K-cycle reset (test set)",
            &["no reset", "100K reset"],
        );
        for (i, app) in self.apps.iter().enumerate() {
            t.row(
                *app,
                vec![
                    TextTable::pct(self.no_reset[i]),
                    TextTable::pct(self.with_reset[i]),
                ],
            );
        }
        let (a, b) = self.averages();
        t.row("Average", vec![TextTable::pct(a), TextTable::pct(b)]);
        t
    }
}

/// Runs the §5.3.2 experiment.
pub fn reset_study(r: &mut Runner) -> ResetResult {
    let train = ["fft", "mg", "radix"];
    let apps: Vec<&'static str> = r
        .scale
        .apps
        .iter()
        .copied()
        .filter(|a| !train.contains(a))
        .collect();
    let mut no_reset = Vec::new();
    let mut with_reset = Vec::new();
    for &app in &apps {
        let base = r.baseline(app);
        let plain = r.parallel(
            app,
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::Binary),
        );
        no_reset.push(base.cycles as f64 / plain.cycles as f64);
        let reset = r.parallel(
            app,
            SchedulerKind::CasRasCrit,
            PredictorKind::Cbp {
                metric: CbpMetric::Binary,
                size: critmem_predict::TableSize::Entries(64),
                reset_interval: Some(100_000),
            },
        );
        with_reset.push(base.cycles as f64 / reset.cycles as f64);
    }
    ResetResult {
        apps,
        no_reset,
        with_reset,
    }
}

/// Prints Tables 1–4 (the configuration tables) from the live config
/// structures, so the dump can never drift from what is simulated.
pub fn config_dump() -> String {
    use critmem_cpu::CoreConfig;
    use critmem_dram::DramConfig;
    let core = CoreConfig::paper_baseline();
    let dram = DramConfig::paper_baseline();
    let t = dram.preset.timing;
    let mut out = String::new();
    let mut t1 = TextTable::new("Table 1: core parameters", &["value"]);
    t1.row("Frequency", vec!["4.27 GHz".into()]);
    t1.row("Number of cores", vec!["8".into()]);
    t1.row(
        "Fetch/Issue/Commit width",
        vec![format!(
            "{}/{}/{}",
            core.fetch_width, core.issue_width, core.commit_width
        )],
    );
    t1.row(
        "Int/FP/Ld/St/Br units",
        vec![format!(
            "{}/{}/{}/{}/{}",
            core.int_units, core.fp_units, core.ld_units, core.st_units, core.br_units
        )],
    );
    t1.row(
        "Int/FP multipliers",
        vec![format!("{}/{}", core.int_mul_units, core.fp_mul_units)],
    );
    t1.row("ROB entries", vec![core.rob_entries.to_string()]);
    t1.row(
        "Ld/St queue entries",
        vec![format!("{}/{}", core.lq_entries, core.sq_entries)],
    );
    t1.row(
        "Max unresolved branches",
        vec![core.max_unresolved_branches.to_string()],
    );
    t1.row(
        "Branch mispredict penalty",
        vec![format!("{} cycles min.", core.mispredict_penalty)],
    );
    out.push_str(&t1.to_string());

    let mut t2 = TextTable::new("Table 2: parallel applications", &["suite"]);
    for (app, suite) in [
        ("scalparc", "Data mining (NU-MineBench)"),
        ("cg", "NAS OpenMP"),
        ("mg", "NAS OpenMP"),
        ("art", "SPEC OpenMP"),
        ("equake", "SPEC OpenMP"),
        ("swim", "SPEC OpenMP"),
        ("fft", "SPLASH-2"),
        ("ocean", "SPLASH-2"),
        ("radix", "SPLASH-2"),
    ] {
        t2.row(app, vec![suite.into()]);
    }
    out.push_str(&t2.to_string());

    let mut t3 = TextTable::new("Table 3: L2 and DDR3-2133 memory", &["value"]);
    t3.row("Shared L2", vec!["4 MB, 64 B block, 8-way".into()]);
    t3.row("L2 MSHR entries", vec!["64".into()]);
    t3.row(
        "L2 round-trip latency",
        vec!["32 cycles (uncontended)".into()],
    );
    t3.row("Transaction queue", vec![dram.queue_capacity.to_string()]);
    t3.row(
        "DRAM bus frequency",
        vec![format!("{} MHz (DDR)", dram.preset.bus_mhz)],
    );
    t3.row(
        "Channels",
        vec![format!("{} (2 for quad-core)", dram.org.channels)],
    );
    t3.row(
        "DIMM configuration",
        vec![format!("{}-rank per channel", dram.org.ranks_per_channel)],
    );
    t3.row(
        "Banks",
        vec![format!("{} per rank", dram.org.banks_per_rank)],
    );
    t3.row("Row buffer size", vec![format!("{} B", dram.org.row_bytes)]);
    t3.row("Address mapping", vec!["page interleaving".into()]);
    t3.row("Row policy", vec!["open page".into()]);
    t3.row("Burst length", vec![t.burst_len.to_string()]);
    for (name, v) in [
        ("tRCD", t.t_rcd),
        ("tCL", t.t_cl),
        ("tWL", t.t_wl),
        ("tCCD", t.t_ccd),
        ("tWTR", t.t_wtr),
        ("tWR", t.t_wr),
        ("tRTP", t.t_rtp),
        ("tRP", t.t_rp),
        ("tRRD", t.t_rrd),
        ("tRTRS", t.t_rtrs),
        ("tRAS", t.t_ras),
        ("tRC", t.t_rc),
        ("tRFC", t.t_rfc),
    ] {
        t3.row(name, vec![format!("{v} DRAM cycles")]);
    }
    out.push_str(&t3.to_string());

    let mut t4 = TextTable::new("Table 4: multiprogrammed workloads", &["apps", "classes"]);
    for b in critmem_workloads::BUNDLES {
        let classes: String = b
            .apps
            .iter()
            .map(|a| {
                critmem_workloads::app_class(a)
                    .expect("classified")
                    .letter()
            })
            .collect::<Vec<char>>()
            .iter()
            .collect();
        t4.row(b.name, vec![b.apps.join(" - "), classes]);
    }
    out.push_str(&t4.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    #[test]
    fn config_dump_contains_all_four_tables() {
        let s = config_dump();
        for needle in ["Table 1", "Table 2", "Table 3", "Table 4", "tRFC", "RGTM"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table5_measures_widths() {
        let mut r = Runner::new(Scale {
            instructions: 1_500,
            apps: vec!["art"],
            sweep_apps: vec![],
            bundles: vec![],
        });
        let t = table5(&mut r);
        assert_eq!(t.rows.len(), 5);
        let binary = t.rows.iter().find(|r| r.0 == CbpMetric::Binary).unwrap();
        assert_eq!(binary.1, 1, "binary max observed value is 1");
        assert_eq!(binary.2, 1);
        let max = t
            .rows
            .iter()
            .find(|r| r.0 == CbpMetric::MaxStallTime)
            .unwrap();
        assert!(max.1 > 1, "stall times should exceed one cycle");
    }
}
