//! The heterogeneous-mix study (ROADMAP item 3): sweep the scheduler
//! zoo over agent mixes that put latency-critical OoO cores on the same
//! channels as bandwidth-hungry streamers, PIM-style bulk engines, and
//! prefetch-dominated front-ends, and report — per scheduler, per mix —
//! the OoO weighted speedup, the per-class maximum slowdown, and how
//! many participants blew their QoS slowdown budget.
//!
//! Slowdown denominators follow the class: an OoO core's slowdown is
//! `IPC_alone / IPC_shared` (the Figure 12 definition, memo-shared with
//! `repro fairness`), while an accelerator-class agent's slowdown is
//! `finish_shared / finish_alone` — the cycle at which it completed its
//! fixed work-unit target, against a run where that single agent owns
//! the platform. A participant violates its budget when its slowdown
//! exceeds `qos_millis / 1000` (see [`critmem_cpu::AgentClass`]).
//!
//! Results export through [`SeriesExport`] exactly like the fairness
//! frontier: one run per scheduler, one sample row per mix (the `cycle`
//! column holds the mix index), so the serialized bytes are identical
//! for any `--jobs`, `--shards`, `--no-skip-ahead`, or `--audit`
//! setting.

use crate::config::{AgentMix, SystemConfig};
use crate::experiments::fairness::{alone_ipc, frontier_schedulers};
use crate::experiments::harness::{Runner, TextTable};
use crate::metrics::mean;
use critmem_common::obs::{MetricVisitor, Sampler, Schema, SeriesExport};
use critmem_cpu::AgentClass;

/// The default mixes `repro hetero` sweeps when none are named: one
/// stream-saturated, one bulk-batched, and one drawing on all four
/// classes at once.
pub fn default_mixes() -> Vec<&'static str> {
    vec![
        "ooo:mcf*2+stream*2",
        "ooo:mcf*2+bulk*2",
        "ooo:mcf+ooo:art1+stream+bulk+prefetch",
    ]
}

/// One scheduler's results, one entry per mix.
#[derive(Debug, Clone)]
pub struct HeteroPoint {
    /// Scheduler display name.
    pub label: &'static str,
    /// OoO weighted speedup per mix (`Σ IPC_shared / IPC_alone`; zero
    /// for an agent-only mix).
    pub weighted_speedup: Vec<f64>,
    /// Maximum OoO-core slowdown per mix.
    pub ooo_max_slowdown: Vec<f64>,
    /// Maximum accelerator-agent slowdown per mix.
    pub agent_max_slowdown: Vec<f64>,
    /// Participants (cores and agents) whose slowdown exceeded their
    /// QoS budget, per mix.
    pub qos_violations: Vec<u64>,
}

/// The study result: one [`HeteroPoint`] per scheduler, over a shared
/// mix list.
#[derive(Debug, Clone)]
pub struct HeteroStudy {
    /// Canonical mix grammar strings, in run order (the export's
    /// `cycle` column indexes into this list).
    pub mixes: Vec<String>,
    /// One point per scheduler, in
    /// [`frontier_schedulers`](crate::experiments::frontier_schedulers)
    /// order.
    pub points: Vec<HeteroPoint>,
}

impl HeteroStudy {
    /// Renders the study as a text table: one row per scheduler,
    /// mix-averaged weighted speedup and per-class max slowdowns, plus
    /// the total QoS-budget violation count across all mixes.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Heterogeneous-mix sweep (mix averages)",
            &[
                "weighted speedup",
                "ooo max slowdown",
                "agent max slowdown",
                "QoS violations",
            ],
        );
        for p in &self.points {
            t.row(
                p.label,
                vec![
                    TextTable::ratio(mean(&p.weighted_speedup)),
                    TextTable::ratio(mean(&p.ooo_max_slowdown)),
                    TextTable::ratio(mean(&p.agent_max_slowdown)),
                    format!("{}", p.qos_violations.iter().sum::<u64>()),
                ],
            );
        }
        t
    }

    /// The point with a given scheduler label.
    pub fn point(&self, label: &str) -> Option<&HeteroPoint> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Assembles the JSONL/CSV-exportable series: one run per
    /// scheduler, one sample per mix (cycle = mix index), four gauges
    /// per sample. Label-sorted by construction, so the bytes are
    /// worker-count independent.
    pub fn to_export(&self) -> SeriesExport {
        let walk_one = |v: &mut dyn MetricVisitor, ws: f64, os: f64, ags: f64, viol: f64| {
            v.component("hetero");
            v.gauge("weighted_speedup", "ratio", ws);
            v.gauge("ooo_max_slowdown", "ratio", os);
            v.gauge("agent_max_slowdown", "ratio", ags);
            v.gauge("qos_violations", "count", viol);
        };
        let mut export = SeriesExport::new(1);
        for p in &self.points {
            let schema = Schema::build(|v| walk_one(v, 0.0, 0.0, 0.0, 0.0));
            let mut sampler = Sampler::new(schema, 1);
            for (i, _) in self.mixes.iter().enumerate() {
                sampler.sample(i as u64, |v| {
                    walk_one(
                        v,
                        p.weighted_speedup[i],
                        p.ooo_max_slowdown[i],
                        p.agent_max_slowdown[i],
                        p.qos_violations[i] as f64,
                    )
                });
            }
            export.push(p.label, sampler.into_series());
        }
        export
    }
}

/// The shared-platform configuration for a hetero mix: the Figure 12
/// multiprogrammed memory system with the core count the mix pins.
/// Streaming agents legitimately keep rows open long enough to queue
/// same-bank victims for hundreds of thousands of cycles under
/// FR-FCFS — that starvation is the measured phenomenon, not a hang —
/// so the starved-request watchdog gets a much looser leash than the
/// core-only default.
fn hetero_cfg(r: &Runner, cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::multiprogrammed_baseline(r.scale.instructions);
    cfg.cores = cores;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(cores);
    cfg.max_cycles = r
        .scale
        .instructions
        .saturating_mul(40_000)
        .max(1_000_000_000);
    cfg.watchdog.max_request_age = 2_000_000;
    cfg.shards = r.shards;
    cfg.skip_ahead = r.skip_ahead;
    cfg.audit = r.audit;
    cfg
}

/// Expands a mix into its participants in system order: the OoO cores
/// as `(app, qos_millis)` (core index order) and the accelerator
/// agents as `(class, profile, qos_millis)` (agent index order).
#[allow(clippy::type_complexity)]
fn participants(
    mix: &AgentMix,
) -> (
    Vec<(&'static str, u32)>,
    Vec<(AgentClass, &'static str, u32)>,
) {
    let mut cores = Vec::new();
    let mut agents = Vec::new();
    for spec in mix.specs().unwrap_or(&[]) {
        for _ in 0..spec.count {
            if spec.class == AgentClass::Ooo {
                cores.push((spec.profile, spec.effective_qos_millis()));
            } else {
                agents.push((spec.class, spec.profile, spec.effective_qos_millis()));
            }
        }
    }
    (cores, agents)
}

/// Finish cycle of one accelerator agent running alone on the hetero
/// platform (zero cores) — the slowdown denominator for its class.
/// Memoized per `(class, profile)`, shared across every mix and
/// scheduler (the alone platform always runs the FR-FCFS default: with
/// one participant there is nothing to arbitrate).
fn agent_alone_finish(r: &mut Runner, class: AgentClass, profile: &'static str) -> f64 {
    let term = format!("{}:{profile}", class.keyword());
    let mix: AgentMix = term.parse().expect("canonical term parses");
    let cfg = hetero_cfg(r, 0);
    let stats = r.run_keyed(format!("heteroalone|{term}"), cfg, &mix);
    stats.agents.first().map_or(1.0, |a| a.finish.max(1) as f64)
}

/// Runs the study over `mixes` (canonical grammar strings paired with
/// their parsed form). Drives [`Runner::run_parallel`] itself, so all
/// `mixes × schedulers` cells fan out across `--jobs` workers.
pub fn hetero_study(runner: &mut Runner, mixes: &[(String, AgentMix)]) -> HeteroStudy {
    runner.run_parallel(|r| {
        let zoo = frontier_schedulers();
        let mut points: Vec<HeteroPoint> = zoo
            .iter()
            .map(|(l, _, _)| HeteroPoint {
                label: l,
                weighted_speedup: Vec::new(),
                ooo_max_slowdown: Vec::new(),
                agent_max_slowdown: Vec::new(),
                qos_violations: Vec::new(),
            })
            .collect();
        for (name, mix) in mixes {
            let (ooo, agents) = participants(mix);
            let alone: Vec<f64> = ooo.iter().map(|&(app, _)| alone_ipc(r, app)).collect();
            let agent_alone: Vec<f64> = agents
                .iter()
                .map(|&(class, profile, _)| agent_alone_finish(r, class, profile))
                .collect();
            for (si, (label, sched, pred)) in zoo.iter().enumerate() {
                let cfg = hetero_cfg(r, ooo.len())
                    .with_scheduler(*sched)
                    .with_predictor(*pred);
                let stats = r.run_keyed(format!("hetero|{name}|{label}"), cfg, mix);
                // Per-core slowdowns (shared IPC against memo-shared
                // alone IPC), then per-agent slowdowns (finish-cycle
                // ratio at equal work targets).
                let ooo_slow: Vec<f64> = alone
                    .iter()
                    .enumerate()
                    .map(|(i, &al)| al / stats.ipc(i).max(1e-12))
                    .collect();
                let agent_slow: Vec<f64> = agent_alone
                    .iter()
                    .enumerate()
                    .map(|(i, &al)| {
                        // Planning-pass placeholders carry no agents;
                        // any real run reports every agent it built.
                        stats
                            .agents
                            .get(i)
                            .map_or(1.0, |a| a.finish.max(1) as f64 / al)
                    })
                    .collect();
                let violations = ooo_slow
                    .iter()
                    .zip(ooo.iter())
                    .filter(|(&s, &(_, qos))| s > f64::from(qos) / 1_000.0)
                    .count()
                    + agent_slow
                        .iter()
                        .zip(agents.iter())
                        .filter(|(&s, &(_, _, qos))| s > f64::from(qos) / 1_000.0)
                        .count();
                points[si].weighted_speedup.push(
                    alone
                        .iter()
                        .enumerate()
                        .map(|(i, &al)| stats.ipc(i) / al.max(1e-12))
                        .sum(),
                );
                points[si]
                    .ooo_max_slowdown
                    .push(ooo_slow.iter().copied().fold(0.0, f64::max));
                points[si]
                    .agent_max_slowdown
                    .push(agent_slow.iter().copied().fold(0.0, f64::max));
                points[si].qos_violations.push(violations as u64);
            }
        }
        HeteroStudy {
            mixes: mixes.iter().map(|(n, _)| n.clone()).collect(),
            points,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    fn small_runner() -> Runner {
        Runner::new(Scale {
            instructions: 1_000,
            apps: vec![],
            sweep_apps: vec![],
            bundles: vec![],
        })
    }

    fn parse_mixes(specs: &[&str]) -> Vec<(String, AgentMix)> {
        specs
            .iter()
            .map(|s| {
                let mix: AgentMix = s.parse().expect("grammar");
                (mix.to_string(), mix)
            })
            .collect()
    }

    #[test]
    fn study_covers_the_zoo_on_one_mix() {
        let mut r = small_runner();
        let mixes = parse_mixes(&["ooo:mcf+stream+bulk"]);
        let study = hetero_study(&mut r, &mixes);
        assert!(!r.has_failures(), "{:?}", r.failures());
        assert_eq!(study.mixes, vec!["ooo:mcf+stream+bulk".to_string()]);
        assert!(study.points.len() >= 6, "zoo must span >= 6 schedulers");
        for p in &study.points {
            assert_eq!(p.weighted_speedup.len(), 1, "{}", p.label);
            let ws = p.weighted_speedup[0];
            let os = p.ooo_max_slowdown[0];
            let ags = p.agent_max_slowdown[0];
            assert!(ws > 0.0 && ws < 4.0, "{}: ws {ws}", p.label);
            // Slowdowns can be enormous under FR-FCFS — an unthrottled
            // streamer starving a bulk engine's row misses is the
            // phenomenon this study exists to measure — so only sanity
            // (positive, finite) is asserted here.
            assert!(
                os >= 1.0 && os.is_finite(),
                "{}: ooo slowdown {os}",
                p.label
            );
            assert!(
                ags > 0.0 && ags.is_finite(),
                "{}: agent slowdown {ags}",
                p.label
            );
        }
        let table = study.to_table().to_string();
        assert!(table.contains("Heterogeneous-mix sweep"));
    }

    #[test]
    fn export_round_trips_and_is_deterministic() {
        let mixes = parse_mixes(&["ooo:mcf+stream"]);
        let mut a = small_runner();
        let ea = hetero_study(&mut a, &mixes).to_export();
        let mut b = small_runner();
        b.jobs = 2;
        let eb = hetero_study(&mut b, &mixes).to_export();
        assert_eq!(
            ea.to_jsonl(),
            eb.to_jsonl(),
            "--jobs must not perturb the export"
        );
        let parsed = SeriesExport::parse_jsonl(&ea.to_jsonl()).expect("lossless");
        assert_eq!(parsed, ea);
        for run in &ea.runs {
            assert!(run.series.value(0, "hetero.weighted_speedup").is_some());
            assert!(run.series.value(0, "hetero.qos_violations").is_some());
        }
    }

    #[test]
    fn default_mixes_parse_and_pin_their_cores() {
        for s in default_mixes() {
            let mix: AgentMix = s.parse().expect("default mixes must parse");
            assert!(mix.ooo_count().unwrap() >= 1);
            assert!(mix.agent_count() >= 1);
            assert_eq!(mix.to_string(), s, "defaults are canonical spellings");
        }
    }
}
