//! The `repro audit` experiments: certify that the independent
//! auditors are silent and free on clean runs, and prove by injection
//! that every supported fault is *detected*.
//!
//! Two complementary campaigns:
//!
//! * [`certify`] runs every scheduler twice — audited and unaudited —
//!   and checks that (a) no violation is raised and (b) the exported
//!   statistics are byte-identical. This is the "auditors are
//!   observers, not participants" contract.
//! * [`campaign`] injects each supported [`FaultKind`] into an
//!   otherwise clean run and classifies how it surfaced: a typed
//!   error, a watchdog trip, or an audit violation. A fault that
//!   changes nothing observable is classified [`Detection::Silent`] —
//!   the one outcome the campaign exists to rule out.
//!
//! [`inject`] runs a single parsed fault spec for targeted
//! reproduction (`repro audit inject corrupt-sched@ch0,c5000`).

use crate::checkpoint::Checkpoint;
use crate::config::{AgentMix, SystemConfig};
use crate::experiments::harness::TextTable;
use crate::faults::{FaultKind, FaultPlan};
use crate::session::Session;
use critmem_common::codec::ByteWriter;
use critmem_common::{BankId, RankId, SimError};
use critmem_dram::DramConfig;
use critmem_sched::{SchedulerKind, TcmTiebreak};
use critmem_trace::{Fingerprint, ReplayConfig, Trace, TraceRecord, TraceReplayer};

/// The scheduler roster both audit campaigns sweep: every queue
/// discipline in the tree, so a protocol bug in any of them would
/// fail certification.
pub fn audit_schedulers() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("FCFS", SchedulerKind::Fcfs),
        ("FR-FCFS", SchedulerKind::FrFcfs),
        ("Crit-CASRAS", SchedulerKind::CritCasRas),
        ("CASRAS-Crit", SchedulerKind::CasRasCrit),
        ("AHB", SchedulerKind::Ahb),
        ("ATLAS", SchedulerKind::Atlas),
        ("Minimalist", SchedulerKind::Minimalist),
        ("PAR-BS", SchedulerKind::ParBs { marking_cap: 5 }),
        (
            "TCM",
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            },
        ),
    ]
}

/// The small 2-core platform both campaigns run on: large enough to
/// exercise every DRAM command class (ACT/PRE/CAS/write/refresh),
/// small enough that the full matrix finishes in seconds.
fn campaign_cfg(instructions: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(instructions);
    cfg.cores = 2;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    cfg.max_cycles = 20_000_000;
    cfg
}

/// [`campaign_cfg`] with a tight forward-progress watchdog, so a
/// fault that stalls the machine surfaces in tens of thousands of
/// cycles instead of millions.
fn faulted_cfg(instructions: u64) -> SystemConfig {
    let mut cfg = campaign_cfg(instructions);
    cfg.watchdog.no_commit_cycles = 30_000;
    cfg.watchdog.check_interval = 1_024;
    cfg
}

/// One scheduler's certification outcome.
#[derive(Debug)]
pub struct CertifyRow {
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Audited statistics were byte-identical to unaudited.
    pub identical: bool,
    /// The audited run's error, when it raised one (a certification
    /// failure — clean runs must be silent).
    pub error: Option<String>,
}

/// Result of [`certify`]: one row per scheduler.
#[derive(Debug)]
pub struct AuditCertification {
    /// Outcomes in [`audit_schedulers`] order.
    pub rows: Vec<CertifyRow>,
}

impl AuditCertification {
    /// True when every scheduler ran silently and byte-identically.
    pub fn all_clean(&self) -> bool {
        self.rows.iter().all(|r| r.identical && r.error.is_none())
    }

    /// Renders the certification as a text table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Audit certification (audited vs unaudited, per scheduler)",
            &["violations", "stats"],
        );
        for r in &self.rows {
            t.row(
                r.scheduler,
                vec![
                    r.error.clone().unwrap_or_else(|| "none".into()),
                    if r.identical {
                        "byte-identical".into()
                    } else {
                        "DIVERGED".into()
                    },
                ],
            );
        }
        t
    }
}

/// Runs every scheduler audited and unaudited on the same workload
/// and certifies that auditing is invisible: zero violations, and the
/// exported statistics byte-identical.
pub fn certify() -> AuditCertification {
    let wl = AgentMix::Parallel("swim");
    let encode = |stats: &crate::system::RunStats| {
        let mut w = ByteWriter::new();
        stats.encode(&mut w);
        w.into_bytes()
    };
    let rows = audit_schedulers()
        .into_iter()
        .map(|(name, kind)| {
            let plain = Session::new(campaign_cfg(1_500), &wl)
                .scheduler(kind)
                .run()
                .map(|out| encode(&out.stats));
            let audited = Session::new(campaign_cfg(1_500), &wl)
                .scheduler(kind)
                .audit(true)
                .run()
                .map(|out| encode(&out.stats));
            match (plain, audited) {
                (Ok(a), Ok(b)) => CertifyRow {
                    scheduler: name,
                    identical: a == b,
                    error: None,
                },
                (_, Err(e)) | (Err(e), _) => CertifyRow {
                    scheduler: name,
                    identical: false,
                    error: Some(e.to_string()),
                },
            }
        })
        .collect();
    AuditCertification { rows }
}

/// How an injected fault surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// A typed [`SimError`] other than a watchdog or audit violation
    /// (e.g. a CRC failure decoding a corrupted artifact).
    TypedError,
    /// The forward-progress watchdog tripped.
    Watchdog,
    /// An auditor raised [`SimError::AuditViolation`].
    AuditViolation,
    /// Nothing observable changed — the failure mode the campaign
    /// exists to rule out.
    Silent,
}

impl Detection {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Detection::TypedError => "typed error",
            Detection::Watchdog => "watchdog",
            Detection::AuditViolation => "audit violation",
            Detection::Silent => "SILENT",
        }
    }
}

/// One injected fault's outcome.
#[derive(Debug)]
pub struct CampaignRow {
    /// The fault's printed spec (parseable by `repro audit inject`).
    pub spec: String,
    /// How it surfaced.
    pub detection: Detection,
    /// The surfaced error's message (empty when silent).
    pub detail: String,
    /// The process exit code the surfaced error maps to (1 when
    /// silent, so a silent fault still fails a scripted campaign).
    pub exit_code: i32,
}

/// Result of [`campaign`]: one row per injected fault.
#[derive(Debug)]
pub struct FaultCampaign {
    /// Outcomes, one per fault in the default matrix.
    pub rows: Vec<CampaignRow>,
}

impl FaultCampaign {
    /// True when no fault was silent.
    pub fn all_detected(&self) -> bool {
        self.rows.iter().all(|r| r.detection != Detection::Silent)
    }

    /// Renders the detection-coverage table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fault-injection campaign (every fault must be detected)",
            &["detected as", "detail"],
        );
        for r in &self.rows {
            let mut detail = r.detail.clone();
            if detail.len() > 72 {
                detail.truncate(69);
                detail.push_str("...");
            }
            t.row(r.spec.clone(), vec![r.detection.label().into(), detail]);
        }
        t
    }
}

/// The default fault matrix: one representative of every supported
/// [`FaultKind`].
fn default_faults() -> Vec<FaultKind> {
    vec![
        FaultKind::DropRequest { nth_read: 3 },
        FaultKind::DuplicateRequest { nth_read: 3 },
        FaultKind::DelayRequest {
            nth_read: 3,
            delay: 40_000_000,
        },
        FaultKind::WedgeBank {
            channel: 0,
            rank: 0,
            bank: 0,
            at_cycle: 0,
        },
        FaultKind::CorruptSchedulerDecision {
            channel: 0,
            at_cycle: 5_000,
        },
        FaultKind::BitFlipTraceChunk { byte_offset: 200 },
        FaultKind::BitFlipCheckpoint { byte_offset: 64 },
    ]
}

/// Injects every fault in the default matrix and classifies each
/// outcome. [`FaultCampaign::all_detected`] is the campaign's pass
/// criterion.
pub fn campaign() -> FaultCampaign {
    let rows = default_faults().into_iter().map(run_fault).collect();
    FaultCampaign { rows }
}

/// Parses and injects a single fault spec (see [`FaultKind`]'s
/// `FromStr` for the grammar).
///
/// # Errors
///
/// [`SimError::Config`] when the spec does not parse.
pub fn inject(spec: &str) -> Result<CampaignRow, SimError> {
    let kind: FaultKind = spec.parse()?;
    Ok(run_fault(kind))
}

/// Injects one fault into an otherwise clean run and classifies the
/// outcome.
fn run_fault(kind: FaultKind) -> CampaignRow {
    let spec = kind.to_string();
    let outcome = match kind {
        FaultKind::BitFlipTraceChunk { byte_offset } => flip_trace(byte_offset),
        FaultKind::BitFlipCheckpoint { byte_offset } => flip_checkpoint(byte_offset),
        FaultKind::WedgeBank {
            channel,
            rank,
            bank,
            ..
        } => wedge_replay(channel, rank, bank),
        live => {
            let plan = FaultPlan::new(0xC0FFEE).with_fault(live);
            Session::new(faulted_cfg(1_500), &AgentMix::Parallel("swim"))
                .audit(true)
                .fault(plan)
                .run()
                .map(|_| ())
        }
    };
    match outcome {
        Ok(()) => CampaignRow {
            spec,
            detection: Detection::Silent,
            detail: String::new(),
            exit_code: 1,
        },
        Err(err) => {
            let detection = match &err {
                SimError::Watchdog(_) => Detection::Watchdog,
                SimError::AuditViolation(_) => Detection::AuditViolation,
                _ => Detection::TypedError,
            };
            CampaignRow {
                spec,
                detection,
                exit_code: err.exit_code(),
                detail: err.to_string(),
            }
        }
    }
}

/// A synthetic trace whose every request decodes to channel 0 /
/// rank 0 / bank 0 (address zero), so a wedge on that bank starves
/// the whole stream.
fn single_bank_trace(n: u64) -> Trace {
    let cfg = DramConfig::paper_baseline();
    let fingerprint = Fingerprint::of(2, 4_270, &cfg);
    let records = (0..n)
        .map(|i| TraceRecord {
            enqueue_cycle: 10 + i * 10,
            issued_at: i * 10,
            id: i,
            addr: 0,
            crit: 0,
            core: (i % 2) as u8,
            kind: critmem_common::AccessKind::Read,
        })
        .collect();
    Trace {
        fingerprint,
        source: "audit-wedge".into(),
        records,
    }
}

/// Wedges one bank before replaying a trace aimed at it: every
/// request starves, and either the watchdog or the protocol auditor
/// must notice.
fn wedge_replay(channel: u16, rank: u8, bank: u8) -> Result<(), SimError> {
    let trace = single_bank_trace(100);
    let dram_cfg = trace
        .fingerprint
        .dram_config()
        .map_err(|e| SimError::Trace(e.to_string()))?;
    let mut dram = critmem_dram::DramSystem::new(dram_cfg, |ch| {
        SchedulerKind::FrFcfs.build(2, u64::from(ch.0))
    });
    dram.wedge_bank(channel as usize, RankId(rank), BankId(bank));
    let mut cfg = ReplayConfig::default().with_audit(true);
    cfg.watchdog.no_commit_cycles = 30_000;
    cfg.watchdog.check_interval = 1_024;
    TraceReplayer::new(trace, dram, cfg)
        .map_err(|e| SimError::Trace(e.to_string()))?
        .try_run()
        .map(|_| ())
}

/// Serializes a trace, flips one byte, and reads it back: the
/// interleaved chunk CRCs must reject it with a typed error.
fn flip_trace(byte_offset: u64) -> Result<(), SimError> {
    let trace = single_bank_trace(300);
    let mut bytes = trace
        .to_bytes()
        .map_err(|e| SimError::Trace(e.to_string()))?;
    let idx = (byte_offset as usize) % bytes.len();
    bytes[idx] ^= 0x40;
    match Trace::read_from(std::io::Cursor::new(bytes)) {
        Ok(_) => Ok(()),
        Err(e) => Err(SimError::Trace(e.to_string())),
    }
}

/// Captures a checkpoint, flips one byte of its serialized form, and
/// reads it back: the CMCK CRC must reject it with a typed error.
fn flip_checkpoint(byte_offset: u64) -> Result<(), SimError> {
    let ckpt = Session::new(campaign_cfg(1_500), &AgentMix::Parallel("swim"))
        .checkpoint_at(2_000)
        .run_to_checkpoint()?;
    let mut bytes = ckpt.to_bytes();
    let idx = (byte_offset as usize) % bytes.len();
    bytes[idx] ^= 0x40;
    Checkpoint::from_bytes(&bytes).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_flips_are_typed_errors() {
        assert!(matches!(flip_trace(200), Err(SimError::Trace(_))));
        assert!(matches!(flip_checkpoint(64), Err(SimError::Artifact(_))));
    }

    #[test]
    fn wedged_replay_is_detected() {
        let err = wedge_replay(0, 0, 0).expect_err("a wedged bank must be detected");
        assert!(
            matches!(err, SimError::Watchdog(_) | SimError::AuditViolation(_)),
            "got {err}"
        );
    }

    #[test]
    fn campaign_detects_every_fault() {
        let report = campaign();
        assert_eq!(report.rows.len(), 7);
        for row in &report.rows {
            assert_ne!(
                row.detection,
                Detection::Silent,
                "fault {} was not detected",
                row.spec
            );
            assert!(row.exit_code != 0);
        }
        assert!(report.all_detected());
    }

    #[test]
    fn inject_parses_and_runs_one_spec() {
        let row = inject("corrupt-sched@ch0,c5000").unwrap();
        assert_eq!(row.detection, Detection::AuditViolation);
        assert_eq!(row.exit_code, 4);
        assert!(inject("warp-core@n1").is_err());
    }
}
