//! The `repro stats` experiment: run workloads with epoch sampling
//! enabled and assemble the per-run time series into one
//! [`SeriesExport`] (the JSONL/CSV formats of DESIGN.md §6e).
//!
//! Sampled runs flow through the ordinary [`Runner`] memo/parallel
//! machinery: with `--jobs N` each worker samples into its own run's
//! series, and [`SeriesExport::push`] orders runs by label, so the
//! merged export is byte-identical regardless of worker count or
//! completion order.

use super::harness::Runner;
use crate::config::PredictorKind;
use critmem_common::SeriesExport;
use critmem_sched::SchedulerKind;

/// Runs `apps` under `(scheduler, predictor)` with metric sampling
/// every `epoch` CPU cycles and collects the series, one export run
/// per app labeled `app|scheduler|predictor`.
///
/// # Panics
///
/// Panics if `epoch` is zero or an app name is unknown.
pub fn stats_export(
    runner: &mut Runner,
    apps: &[&'static str],
    scheduler: SchedulerKind,
    predictor: PredictorKind,
    epoch: u64,
) -> SeriesExport {
    runner.run_parallel(|r| {
        let mut export = SeriesExport::new(epoch);
        for &app in apps {
            let stats = r.parallel_with(
                app,
                scheduler,
                predictor,
                &format!("sampled:{epoch}"),
                |c| c.with_sampling(epoch),
            );
            // During a planning dry run the placeholder stats carry no
            // series; the export assembled then is discarded.
            if let Some(series) = stats.series.clone() {
                export.push(
                    format!("{app}|{}|{}", scheduler.name(), predictor.name()),
                    series,
                );
            }
        }
        export
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use critmem_predict::CbpMetric;

    #[test]
    fn export_covers_apps_and_samples() {
        let mut r = Runner::new(Scale::quick());
        let export = stats_export(
            &mut r,
            &["art", "swim"],
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::MaxStallTime),
            5_000,
        );
        assert_eq!(export.runs.len(), 2);
        for run in &export.runs {
            assert!(run.series.len() >= 2, "expected several samples");
            // The acceptance-criteria metrics are all present.
            for id in [
                "cpu.core0.ipc",
                "cpu.core0.rob_head_blocked_cycles",
                "cbp.core0.coverage",
                "cache.l2.mshr_occupancy",
                "dram.ch0.row_hit_rate",
                "dram.ch0.bus_utilization",
                "dram.ch0.mean_critical_read_latency",
                "dram.ch0.mean_noncritical_read_latency",
            ] {
                assert!(
                    run.series.schema().index_of(id).is_some(),
                    "metric {id} missing from schema"
                );
            }
        }
    }
}
