//! Reproductions of the scheduler-comparison figures: Figure 10
//! (MaxStallTime vs AHB vs MORSE-P vs Crit-RL) and Figure 11 (MORSE
//! under a restricted command-evaluation width).

use crate::config::PredictorKind;
use crate::experiments::harness::{Runner, TextTable};
use crate::experiments::parallel_figs::{SpeedupFigure, SpeedupSeries};
use crate::metrics::mean;
use critmem_predict::CbpMetric;
use critmem_sched::{MorseConfig, SchedulerKind};

/// Figure 10: the proposed MaxStallTime scheduler against AHB,
/// MORSE-P, and Crit-RL (MORSE with criticality features), per app.
pub fn fig10(r: &mut Runner) -> SpeedupFigure {
    let apps = r.scale.apps.clone();
    let configs: [(&str, SchedulerKind, PredictorKind); 4] = [
        (
            "MaxStallTime",
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::MaxStallTime),
        ),
        ("AHB (Hur/Lin)", SchedulerKind::Ahb, PredictorKind::None),
        (
            "MORSE-P",
            SchedulerKind::Morse(MorseConfig::default()),
            PredictorKind::None,
        ),
        (
            "Crit-RL",
            SchedulerKind::Morse(MorseConfig {
                use_criticality: true,
                ..MorseConfig::default()
            }),
            PredictorKind::cbp64(CbpMetric::Binary),
        ),
    ];
    let mut series = Vec::new();
    for (label, sched, pred) in configs {
        let per_app = apps
            .iter()
            .map(|&app| {
                let base = r.baseline(app);
                let v = r.parallel(app, sched, pred);
                base.cycles as f64 / v.cycles as f64
            })
            .collect();
        series.push(SpeedupSeries {
            label: label.into(),
            per_app,
        });
    }
    SpeedupFigure {
        title: "Figure 10: state-of-the-art schedulers (vs FR-FCFS)".into(),
        apps,
        series,
    }
}

/// Figure 11: MORSE-P performance as the number of ready commands it
/// may evaluate per DRAM cycle shrinks (the silicon-cost argument of
/// §5.8.1).
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// `(commands evaluated, average speedup vs FR-FCFS)`.
    pub rows: Vec<(usize, f64)>,
}

impl Fig11 {
    /// Renders the figure.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 11: MORSE-P vs commands evaluated per DRAM cycle",
            &["avg speedup vs FR-FCFS"],
        );
        for (cap, v) in &self.rows {
            t.row(format!("{cap} commands"), vec![TextTable::pct(*v)]);
        }
        t
    }

    /// Speedup at a given evaluation cap.
    pub fn at(&self, cap: usize) -> Option<f64> {
        self.rows.iter().find(|(c, _)| *c == cap).map(|(_, v)| *v)
    }
}

/// Runs Figure 11 over the runner's sweep apps.
pub fn fig11(r: &mut Runner) -> Fig11 {
    let apps = r.scale.sweep_apps.clone();
    let mut rows = Vec::new();
    for cap in [6usize, 9, 12, 15, 18, 21, 24] {
        let speedups: Vec<f64> = apps
            .iter()
            .map(|&app| {
                let base = r.baseline(app);
                let v = r.parallel_with(
                    app,
                    SchedulerKind::Morse(MorseConfig {
                        eval_cap: cap,
                        ..MorseConfig::default()
                    }),
                    PredictorKind::None,
                    &format!("cap{cap}"),
                    |c| c,
                );
                base.cycles as f64 / v.cycles as f64
            })
            .collect();
        rows.push((cap, mean(&speedups)));
    }
    Fig11 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    #[test]
    fn fig11_covers_the_paper_sweep() {
        let mut r = Runner::new(Scale {
            instructions: 1_000,
            apps: vec!["swim"],
            sweep_apps: vec!["swim"],
            bundles: vec![],
        });
        let f = fig11(&mut r);
        assert_eq!(f.rows.len(), 7);
        assert!(f.at(24).is_some());
        assert!(f.at(5).is_none());
    }
}
