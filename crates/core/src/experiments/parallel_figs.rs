//! Reproductions of the parallel-workload figures: Figures 1 and 3–9.

use crate::config::PredictorKind;
use crate::experiments::harness::{Runner, TextTable};
use crate::metrics::mean;
use critmem_predict::{CbpMetric, ClptMode, TableSize};
use critmem_sched::SchedulerKind;

/// A named series of per-app speedups plus their arithmetic average
/// (the paper's "Average" bar).
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    /// Series label (legend entry in the paper's figure).
    pub label: String,
    /// Speedup per app, in the order of the runner's app list.
    pub per_app: Vec<f64>,
}

impl SpeedupSeries {
    /// Arithmetic mean over apps.
    pub fn average(&self) -> f64 {
        mean(&self.per_app)
    }
}

/// A generic per-app speedup figure.
#[derive(Debug, Clone)]
pub struct SpeedupFigure {
    /// Figure caption.
    pub title: String,
    /// App order.
    pub apps: Vec<&'static str>,
    /// One series per scheduler/predictor configuration.
    pub series: Vec<SpeedupSeries>,
}

impl SpeedupFigure {
    /// Renders the figure as a text table (apps as rows, series as
    /// columns, average as the last row).
    pub fn to_table(&self) -> TextTable {
        let headers: Vec<&str> = self.series.iter().map(|s| s.label.as_str()).collect();
        let mut t = TextTable::new(self.title.clone(), &headers);
        for (i, app) in self.apps.iter().enumerate() {
            t.row(
                *app,
                self.series
                    .iter()
                    .map(|s| TextTable::pct(s.per_app[i]))
                    .collect(),
            );
        }
        t.row(
            "Average",
            self.series
                .iter()
                .map(|s| TextTable::pct(s.average()))
                .collect(),
        );
        t
    }

    /// The average speedup of the series with the given label.
    pub fn average_of(&self, label: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.average())
    }
}

/// The paper's standard CBP table sizes plus the unlimited reference.
pub const TABLE_SIZES: [(&str, TableSize); 4] = [
    ("64-entry", TableSize::Entries(64)),
    ("256-entry", TableSize::Entries(256)),
    ("1024-entry", TableSize::Entries(1024)),
    ("Unlimited", TableSize::Unlimited),
];

/// Figure 1: percentage of dynamic long-latency loads that block the
/// ROB head, and percentage of cycles they block it, under FR-FCFS.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// `(app, blocked-load fraction, blocked-cycle fraction)`.
    pub rows: Vec<(&'static str, f64, f64)>,
}

impl Fig1 {
    /// Average blocked-load fraction (paper: 6.1%).
    pub fn avg_load_fraction(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.1).collect::<Vec<_>>())
    }

    /// Average blocked-cycle fraction (paper: 48.6%).
    pub fn avg_cycle_fraction(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.2).collect::<Vec<_>>())
    }

    /// Renders the figure.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 1: long-latency loads blocking the ROB head (FR-FCFS)",
            &["% dynamic loads", "% execution cycles"],
        );
        for (app, lf, cf) in &self.rows {
            t.row(*app, vec![TextTable::frac(*lf), TextTable::frac(*cf)]);
        }
        t.row(
            "Average",
            vec![
                TextTable::frac(self.avg_load_fraction()),
                TextTable::frac(self.avg_cycle_fraction()),
            ],
        );
        t
    }
}

/// Runs Figure 1.
pub fn fig1(r: &mut Runner) -> Fig1 {
    let apps = r.scale.apps.clone();
    let rows = apps
        .iter()
        .map(|&app| {
            let s = r.baseline(app);
            (app, s.blocked_load_fraction(), s.blocked_cycle_fraction())
        })
        .collect();
    Fig1 { rows }
}

/// Runs one speedup series: per-app speedup of `(sched, pred)` over
/// the FR-FCFS baseline.
fn series(r: &mut Runner, label: &str, sched: SchedulerKind, pred: PredictorKind) -> SpeedupSeries {
    let apps = r.scale.apps.clone();
    let per_app = apps
        .iter()
        .map(|&app| {
            let base = r.baseline(app);
            let v = r.parallel(app, sched, pred);
            base.cycles as f64 / v.cycles as f64
        })
        .collect();
    SpeedupSeries {
        label: label.into(),
        per_app,
    }
}

/// Figure 3: Binary criticality — CLPT-Binary and the Binary CBP at
/// four table sizes, under both Crit-CASRAS and CASRAS-Crit.
pub fn fig3(r: &mut Runner) -> (SpeedupFigure, SpeedupFigure) {
    let mut figs = Vec::new();
    for sched in [SchedulerKind::CritCasRas, SchedulerKind::CasRasCrit] {
        let mut s = Vec::new();
        s.push(series(
            r,
            "CLPT-Binary",
            sched,
            PredictorKind::Clpt(ClptMode::Binary { threshold: 3 }),
        ));
        for (label, size) in TABLE_SIZES {
            s.push(series(
                r,
                &format!("Binary CBP {label}"),
                sched,
                PredictorKind::Cbp {
                    metric: CbpMetric::Binary,
                    size,
                    reset_interval: None,
                },
            ));
        }
        figs.push(SpeedupFigure {
            title: format!(
                "Figure 3: Binary criticality under {} (vs FR-FCFS)",
                sched.name()
            ),
            apps: r.scale.apps.clone(),
            series: s,
        });
    }
    let casras_crit = figs.pop().expect("two figures");
    let crit_casras = figs.pop().expect("two figures");
    (crit_casras, casras_crit)
}

/// Figure 4: ranked criticality metrics under CASRAS-Crit (64-entry
/// tables).
pub fn fig4(r: &mut Runner) -> SpeedupFigure {
    let sched = SchedulerKind::CasRasCrit;
    let mut s = vec![
        series(r, "Binary", sched, PredictorKind::cbp64(CbpMetric::Binary)),
        series(
            r,
            "CLPT-Consumers",
            sched,
            PredictorKind::Clpt(ClptMode::Consumers { threshold: 3 }),
        ),
    ];
    for metric in [
        CbpMetric::BlockCount,
        CbpMetric::LastStallTime,
        CbpMetric::MaxStallTime,
        CbpMetric::TotalStallTime,
    ] {
        s.push(series(
            r,
            metric.name(),
            sched,
            PredictorKind::cbp64(metric),
        ));
    }
    SpeedupFigure {
        title: "Figure 4: ranked criticality, CASRAS-Crit (vs FR-FCFS)".into(),
        apps: r.scale.apps.clone(),
        series: s,
    }
}

/// Figure 5: MaxStallTime CBP table-size sweep.
pub fn fig5(r: &mut Runner) -> SpeedupFigure {
    let mut s = Vec::new();
    for (label, size) in TABLE_SIZES {
        s.push(series(
            r,
            &format!("{label} Table"),
            SchedulerKind::CasRasCrit,
            PredictorKind::Cbp {
                metric: CbpMetric::MaxStallTime,
                size,
                reset_interval: None,
            },
        ));
    }
    SpeedupFigure {
        title: "Figure 5: MaxStallTime table-size sweep (vs FR-FCFS)".into(),
        apps: r.scale.apps.clone(),
        series: s,
    }
}

/// Figure 6: average L2-miss latency for critical vs non-critical
/// loads, under FR-FCFS / Binary / MaxStallTime.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(app, [crit, non-crit] x [FR-FCFS, Binary, MaxStallTime])` in
    /// CPU cycles.
    pub rows: Vec<(&'static str, [f64; 6])>,
}

impl Fig6 {
    /// Renders the figure.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 6: average L2 miss latency, critical vs non-critical (CPU cycles)",
            &[
                "FR-FCFS crit",
                "FR-FCFS non",
                "Binary crit",
                "Binary non",
                "MaxStall crit",
                "MaxStall non",
            ],
        );
        for (app, vals) in &self.rows {
            t.row(*app, vals.iter().map(|v| format!("{v:.0}")).collect());
        }
        let avg: Vec<f64> = (0..6)
            .map(|i| mean(&self.rows.iter().map(|r| r.1[i]).collect::<Vec<_>>()))
            .collect();
        t.row("Average", avg.iter().map(|v| format!("{v:.0}")).collect());
        t
    }

    /// Average latencies `[crit, non]` for the MaxStallTime scheduler.
    pub fn maxstall_avgs(&self) -> (f64, f64) {
        let crit = mean(&self.rows.iter().map(|r| r.1[4]).collect::<Vec<_>>());
        let non = mean(&self.rows.iter().map(|r| r.1[5]).collect::<Vec<_>>());
        (crit, non)
    }

    /// Average latencies `[crit, non]` for the FR-FCFS baseline.
    pub fn frfcfs_avgs(&self) -> (f64, f64) {
        let crit = mean(&self.rows.iter().map(|r| r.1[0]).collect::<Vec<_>>());
        let non = mean(&self.rows.iter().map(|r| r.1[1]).collect::<Vec<_>>());
        (crit, non)
    }
}

/// Runs Figure 6. The FR-FCFS column attaches a MaxStallTime predictor
/// purely for classification (FR-FCFS ignores the annotation), exactly
/// so "critical" means the same population in all three columns.
pub fn fig6(r: &mut Runner) -> Fig6 {
    let apps = r.scale.apps.clone();
    let rows = apps
        .iter()
        .map(|&app| {
            let configs = [
                (
                    SchedulerKind::FrFcfs,
                    PredictorKind::cbp64(CbpMetric::MaxStallTime),
                ),
                (
                    SchedulerKind::CasRasCrit,
                    PredictorKind::cbp64(CbpMetric::Binary),
                ),
                (
                    SchedulerKind::CasRasCrit,
                    PredictorKind::cbp64(CbpMetric::MaxStallTime),
                ),
            ];
            let mut vals = [0.0f64; 6];
            for (i, (sched, pred)) in configs.into_iter().enumerate() {
                let s = r.parallel(app, sched, pred);
                vals[i * 2] = s.miss_latency_critical().unwrap_or(0.0);
                vals[i * 2 + 1] = s.miss_latency_noncritical().unwrap_or(0.0);
            }
            (app, vals)
        })
        .collect();
    Fig6 { rows }
}

/// Figure 7: the L2 stream prefetcher — FR-FCFS-Prefetch plus the five
/// CBP metrics with prefetching, all normalized to FR-FCFS *without*
/// prefetching.
pub fn fig7(r: &mut Runner) -> SpeedupFigure {
    let apps = r.scale.apps.clone();
    let mut series_out = Vec::new();
    let configs: Vec<(String, SchedulerKind, PredictorKind)> = {
        let mut v = vec![(
            "FR-FCFS-Prefetch".to_string(),
            SchedulerKind::FrFcfs,
            PredictorKind::None,
        )];
        for metric in CbpMetric::ALL {
            v.push((
                metric.name().to_string(),
                SchedulerKind::CasRasCrit,
                PredictorKind::cbp64(metric),
            ));
        }
        v
    };
    for (label, sched, pred) in configs {
        let per_app = apps
            .iter()
            .map(|&app| {
                let base = r.baseline(app);
                let v = r.parallel_with(app, sched, pred, "prefetch", |c| c.with_prefetcher());
                base.cycles as f64 / v.cycles as f64
            })
            .collect();
        series_out.push(SpeedupSeries { label, per_app });
    }
    SpeedupFigure {
        title: "Figure 7: with L2 stream prefetcher (vs FR-FCFS, no prefetch)".into(),
        apps,
        series: series_out,
    }
}

/// Figure 8: rank sweep for DDR3-1600 and DDR3-2133. Values are
/// average speedups relative to the same device's single-rank FR-FCFS.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// `(device, ranks, [FR-FCFS, Binary, MaxStallTime])`.
    pub rows: Vec<(&'static str, u8, [f64; 3])>,
}

impl Fig8 {
    /// Renders the figure.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 8: ranks-per-channel sweep (avg speedup vs 1-rank FR-FCFS)",
            &["FR-FCFS", "Binary", "MaxStallTime"],
        );
        for (dev, ranks, vals) in &self.rows {
            t.row(
                format!("{dev} x{ranks}"),
                vals.iter().map(|v| TextTable::ratio(*v)).collect(),
            );
        }
        t
    }

    /// Criticality gain (MaxStallTime over FR-FCFS) at the given rank
    /// count for a device.
    pub fn crit_gain(&self, dev: &str, ranks: u8) -> Option<f64> {
        self.rows
            .iter()
            .find(|(d, r, _)| *d == dev && *r == ranks)
            .map(|(_, _, v)| v[2] / v[0])
    }
}

/// Runs Figure 8 over the runner's sweep apps.
pub fn fig8(r: &mut Runner) -> Fig8 {
    let apps = r.scale.sweep_apps.clone();
    let schedulers = [
        ("FR-FCFS", SchedulerKind::FrFcfs, PredictorKind::None),
        (
            "Binary",
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::Binary),
        ),
        (
            "MaxStallTime",
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::MaxStallTime),
        ),
    ];
    let mut rows = Vec::new();
    for dev in ["DDR3-1600", "DDR3-2133"] {
        // Per-app single-rank FR-FCFS reference cycles.
        let mut reference = Vec::new();
        for &app in &apps {
            let s = r.parallel_with(
                app,
                SchedulerKind::FrFcfs,
                PredictorKind::None,
                &format!("{dev}-r1"),
                |mut c| {
                    c.dram.preset = critmem_dram::timing::preset_by_name(dev).expect("preset");
                    c.dram.org.ranks_per_channel = 1;
                    c
                },
            );
            reference.push(s.cycles as f64);
        }
        for ranks in [1u8, 2, 4] {
            let mut vals = [0.0f64; 3];
            for (si, (_, sched, pred)) in schedulers.iter().enumerate() {
                let speedups: Vec<f64> = apps
                    .iter()
                    .enumerate()
                    .map(|(ai, &app)| {
                        let s = r.parallel_with(
                            app,
                            *sched,
                            *pred,
                            &format!("{dev}-r{ranks}"),
                            |mut c| {
                                c.dram.preset =
                                    critmem_dram::timing::preset_by_name(dev).expect("preset");
                                c.dram.org.ranks_per_channel = ranks;
                                c
                            },
                        );
                        reference[ai] / s.cycles as f64
                    })
                    .collect();
                vals[si] = mean(&speedups);
            }
            rows.push((dev, ranks, vals));
        }
    }
    Fig8 { rows }
}

/// Figure 9: load-queue size sweep. Values are average speedups
/// relative to the 32-entry FR-FCFS baseline.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// `(lq entries, [FR-FCFS, Binary, MaxStallTime])`.
    pub rows: Vec<(usize, [f64; 3])>,
    /// Fraction of time the 32-entry LQ was full under FR-FCFS (§5.6
    /// reports 19.3%).
    pub lq32_full_fraction: f64,
}

impl Fig9 {
    /// Renders the figure.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Figure 9: load-queue sweep (avg vs 32-entry FR-FCFS; LQ32 full {} of time)",
                TextTable::frac(self.lq32_full_fraction)
            ),
            &["FR-FCFS", "Binary", "MaxStallTime"],
        );
        for (lq, vals) in &self.rows {
            t.row(
                format!("LQ {lq}"),
                vals.iter().map(|v| TextTable::ratio(*v)).collect(),
            );
        }
        t
    }

    /// Criticality gain (MaxStallTime over FR-FCFS) at an LQ size.
    pub fn crit_gain(&self, lq: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, _)| *l == lq)
            .map(|(_, v)| v[2] / v[0])
    }
}

/// Runs Figure 9 over the runner's sweep apps.
pub fn fig9(r: &mut Runner) -> Fig9 {
    let apps = r.scale.sweep_apps.clone();
    let schedulers = [
        (SchedulerKind::FrFcfs, PredictorKind::None),
        (
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::Binary),
        ),
        (
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::MaxStallTime),
        ),
    ];
    // 32-entry FR-FCFS reference.
    let mut reference = Vec::new();
    let mut full_fracs = Vec::new();
    for &app in &apps {
        let s = r.baseline(app);
        reference.push(s.cycles as f64);
        full_fracs.push(s.lq_full_fraction());
    }
    let mut rows = Vec::new();
    for lq in [32usize, 48, 64] {
        let mut vals = [0.0f64; 3];
        for (si, (sched, pred)) in schedulers.iter().enumerate() {
            let speedups: Vec<f64> = apps
                .iter()
                .enumerate()
                .map(|(ai, &app)| {
                    let s = r.parallel_with(app, *sched, *pred, &format!("lq{lq}"), |mut c| {
                        c.core.lq_entries = lq;
                        c
                    });
                    reference[ai] / s.cycles as f64
                })
                .collect();
            vals[si] = mean(&speedups);
        }
        rows.push((lq, vals));
    }
    Fig9 {
        rows,
        lq32_full_fraction: mean(&full_fracs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    fn tiny_runner() -> Runner {
        Runner::new(Scale {
            instructions: 1_500,
            apps: vec!["swim"],
            sweep_apps: vec!["swim"],
            bundles: vec![],
        })
    }

    #[test]
    fn fig1_reports_blocking() {
        let mut r = tiny_runner();
        let f = fig1(&mut r);
        assert_eq!(f.rows.len(), 1);
        assert!(f.avg_cycle_fraction() > 0.0);
        assert!(f.to_table().to_string().contains("Figure 1"));
    }

    #[test]
    fn fig4_has_six_series() {
        let mut r = tiny_runner();
        let f = fig4(&mut r);
        assert_eq!(f.series.len(), 6);
        assert!(f.average_of("MaxStallTime").is_some());
        assert!(f.average_of("nonsense").is_none());
        for s in &f.series {
            assert!(s.average() > 0.5, "{}: implausible speedup", s.label);
        }
    }

    #[test]
    fn fig9_normalizes_to_lq32_frfcfs() {
        let mut r = tiny_runner();
        let f = fig9(&mut r);
        assert_eq!(f.rows.len(), 3);
        let (lq, vals) = f.rows[0];
        assert_eq!(lq, 32);
        assert!(
            (vals[0] - 1.0).abs() < 1e-9,
            "LQ32 FR-FCFS must be the unit reference"
        );
    }
}
