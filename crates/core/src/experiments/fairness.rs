//! The performance–fairness frontier study: sweep the scheduler zoo
//! over the multiprogrammed bundles and emit, per scheduler, the
//! (weighted speedup, maximum slowdown, harmonic speedup) triple that
//! locates it on the frontier chart.
//!
//! The zoo spans both ends of the spectrum — the paper's
//! criticality-first CASRAS-Crit, the fairness-oriented PAR-BS / TCM /
//! ATLAS / BLISS designs, and the [`critmem_sched::MetaSwitch`]
//! meta-scheduler that flips between a criticality mode and BLISS at
//! runtime. Alone-IPC denominators reuse the Figure 12 definition (one
//! core on the PAR-BS baseline platform), so `repro fairness` and
//! `repro fig12` agree on normalization.
//!
//! Results export through [`SeriesExport`] (DESIGN.md §6e): one run
//! per scheduler, one sample row per bundle (the `cycle` column holds
//! the bundle index), three gauge columns. The export is assembled
//! from label-sorted runs, so it is byte-identical for any `--jobs` or
//! `--shards` value.

use crate::config::{AgentMix, PredictorKind, SystemConfig};
use crate::experiments::harness::{Runner, TextTable};
use crate::metrics::{harmonic_speedup, max_slowdown, mean, weighted_speedup};
use critmem_common::obs::{MetricVisitor, Sampler, Schema, SeriesExport};
use critmem_predict::CbpMetric;
use critmem_sched::{SchedulerKind, TcmTiebreak};
use critmem_workloads::bundle;

/// The frontier zoo: every multiprogrammed scheduler the repo can
/// instantiate, labeled by its display name. CASRAS-Crit and
/// MetaSwitch carry the paper's 64-entry MaxStallTime CBP (their
/// criticality ordering is inert without request annotations); the
/// fairness-only designs run predictor-free, as their papers do.
pub fn frontier_schedulers() -> Vec<(&'static str, SchedulerKind, PredictorKind)> {
    let cbp = PredictorKind::Cbp {
        metric: CbpMetric::MaxStallTime,
        size: critmem_predict::TableSize::Entries(64),
        reset_interval: None,
    };
    vec![
        ("FR-FCFS", SchedulerKind::FrFcfs, PredictorKind::None),
        ("CASRAS-Crit", SchedulerKind::CasRasCrit, cbp),
        (
            "PAR-BS",
            SchedulerKind::ParBs { marking_cap: 5 },
            PredictorKind::None,
        ),
        (
            "TCM",
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            },
            PredictorKind::None,
        ),
        ("ATLAS", SchedulerKind::Atlas, PredictorKind::None),
        (
            "BLISS",
            SchedulerKind::Bliss(critmem_sched::BlissConfig::DEFAULT),
            PredictorKind::None,
        ),
        ("MetaSwitch", SchedulerKind::DEFAULT_META, cbp),
    ]
}

/// One scheduler's position on the frontier, per bundle.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Scheduler display name.
    pub label: &'static str,
    /// Weighted speedup per bundle (`Σ IPC_shared / IPC_alone`).
    pub weighted_speedup: Vec<f64>,
    /// Maximum slowdown per bundle (`max_i IPC_alone / IPC_shared`).
    pub max_slowdown: Vec<f64>,
    /// Harmonic speedup per bundle (`N / Σ slowdown_i`).
    pub harmonic_speedup: Vec<f64>,
}

/// The frontier study result: one [`FrontierPoint`] per scheduler.
#[derive(Debug, Clone)]
pub struct FairnessFrontier {
    /// Bundle names, in run order (the export's `cycle` column indexes
    /// into this list).
    pub bundles: Vec<&'static str>,
    /// One point per scheduler, in [`frontier_schedulers`] order.
    pub points: Vec<FrontierPoint>,
}

impl FairnessFrontier {
    /// Renders the frontier as a text table: one row per scheduler,
    /// bundle-averaged weighted speedup / max slowdown / harmonic
    /// speedup. Lower max slowdown is fairer; the frontier is the set
    /// of schedulers no other scheduler beats on both columns at once.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Performance-fairness frontier (bundle averages)",
            &["weighted speedup", "max slowdown", "harmonic speedup"],
        );
        for p in &self.points {
            t.row(
                p.label,
                vec![
                    TextTable::ratio(mean(&p.weighted_speedup)),
                    TextTable::ratio(mean(&p.max_slowdown)),
                    TextTable::ratio(mean(&p.harmonic_speedup)),
                ],
            );
        }
        t
    }

    /// The point with a given scheduler label.
    pub fn point(&self, label: &str) -> Option<&FrontierPoint> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Assembles the JSONL/CSV-exportable series: one run per
    /// scheduler, one sample per bundle (cycle = bundle index), three
    /// gauges per sample. Runs are label-sorted by construction, so
    /// the serialized bytes are worker-count independent.
    pub fn to_export(&self) -> SeriesExport {
        let walk_one = |v: &mut dyn MetricVisitor, ws: f64, ms: f64, hs: f64| {
            v.component("fairness");
            v.gauge("weighted_speedup", "ratio", ws);
            v.gauge("max_slowdown", "ratio", ms);
            v.gauge("harmonic_speedup", "ratio", hs);
        };
        let mut export = SeriesExport::new(1);
        for p in &self.points {
            let schema = Schema::build(|v| walk_one(v, 0.0, 0.0, 0.0));
            let mut sampler = Sampler::new(schema, 1);
            for (i, _) in self.bundles.iter().enumerate() {
                sampler.sample(i as u64, |v| {
                    walk_one(
                        v,
                        p.weighted_speedup[i],
                        p.max_slowdown[i],
                        p.harmonic_speedup[i],
                    )
                });
            }
            export.push(p.label, sampler.into_series());
        }
        export
    }
}

/// The Figure 12 multiprogrammed platform (4 cores, 2 channels) with
/// this runner's engine knobs applied.
fn multiprog_cfg(r: &Runner) -> SystemConfig {
    let mut cfg = SystemConfig::multiprogrammed_baseline(r.scale.instructions);
    cfg.max_cycles = r
        .scale
        .instructions
        .saturating_mul(40_000)
        .max(1_000_000_000);
    cfg.shards = r.shards;
    cfg.skip_ahead = r.skip_ahead;
    cfg
}

/// Alone-IPC denominator, shared (memoized) with Figure 12 and the
/// heterogeneous-mix study: the app on one core of the PAR-BS baseline
/// platform.
pub(crate) fn alone_ipc(r: &mut Runner, app: &'static str) -> f64 {
    let mut cfg = multiprog_cfg(r);
    cfg.cores = 1;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
    cfg.hierarchy.l2_mshrs = 32;
    let stats = r.run_keyed(format!("alone|{app}"), cfg, &AgentMix::Alone(app));
    stats.ipc(0)
}

/// Runs the frontier study over the runner's bundles. Drives
/// [`Runner::run_parallel`] itself (plan + execute), so all
/// `bundles × schedulers` cells fan out across `--jobs` workers.
pub fn fairness_frontier(runner: &mut Runner) -> FairnessFrontier {
    runner.run_parallel(|r| {
        let bundles = r.scale.bundles.clone();
        let zoo = frontier_schedulers();
        let mut points: Vec<FrontierPoint> = zoo
            .iter()
            .map(|(l, _, _)| FrontierPoint {
                label: l,
                weighted_speedup: Vec::new(),
                max_slowdown: Vec::new(),
                harmonic_speedup: Vec::new(),
            })
            .collect();
        for &bname in &bundles {
            let b = bundle(bname).expect("bundle exists");
            let alone: Vec<f64> = b.apps.iter().map(|&a| alone_ipc(r, a)).collect();
            for (si, (label, sched, pred)) in zoo.iter().enumerate() {
                let cfg = multiprog_cfg(r)
                    .with_scheduler(*sched)
                    .with_predictor(*pred);
                let stats = r.run_keyed(
                    format!("bundle|{bname}|{label}"),
                    cfg,
                    &AgentMix::Bundle(bname),
                );
                points[si]
                    .weighted_speedup
                    .push(weighted_speedup(&stats, &alone));
                points[si].max_slowdown.push(max_slowdown(&stats, &alone));
                points[si]
                    .harmonic_speedup
                    .push(harmonic_speedup(&stats, &alone));
            }
        }
        FairnessFrontier { bundles, points }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    #[test]
    fn frontier_covers_the_zoo_on_one_bundle() {
        let mut r = Runner::new(Scale {
            instructions: 1_200,
            apps: vec![],
            sweep_apps: vec![],
            bundles: vec!["AELV"],
        });
        let f = fairness_frontier(&mut r);
        assert_eq!(f.bundles, vec!["AELV"]);
        assert!(f.points.len() >= 6, "zoo must span >= 6 schedulers");
        assert!(f.point("BLISS").is_some());
        assert!(f.point("MetaSwitch").is_some());
        for p in &f.points {
            assert_eq!(p.weighted_speedup.len(), 1, "{}", p.label);
            let ws = p.weighted_speedup[0];
            let ms = p.max_slowdown[0];
            let hs = p.harmonic_speedup[0];
            assert!(ws > 0.0 && ws < 8.0, "{}: ws {ws}", p.label);
            assert!(ms > 0.0 && ms < 50.0, "{}: max slowdown {ms}", p.label);
            assert!(hs > 0.0 && hs < 4.0, "{}: hs {hs}", p.label);
        }
        assert!(f.to_table().to_string().contains("frontier"));
    }

    #[test]
    fn export_is_one_run_per_scheduler_and_round_trips() {
        let mut r = Runner::new(Scale {
            instructions: 1_200,
            apps: vec![],
            sweep_apps: vec![],
            bundles: vec!["AELV"],
        });
        let f = fairness_frontier(&mut r);
        let export = f.to_export();
        assert_eq!(export.runs.len(), f.points.len());
        for run in &export.runs {
            assert_eq!(run.series.len(), 1, "one sample per bundle");
            assert!(run.series.value(0, "fairness.weighted_speedup").is_some());
            assert!(run.series.value(0, "fairness.max_slowdown").is_some());
            assert!(run.series.value(0, "fairness.harmonic_speedup").is_some());
        }
        let parsed = SeriesExport::parse_jsonl(&export.to_jsonl()).expect("lossless");
        assert_eq!(parsed, export);
        assert!(export.to_csv().starts_with("run,cycle,fairness."));
    }
}
