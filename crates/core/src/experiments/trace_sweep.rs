//! Trace-driven scheduler sweep: capture an app's request stream once,
//! replay it under every scheduler in the sweep, and validate the
//! result against the execution-driven sweep — reporting both the
//! per-scheduler DRAM metrics and the measured wall-clock speedup of
//! the trace path.
//!
//! This is the workflow the trace subsystem exists for: the paper's
//! design space (arrangements × scheduler baselines, §5.8) only varies
//! the memory controller, so re-simulating cores, caches, and
//! predictors for every point is pure overhead. One execution-driven
//! capture (with the MaxStallTime CBP annotating each miss) amortizes
//! across the whole sweep.

use crate::config::PredictorKind;
use crate::experiments::harness::{Runner, TextTable};
use crate::system::RunStats;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;
use critmem_trace::ReplayStats;
use std::sync::Arc;
use std::time::Instant;

/// The default sweep: the paper's two criticality arrangements against
/// FR-FCFS and two multiprogram-era baselines.
pub fn default_schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::FrFcfs,
        SchedulerKind::CasRasCrit,
        SchedulerKind::CritCasRas,
        SchedulerKind::ParBs { marking_cap: 5 },
        SchedulerKind::Atlas,
    ]
}

/// One scheduler's replayed and executed results.
#[derive(Debug, Clone)]
pub struct TraceSweepRow {
    /// The scheduler configuration.
    pub scheduler: SchedulerKind,
    /// Trace-replay statistics.
    pub replay: Arc<ReplayStats>,
    /// Execution-driven statistics for the same scheduler (with the
    /// same MaxStallTime CBP annotating requests).
    pub execution: Arc<RunStats>,
}

impl TraceSweepRow {
    /// Row-hit fraction of the replayed run.
    pub fn replay_row_hit_rate(&self) -> f64 {
        let hits: u64 = self.replay.channels.iter().map(|c| c.row_hits).sum();
        let total: u64 = self
            .replay
            .channels
            .iter()
            .map(|c| c.row_hits + c.row_misses + c.row_conflicts)
            .sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Result of [`trace_sweep`].
#[derive(Debug, Clone)]
pub struct TraceSweep {
    /// The app swept.
    pub app: &'static str,
    /// Per-scheduler results, in sweep order (first row is FR-FCFS).
    pub rows: Vec<TraceSweepRow>,
    /// Wall-clock seconds for the one execution-driven capture.
    pub capture_seconds: f64,
    /// Wall-clock seconds for all replays together.
    pub replay_seconds: f64,
    /// Wall-clock seconds for the execution-driven sweep of the same
    /// scheduler set.
    pub execution_seconds: f64,
}

impl TraceSweep {
    /// Wall-clock speedup of the replay sweep over the execution-driven
    /// sweep (the quantity the trace subsystem is judged on).
    pub fn sweep_speedup(&self) -> f64 {
        self.execution_seconds / self.replay_seconds.max(1e-9)
    }

    /// Speedup including the (amortizable) capture cost.
    pub fn sweep_speedup_with_capture(&self) -> f64 {
        self.execution_seconds / (self.replay_seconds + self.capture_seconds).max(1e-9)
    }

    /// Execution-driven speedup of row `i` relative to the FR-FCFS row.
    pub fn execution_speedup(&self, i: usize) -> f64 {
        self.rows[0].execution.cycles as f64 / self.rows[i].execution.cycles as f64
    }

    /// Replay-side critical-read latency improvement of row `i`
    /// relative to the FR-FCFS row (>1 means the scheduler served
    /// critical reads faster than FR-FCFS did on the same arrivals).
    pub fn replay_crit_latency_gain(&self, i: usize) -> f64 {
        let base = self.rows[0].replay.mean_critical_read_latency();
        let this = self.rows[i].replay.mean_critical_read_latency();
        if this == 0.0 {
            1.0
        } else {
            base / this
        }
    }

    /// Renders the sweep table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Trace-driven scheduler sweep — {}", self.app),
            &[
                "read lat",
                "crit lat",
                "crit gain",
                "row hits",
                "exec speedup",
            ],
        );
        for (i, row) in self.rows.iter().enumerate() {
            t.row(
                row.scheduler.name(),
                vec![
                    format!("{:.0}", row.replay.mean_read_latency()),
                    format!("{:.0}", row.replay.mean_critical_read_latency()),
                    TextTable::ratio(self.replay_crit_latency_gain(i)),
                    TextTable::frac(row.replay_row_hit_rate()),
                    TextTable::ratio(self.execution_speedup(i)),
                ],
            );
        }
        t
    }

    /// One-line wall-clock summary (the measured speedup claim).
    pub fn timing_summary(&self) -> String {
        format!(
            "sweep wall-clock: capture {:.2}s + {} replays {:.2}s vs execution {:.2}s \
             => {:.1}x faster (replays only), {:.1}x incl. capture",
            self.capture_seconds,
            self.rows.len(),
            self.replay_seconds,
            self.execution_seconds,
            self.sweep_speedup(),
            self.sweep_speedup_with_capture(),
        )
    }
}

/// Runs the trace-driven sweep for `app` over `schedulers` (first entry
/// should be FR-FCFS — it is the normalization baseline), timing the
/// replay path against the execution-driven path.
///
/// # Panics
///
/// Panics if `schedulers` is empty.
pub fn trace_sweep_with(
    runner: &mut Runner,
    app: &'static str,
    schedulers: &[SchedulerKind],
) -> TraceSweep {
    assert!(!schedulers.is_empty(), "sweep needs at least one scheduler");
    // Each phase goes through `run_parallel` separately so the
    // wall-clock brackets enclose the actual (possibly parallel)
    // simulation work rather than warm-cache recalls.
    let t0 = Instant::now();
    let _trace = runner.run_parallel(|r| r.capture(app));
    let capture_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let replays: Vec<Arc<ReplayStats>> =
        runner.run_parallel(|r| schedulers.iter().map(|&s| r.replay(app, s)).collect());
    let replay_seconds = t1.elapsed().as_secs_f64();

    let predictor = PredictorKind::cbp64(CbpMetric::MaxStallTime);
    let t2 = Instant::now();
    let executions: Vec<Arc<RunStats>> = runner.run_parallel(|r| {
        schedulers
            .iter()
            .map(|&s| r.parallel(app, s, predictor))
            .collect()
    });
    let execution_seconds = t2.elapsed().as_secs_f64();

    let rows = schedulers
        .iter()
        .zip(replays)
        .zip(executions)
        .map(|((&scheduler, replay), execution)| TraceSweepRow {
            scheduler,
            replay,
            execution,
        })
        .collect();
    TraceSweep {
        app,
        rows,
        capture_seconds,
        replay_seconds,
        execution_seconds,
    }
}

/// [`trace_sweep_with`] over the [`default_schedulers`] set.
pub fn trace_sweep(runner: &mut Runner, app: &'static str) -> TraceSweep {
    trace_sweep_with(runner, app, &default_schedulers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    #[test]
    fn sweep_replays_every_scheduler_over_one_capture() {
        let mut r = Runner::new(Scale {
            instructions: 600,
            ..Scale::quick()
        });
        let sweep = trace_sweep(&mut r, "swim");
        assert_eq!(sweep.rows.len(), 5);
        // One capture + five execution runs; five distinct replays.
        assert_eq!(r.runs_executed(), 6);
        assert_eq!(r.replays_executed(), 5);
        // Every replay serviced the same captured request set.
        let n = sweep.rows[0].replay.completed;
        assert!(n > 0);
        for row in &sweep.rows {
            assert_eq!(row.replay.completed, n);
        }
        let rendered = sweep.to_table().to_string();
        assert!(rendered.contains("CASRAS-Crit"), "{rendered}");
        assert!(sweep.timing_summary().contains("x faster"));
    }
}
