//! Figure 12: multiprogrammed weighted speedups, normalized to PAR-BS
//! (§5.8.2) — plus the maximum-slowdown fairness comparison against
//! TCM.

use crate::config::{AgentMix, PredictorKind, SystemConfig};
use crate::experiments::harness::{Runner, TextTable};
use crate::metrics::{max_slowdown, mean, weighted_speedup};
use critmem_predict::CbpMetric;
use critmem_sched::{SchedulerKind, TcmTiebreak};
use critmem_workloads::bundle;
use std::sync::Arc;

/// The schedulers Figure 12 compares (PAR-BS is the normalization
/// baseline and appears implicitly as 1.0).
const SCHEDULERS: [(&str, SchedulerKind, PredictorKind); 4] = [
    ("FR-FCFS", SchedulerKind::FrFcfs, PredictorKind::None),
    (
        "TCM",
        SchedulerKind::Tcm {
            tiebreak: TcmTiebreak::FrFcfs,
        },
        PredictorKind::None,
    ),
    (
        "MaxStallTime",
        SchedulerKind::CasRasCrit,
        PredictorKind::Cbp {
            metric: CbpMetric::MaxStallTime,
            size: critmem_predict::TableSize::Entries(64),
            reset_interval: None,
        },
    ),
    (
        "TCM+MaxStallTime",
        SchedulerKind::Tcm {
            tiebreak: TcmTiebreak::CritFrFcfs,
        },
        PredictorKind::Cbp {
            metric: CbpMetric::MaxStallTime,
            size: critmem_predict::TableSize::Entries(64),
            reset_interval: None,
        },
    ),
];

/// Figure 12 results.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Bundle names.
    pub bundles: Vec<&'static str>,
    /// Per scheduler: `(label, per-bundle normalized weighted speedup)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// Maximum-slowdown averages `(TCM, MaxStallTime)` — the paper
    /// reports MaxStallTime improving max slowdown by 11.6% over TCM.
    pub max_slowdown_tcm: f64,
    /// Average maximum slowdown under the MaxStallTime scheduler.
    pub max_slowdown_crit: f64,
}

impl Fig12 {
    /// Renders the figure.
    pub fn to_table(&self) -> TextTable {
        let headers: Vec<&str> = self.series.iter().map(|(l, _)| l.as_str()).collect();
        let mut t = TextTable::new(
            "Figure 12: multiprogrammed weighted speedup (vs PAR-BS, cap 5)",
            &headers,
        );
        for (i, b) in self.bundles.iter().enumerate() {
            t.row(
                *b,
                self.series
                    .iter()
                    .map(|(_, v)| TextTable::pct(v[i]))
                    .collect(),
            );
        }
        t.row(
            "Average",
            self.series
                .iter()
                .map(|(_, v)| TextTable::pct(mean(v)))
                .collect(),
        );
        t
    }

    /// Average normalized weighted speedup of a scheduler.
    pub fn average_of(&self, label: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| mean(v))
    }
}

fn multiprog_cfg(r: &Runner) -> SystemConfig {
    let mut cfg = SystemConfig::multiprogrammed_baseline(r.scale.instructions);
    cfg.max_cycles = r
        .scale
        .instructions
        .saturating_mul(40_000)
        .max(1_000_000_000);
    cfg.shards = r.shards;
    cfg.skip_ahead = r.skip_ahead;
    cfg
}

/// IPC of `app` running alone on the PAR-BS baseline configuration
/// (single core, two channels, halved MSHRs) — the paper's
/// normalization denominator.
fn alone_ipc(r: &mut Runner, app: &'static str) -> f64 {
    let mut cfg = multiprog_cfg(r);
    cfg.cores = 1;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
    cfg.hierarchy.l2_mshrs = 32;
    let stats = r.run_keyed(format!("alone|{app}"), cfg, &AgentMix::Alone(app));
    stats.ipc(0)
}

fn bundle_run(
    r: &mut Runner,
    name: &'static str,
    label: &str,
    sched: SchedulerKind,
    pred: PredictorKind,
) -> Arc<crate::system::RunStats> {
    let cfg = multiprog_cfg(r).with_scheduler(sched).with_predictor(pred);
    r.run_keyed(
        format!("bundle|{name}|{label}"),
        cfg,
        &AgentMix::Bundle(name),
    )
}

/// Runs Figure 12 over the runner's bundles.
pub fn fig12(r: &mut Runner) -> Fig12 {
    let bundles = r.scale.bundles.clone();
    // Alone IPCs per app (PAR-BS config).
    let mut series: Vec<(String, Vec<f64>)> = SCHEDULERS
        .iter()
        .map(|(l, _, _)| (l.to_string(), Vec::new()))
        .collect();
    let mut ms_tcm = Vec::new();
    let mut ms_crit = Vec::new();
    for &bname in &bundles {
        let b = bundle(bname).expect("bundle exists");
        let alone: Vec<f64> = b
            .apps
            .iter()
            .map(|&a| {
                // Leak-free static str: bundle apps are 'static already.
                alone_ipc(r, a)
            })
            .collect();
        // PAR-BS reference.
        let parbs = bundle_run(
            r,
            bname,
            "PAR-BS",
            SchedulerKind::ParBs { marking_cap: 5 },
            PredictorKind::None,
        );
        let ws_parbs = weighted_speedup(&parbs, &alone);
        for (si, (label, sched, pred)) in SCHEDULERS.iter().enumerate() {
            let stats = bundle_run(r, bname, label, *sched, *pred);
            let ws = weighted_speedup(&stats, &alone);
            series[si].1.push(ws / ws_parbs);
            if *label == "TCM" {
                ms_tcm.push(max_slowdown(&stats, &alone));
            }
            if *label == "MaxStallTime" {
                ms_crit.push(max_slowdown(&stats, &alone));
            }
        }
    }
    Fig12 {
        bundles,
        series,
        max_slowdown_tcm: mean(&ms_tcm),
        max_slowdown_crit: mean(&ms_crit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::harness::Scale;

    #[test]
    fn fig12_runs_one_bundle() {
        let mut r = Runner::new(Scale {
            instructions: 1_200,
            apps: vec![],
            sweep_apps: vec![],
            bundles: vec!["AELV"],
        });
        let f = fig12(&mut r);
        assert_eq!(f.bundles, vec!["AELV"]);
        assert_eq!(f.series.len(), 4);
        for (label, vals) in &f.series {
            assert_eq!(vals.len(), 1, "{label}");
            assert!(vals[0] > 0.3 && vals[0] < 3.0, "{label}: {}", vals[0]);
        }
        assert!(f.max_slowdown_tcm > 0.0);
        assert!(f.to_table().to_string().contains("Figure 12"));
    }
}
