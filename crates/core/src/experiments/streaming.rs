//! Long-horizon replay drivers: stream a CMTR file or synthesize
//! traffic from a CMPF profile, at constant memory, with wall-clock
//! throughput measurement.
//!
//! These are the `repro trace stream|synth` workhorses and the bench
//! suite's `streaming` probes. Both build the DRAM system from the
//! source's own [`Fingerprint`](critmem_trace::Fingerprint) (topology
//! from the capture, controller policy from the paper baseline), so a
//! file is all you need — no matching `SystemConfig` required.

use critmem_common::SimError;
use critmem_dram::DramSystem;
use critmem_sched::SchedulerKind;
use critmem_trace::{
    ReplayConfig, ReplayStats, SynthSource, TraceReplayer, TraceStream, TrafficProfile,
};
use std::path::Path;
use std::time::Instant;

/// Outcome of one streamed-file replay.
#[derive(Debug)]
pub struct StreamReplayOutcome {
    /// Replay statistics (identical to what in-memory replay of the
    /// same file yields).
    pub stats: ReplayStats,
    /// Peak bytes of trace data resident in the chunk buffer — at
    /// most [`critmem_trace::CHUNK_BYTES`].
    pub peak_resident_bytes: usize,
    /// Chunks pulled off the file.
    pub chunks_read: u64,
    /// Records injected from the file.
    pub records_read: u64,
    /// Wall-clock seconds the replay took.
    pub seconds: f64,
}

/// Replays a CMTR file through `scheduler` without ever materializing
/// the trace: records stream chunk-at-a-time from disk.
///
/// # Errors
///
/// [`SimError::Trace`] on open/format/corruption failures, and
/// whatever [`TraceReplayer::try_run`] reports (watchdog trips).
pub fn stream_replay(
    path: &Path,
    scheduler: SchedulerKind,
    cfg: ReplayConfig,
) -> Result<StreamReplayOutcome, SimError> {
    let trace_err = |e: critmem_trace::TraceError| SimError::Trace(e.to_string());
    let mut stream = TraceStream::open(path).map_err(trace_err)?;
    let fp = stream.fingerprint().clone();
    let dram_cfg = fp.dram_config().map_err(trace_err)?;
    let cores = fp.cores as usize;
    let dram = DramSystem::new(dram_cfg, |ch| scheduler.build(cores, u64::from(ch.0)));
    let started = Instant::now();
    let stats = TraceReplayer::from_source(&mut stream, dram, cfg)
        .map_err(trace_err)?
        .try_run()?;
    Ok(StreamReplayOutcome {
        stats,
        peak_resident_bytes: stream.peak_resident_bytes(),
        chunks_read: stream.chunks_read(),
        records_read: stream.records_read(),
        seconds: started.elapsed().as_secs_f64(),
    })
}

/// Outcome of one synthesized-traffic replay.
#[derive(Debug)]
pub struct SynthReplayOutcome {
    /// Replay statistics.
    pub stats: ReplayStats,
    /// Requests generated (equals the requested count unless a stop
    /// condition cut the run short).
    pub generated: u64,
    /// Wall-clock seconds the replay took.
    pub seconds: f64,
}

/// Synthesizes `requests` requests from `profile` (seeded with `seed`)
/// and replays them through `scheduler`.
///
/// # Errors
///
/// [`SimError::Trace`] if the profile's topology cannot be
/// reconstructed, and whatever [`TraceReplayer::try_run`] reports.
pub fn synth_replay(
    profile: &TrafficProfile,
    seed: u64,
    requests: u64,
    scheduler: SchedulerKind,
    cfg: ReplayConfig,
) -> Result<SynthReplayOutcome, SimError> {
    let trace_err = |e: critmem_trace::TraceError| SimError::Trace(e.to_string());
    let mut source = SynthSource::new(profile, seed).with_limit(requests);
    let dram_cfg = profile.fingerprint.dram_config().map_err(trace_err)?;
    let cores = profile.fingerprint.cores as usize;
    let dram = DramSystem::new(dram_cfg, |ch| scheduler.build(cores, u64::from(ch.0)));
    let started = Instant::now();
    let stats = TraceReplayer::from_source(&mut source, dram, cfg)
        .map_err(trace_err)?
        .try_run()?;
    Ok(SynthReplayOutcome {
        stats,
        generated: source.generated(),
        seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AgentMix, PredictorKind, SystemConfig};
    use crate::Session;
    use critmem_predict::CbpMetric;
    use critmem_trace::Trace;

    fn captured_trace() -> Trace {
        let cfg = SystemConfig::paper_baseline(1_500)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
        Session::new(cfg, &AgentMix::Parallel("swim"))
            .traced("swim")
            .run()
            .unwrap()
            .observer
            .into_trace()
    }

    #[test]
    fn stream_replay_round_trips_through_a_file() {
        let trace = captured_trace();
        let n = trace.records.len() as u64;
        assert!(n > 0);
        let path =
            std::env::temp_dir().join(format!("critmem-streaming-exp-{}.cmtr", std::process::id()));
        trace.save(&path).unwrap();
        let out = stream_replay(&path, SchedulerKind::FrFcfs, ReplayConfig::default());
        std::fs::remove_file(&path).ok();
        let out = out.unwrap();
        assert_eq!(out.records_read, n);
        assert_eq!(out.stats.injected, n);
        assert!(out.peak_resident_bytes <= critmem_trace::CHUNK_BYTES);
    }

    #[test]
    fn synth_replay_fits_and_runs() {
        let profile = TrafficProfile::fit(&captured_trace()).unwrap();
        let out = synth_replay(
            &profile,
            99,
            5_000,
            SchedulerKind::CasRasCrit,
            ReplayConfig::default()
                .with_max_outstanding(64)
                .with_sampling(100_000)
                .with_sample_window(16),
        )
        .unwrap();
        assert_eq!(out.generated, 5_000);
        assert_eq!(out.stats.injected, 5_000);
        let series = out.stats.series.expect("sampling was on");
        assert!(series.len() <= 16, "window must bound the series");
    }
}
