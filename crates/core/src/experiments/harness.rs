//! Shared experiment-harness machinery: run scaling, memoized
//! simulation runs, and plain-text table rendering.

use crate::checkpoint::{fingerprint_of, Checkpoint};
use crate::config::{AgentMix, PredictorKind, SystemConfig};
use crate::faults::FaultHooks;
use crate::journal::{JournalEntry, SweepJournal};
use crate::pool::scoped_map_isolated;
use crate::session::Session;
use crate::system::RunStats;
use critmem_common::SimError;
use critmem_dram::DramSystem;
use critmem_sched::SchedulerKind;
use critmem_trace::{ReplayConfig, ReplayStats, Trace, TraceReplayer};
use critmem_workloads::PARALLEL_APPS;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How big each simulation is. The paper runs 500 M instructions per
/// application; here the scale is configurable so the full figure set
/// regenerates in minutes (predictors warm up within thousands of
/// loads because static-load populations are small — the paper's own
/// Figure 5 argument).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Instructions each core commits per run.
    pub instructions: u64,
    /// Apps used for the per-app figures (1, 3–7, 10).
    pub apps: Vec<&'static str>,
    /// Apps used for the configuration sweeps (Figures 8, 9, 11),
    /// which multiply run counts.
    pub sweep_apps: Vec<&'static str>,
    /// Bundles used for the multiprogrammed study (Figure 12).
    pub bundles: Vec<&'static str>,
}

impl Scale {
    /// Tiny scale for unit/integration tests.
    pub fn quick() -> Self {
        Scale {
            instructions: 3_000,
            apps: vec!["art", "mg", "swim"],
            sweep_apps: vec!["swim"],
            bundles: vec!["AELV", "RFGI"],
        }
    }

    /// The scale used by the `repro` binary: all nine apps, all eight
    /// bundles.
    pub fn standard() -> Self {
        Scale {
            instructions: 25_000,
            apps: PARALLEL_APPS.to_vec(),
            sweep_apps: vec!["art", "mg", "ocean", "swim"],
            bundles: critmem_workloads::BUNDLES.iter().map(|b| b.name).collect(),
        }
    }

    /// A larger scale for overnight runs (`repro --scale full`).
    pub fn full() -> Self {
        Scale {
            instructions: 150_000,
            ..Self::standard()
        }
    }
}

/// One unit of deferred work recorded while planning (see
/// [`Runner::run_parallel`]): an execution-driven run or a trace
/// capture. Both occupy a "distinct simulation" slot.
enum PlannedJob {
    Run {
        key: String,
        cfg: SystemConfig,
        workload: AgentMix,
    },
    Capture {
        key: String,
        app: &'static str,
        cfg: SystemConfig,
    },
}

/// A deferred trace replay (depends on its app's capture).
struct PlannedReplay {
    key: String,
    app: &'static str,
    scheduler: SchedulerKind,
}

/// The result of one executed [`PlannedJob`].
enum JobResult {
    Run(Box<RunStats>),
    Capture(Trace),
}

/// Work collected by a planning pass.
#[derive(Default)]
struct Plan {
    seen: HashSet<String>,
    jobs: Vec<PlannedJob>,
    replays: Vec<PlannedReplay>,
}

/// One sweep cell that failed (panicked past retry, tripped the
/// watchdog, or returned any other typed error). The rest of the sweep
/// completed; the failed cell's memo slot holds a placeholder.
#[derive(Debug)]
pub struct CellFailure {
    /// The memo key of the failed cell.
    pub key: String,
    /// What went wrong.
    pub error: SimError,
}

/// Memoizing run executor shared by all experiments, so e.g. the
/// FR-FCFS baseline for an app is simulated once even though every
/// figure divides by it.
pub struct Runner {
    /// The scale in force.
    pub scale: Scale,
    /// Print a progress line per fresh simulation.
    pub verbose: bool,
    /// Worker threads for [`Runner::run_parallel`]; `1` means fully
    /// serial (plan/execute is bypassed entirely).
    pub jobs: usize,
    /// Shard count for every simulation's DRAM tick
    /// ([`SystemConfig::shards`]). Results are byte-identical at any
    /// value, so the memo keys deliberately do not encode it.
    pub shards: usize,
    /// Event-driven skip-ahead ([`SystemConfig::skip_ahead`]); also
    /// identical-by-construction and therefore absent from memo keys.
    pub skip_ahead: bool,
    /// Independent run auditors ([`SystemConfig::audit`]) on every
    /// simulation. Audited runs are byte-identical in exported
    /// statistics, so this too is absent from memo keys; a violation
    /// fails the cell with a typed error like any other.
    pub audit: bool,
    /// Warm-start boundary in CPU cycles. When set, each distinct
    /// `(platform, workload, instruction budget)` is warmed once under
    /// the shared baseline configuration (FR-FCFS, no predictor) up to
    /// this cycle, the full architectural state is checkpointed, and
    /// every sweep cell restores from the shared snapshot instead of
    /// re-simulating the warmup. Cells that sample time series run cold
    /// (their series must cover the whole run), as do trace captures
    /// (the recorded stream must start at cycle zero).
    pub warm_cycles: Option<u64>,
    cache: HashMap<String, Arc<RunStats>>,
    runs_executed: u64,
    traces: HashMap<String, Arc<Trace>>,
    replay_cache: HashMap<String, Arc<ReplayStats>>,
    replays_executed: u64,
    planning: Option<Plan>,
    failed: Vec<CellFailure>,
    journal: Option<SweepJournal>,
    /// Panic-injection hooks for the resilience tests, owned per
    /// runner so once-per-cell state never leaks across sweeps that
    /// share a process.
    hooks: FaultHooks,
    /// Shared warmup checkpoints, keyed by warm key; `None` records a
    /// failed warmup so dependent cells fall back to cold runs instead
    /// of retrying it.
    checkpoints: HashMap<String, Option<Arc<Checkpoint>>>,
}

impl Runner {
    /// Creates a runner.
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            verbose: false,
            jobs: 1,
            shards: 1,
            skip_ahead: true,
            audit: false,
            warm_cycles: None,
            cache: HashMap::new(),
            runs_executed: 0,
            traces: HashMap::new(),
            replay_cache: HashMap::new(),
            replays_executed: 0,
            planning: None,
            failed: Vec::new(),
            journal: None,
            hooks: FaultHooks::from_env(),
            checkpoints: HashMap::new(),
        }
    }

    /// Number of distinct simulations executed (not cache hits).
    pub fn runs_executed(&self) -> u64 {
        self.runs_executed
    }

    /// The sweep cells that failed so far (empty when everything ran
    /// clean). Failed cells leave placeholder results in the memo
    /// tables so the rest of a figure still renders; callers must
    /// treat any entry here as invalidating the affected rows.
    pub fn failures(&self) -> &[CellFailure] {
        &self.failed
    }

    /// Whether any cell has failed.
    pub fn has_failures(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Attaches a sweep journal: every simulation completed from now on
    /// is appended, so an interrupted sweep can resume. A journal write
    /// failure disables journaling with a warning rather than killing
    /// the sweep — the results in memory are still good.
    pub fn set_journal(&mut self, journal: SweepJournal) {
        self.journal = Some(journal);
    }

    /// Seeds the memo tables from journal entries recovered by
    /// [`SweepJournal::resume`]; subsequent runs skip those cells.
    pub fn preload(&mut self, entries: Vec<JournalEntry>) {
        for entry in entries {
            match entry {
                JournalEntry::Run { key, stats } => {
                    self.cache.insert(key, Arc::new(stats));
                }
                JournalEntry::Replay { key, stats } => {
                    self.replay_cache.insert(key, Arc::new(stats));
                }
            }
        }
    }

    fn journal_run(&mut self, key: &str, stats: &RunStats) {
        if let Some(j) = &mut self.journal {
            if let Err(e) = j.append_run(key, stats) {
                eprintln!("warning: sweep journal write failed ({e}); journaling disabled");
                self.journal = None;
            }
        }
    }

    fn journal_replay(&mut self, key: &str, stats: &ReplayStats) {
        if let Some(j) = &mut self.journal {
            if let Err(e) = j.append_replay(key, stats) {
                eprintln!("warning: sweep journal write failed ({e}); journaling disabled");
                self.journal = None;
            }
        }
    }

    /// Records a failed cell (and tells the operator immediately on
    /// stderr; the summary report comes from [`Runner::failures`]).
    fn record_failure(&mut self, key: String, error: SimError) {
        eprintln!("  [FAILED] {key}: {error}");
        self.failed.push(CellFailure { key, error });
    }

    /// Number of distinct trace replays executed (not cache hits).
    pub fn replays_executed(&self) -> u64 {
        self.replays_executed
    }

    /// The baseline configuration a warmup shares across every cell of
    /// a platform: scheduler and predictor reset to the sweep-neutral
    /// baseline (FR-FCFS, no predictor), sampling off.
    fn warmup_cfg(cfg: &SystemConfig) -> SystemConfig {
        let mut w = cfg.clone();
        w.scheduler = SchedulerKind::FrFcfs;
        w.predictor = PredictorKind::None;
        w.sample_epoch = None;
        w
    }

    /// Memo key of the shared warmup checkpoint a cell restores from.
    fn warm_key(cfg: &SystemConfig, workload: &AgentMix, cycles: u64) -> String {
        format!(
            "warmup:{:08x}@{}+warm{cycles}",
            fingerprint_of(&Self::warmup_cfg(cfg), workload),
            cfg.instructions_per_core,
        )
    }

    /// Runs one warmup to the boundary (shared by the serial and pooled
    /// paths).
    fn warmup_cell(
        cfg: &SystemConfig,
        workload: &AgentMix,
        cycles: u64,
    ) -> Result<Checkpoint, SimError> {
        Session::new(Self::warmup_cfg(cfg), workload)
            .checkpoint_at(cycles)
            .run_to_checkpoint()
    }

    /// Recalls or executes the shared warmup checkpoint for a cell
    /// (serial path). `None` means warm starts are off, the cell
    /// samples a time series (which must cover the whole run), or the
    /// warmup failed — in every case the cell runs cold.
    fn warm_checkpoint(
        &mut self,
        cfg: &SystemConfig,
        workload: &AgentMix,
    ) -> Option<Arc<Checkpoint>> {
        let cycles = self.warm_cycles?;
        if cfg.sample_epoch.is_some() {
            return None;
        }
        let key = Self::warm_key(cfg, workload, cycles);
        if let Some(hit) = self.checkpoints.get(&key) {
            return hit.clone();
        }
        if self.verbose {
            eprintln!("  [warmup] {key}");
        }
        let outcome = Self::isolated_cell(&self.hooks, &key, || {
            Self::warmup_cell(cfg, workload, cycles)
        });
        self.runs_executed += 1;
        match outcome {
            Ok(ckpt) => {
                let ckpt = Arc::new(ckpt);
                self.checkpoints.insert(key, Some(Arc::clone(&ckpt)));
                Some(ckpt)
            }
            Err(err) => {
                self.checkpoints.insert(key.clone(), None);
                self.record_failure(key, err);
                None
            }
        }
    }

    /// Runs one execution-driven cell, warm-starting from `warm` when a
    /// shared checkpoint is available.
    fn run_cell(
        cfg: &SystemConfig,
        workload: &AgentMix,
        warm: Option<&Arc<Checkpoint>>,
    ) -> Result<RunStats, SimError> {
        let session = match warm {
            Some(ckpt) => Session::from_checkpoint(ckpt, cfg.clone(), workload),
            None => Session::new(cfg.clone(), workload),
        };
        session.run().map(|out| out.stats)
    }

    /// Captures one trace cell (always cold: the recorded request
    /// stream must start at cycle zero).
    fn capture_cell(cfg: &SystemConfig, app: &'static str) -> Result<Trace, SimError> {
        Session::new(cfg.clone(), &AgentMix::Parallel(app))
            .traced(app)
            .run()
            .map(|out| out.observer.into_trace())
    }

    /// A sorted, comparable snapshot of the memo tables: one
    /// `(key, headline cycle count)` entry per cached run and replay.
    /// Two runners that executed the same experiments must produce
    /// identical snapshots regardless of `jobs` (the determinism
    /// contract of [`Runner::run_parallel`]).
    pub fn memo_snapshot(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .cache
            .iter()
            .map(|(k, s)| (k.clone(), s.cycles))
            .chain(
                self.replay_cache
                    .iter()
                    .map(|(k, s)| (k.clone(), s.cpu_cycles)),
            )
            .collect();
        v.sort();
        v
    }

    /// Runs `f` with this runner, fanning the simulations it needs out
    /// across [`Runner::jobs`] worker threads.
    ///
    /// Three phases: (1) a *planning* dry run of `f` in which cache
    /// misses return placeholder results and are recorded instead of
    /// executed — sound because experiments derive *which* runs they
    /// need from their structure (app lists, scheduler tables), never
    /// from simulation results; (2) parallel execution of the recorded
    /// runs, merged into the memo table in plan order (results are
    /// keyed and the simulations are deterministic, so insertion order
    /// is irrelevant to the table contents); (3) a re-run of `f` that
    /// now hits the warm cache everywhere and therefore returns output
    /// byte-identical to a serial run.
    ///
    /// With `jobs <= 1`, or when called reentrantly, `f` simply runs
    /// serially.
    pub fn run_parallel<T>(&mut self, f: impl Fn(&mut Runner) -> T) -> T {
        if self.jobs <= 1 || self.planning.is_some() {
            return f(self);
        }
        self.planning = Some(Plan::default());
        let _ = f(self);
        let plan = self.planning.take().expect("planning state vanished");
        self.execute_plan(plan);
        f(self)
    }

    /// Executes a collected plan across the worker pool and merges the
    /// results into the memo tables.
    fn execute_plan(&mut self, plan: Plan) {
        // Progress lines are printed up front in plan order — the same
        // content a serial run would emit, independent of which worker
        // finishes first.
        if self.verbose {
            let mut n = self.runs_executed;
            for job in &plan.jobs {
                n += 1;
                match job {
                    PlannedJob::Run { key, .. } => eprintln!("  [run {n:>3}] {key}"),
                    PlannedJob::Capture { key, .. } => eprintln!("  [capture] {key}"),
                }
            }
        }
        let executed = plan.jobs.len() as u64;
        // Resolve the shared warmup checkpoints the planned cells need,
        // before fanning the cells out: distinct warmups run once each
        // on the pool, then every dependent cell restores from an
        // `Arc`'d in-memory snapshot.
        if let Some(cycles) = self.warm_cycles {
            let mut seen = HashSet::new();
            let mut needed: Vec<(String, SystemConfig, AgentMix)> = Vec::new();
            for job in &plan.jobs {
                if let PlannedJob::Run { cfg, workload, .. } = job {
                    if cfg.sample_epoch.is_none() {
                        let key = Self::warm_key(cfg, workload, cycles);
                        if !self.checkpoints.contains_key(&key) && seen.insert(key.clone()) {
                            needed.push((key, cfg.clone(), workload.clone()));
                        }
                    }
                }
            }
            if !needed.is_empty() {
                if self.verbose {
                    for (key, ..) in &needed {
                        eprintln!("  [warmup] {key}");
                    }
                }
                let hooks = &self.hooks;
                let results = scoped_map_isolated(self.jobs, &needed, |(key, cfg, workload)| {
                    hooks.maybe_inject(key);
                    Self::warmup_cell(cfg, workload, cycles)
                });
                self.runs_executed += needed.len() as u64;
                for ((key, ..), result) in needed.into_iter().zip(results) {
                    match result.and_then(|r| r) {
                        Ok(ckpt) => {
                            self.checkpoints.insert(key, Some(Arc::new(ckpt)));
                        }
                        Err(err) => {
                            self.checkpoints.insert(key.clone(), None);
                            self.record_failure(key, err);
                        }
                    }
                }
            }
        }
        let jobs: Vec<(PlannedJob, Option<Arc<Checkpoint>>)> = plan
            .jobs
            .into_iter()
            .map(|job| {
                let warm = match (&job, self.warm_cycles) {
                    (PlannedJob::Run { cfg, workload, .. }, Some(cycles))
                        if cfg.sample_epoch.is_none() =>
                    {
                        self.checkpoints
                            .get(&Self::warm_key(cfg, workload, cycles))
                            .cloned()
                            .flatten()
                    }
                    _ => None,
                };
                (job, warm)
            })
            .collect();
        let hooks = &self.hooks;
        let results = scoped_map_isolated(self.jobs, &jobs, |(job, warm)| match job {
            PlannedJob::Run { key, cfg, workload } => {
                hooks.maybe_inject(key);
                Self::run_cell(cfg, workload, warm.as_ref())
                    .map(|stats| JobResult::Run(Box::new(stats)))
            }
            PlannedJob::Capture { key, app, cfg } => {
                hooks.maybe_inject(key);
                Self::capture_cell(cfg, app).map(JobResult::Capture)
            }
        });
        for ((job, _), result) in jobs.into_iter().zip(results) {
            // Flatten: the outer error is a caught panic, the inner one
            // a typed failure from the simulation itself.
            match (job, result.and_then(|r| r)) {
                (PlannedJob::Run { key, .. }, Ok(JobResult::Run(stats))) => {
                    self.journal_run(&key, &stats);
                    self.cache.insert(key, Arc::new(*stats));
                }
                (PlannedJob::Capture { key, .. }, Ok(JobResult::Capture(trace))) => {
                    self.traces.insert(key, Arc::new(trace));
                }
                (PlannedJob::Run { key, cfg, .. }, Err(err)) => {
                    self.cache
                        .insert(key.clone(), Arc::new(Self::placeholder_stats(&cfg)));
                    self.record_failure(key, err);
                }
                (PlannedJob::Capture { key, app, cfg }, Err(err)) => {
                    self.traces
                        .insert(key.clone(), Arc::new(Self::placeholder_trace(&cfg, app)));
                    self.record_failure(key, err);
                }
                _ => unreachable!("job kind and result kind always match"),
            }
        }
        self.runs_executed += executed;

        if plan.replays.is_empty() {
            return;
        }
        if self.verbose {
            let mut n = self.replays_executed;
            for rep in &plan.replays {
                n += 1;
                eprintln!("  [replay {n:>3}] {}", rep.key);
            }
        }
        let replayed = plan.replays.len() as u64;
        let items: Vec<(String, Arc<Trace>, SchedulerKind, SystemConfig)> = plan
            .replays
            .into_iter()
            .map(|rep| {
                // The capture was part of the plan (or already cached),
                // so this is a cache hit.
                let trace = self.capture(rep.app);
                let cfg = self.parallel_cfg().with_scheduler(rep.scheduler);
                (rep.key, trace, rep.scheduler, cfg)
            })
            .collect();
        let hooks = &self.hooks;
        let results = scoped_map_isolated(self.jobs, &items, |(key, trace, scheduler, cfg)| {
            hooks.maybe_inject(key);
            Self::replay_cell(trace, *scheduler, cfg)
        });
        for ((key, ..), result) in items.into_iter().zip(results) {
            match result.and_then(|r| r) {
                Ok(stats) => {
                    self.journal_replay(&key, &stats);
                    self.replay_cache.insert(key, Arc::new(stats));
                }
                Err(err) => {
                    self.replay_cache
                        .insert(key.clone(), Arc::new(ReplayStats::default()));
                    self.record_failure(key, err);
                }
            }
        }
        self.replays_executed += replayed;
    }

    /// Builds a DRAM system with `scheduler` and replays `trace` on it
    /// (the shared cell body of the serial and pooled replay paths).
    fn replay_cell(
        trace: &Arc<Trace>,
        scheduler: SchedulerKind,
        cfg: &SystemConfig,
    ) -> Result<ReplayStats, SimError> {
        let num_threads = cfg.cores;
        let dram = DramSystem::new(cfg.dram, |ch| scheduler.build(num_threads, u64::from(ch.0)));
        TraceReplayer::new(
            (**trace).clone(),
            dram,
            ReplayConfig::default().with_audit(cfg.audit),
        )
        .map_err(|e| SimError::Trace(e.to_string()))?
        .try_run()
    }

    /// Runs one cell on the calling thread under the same
    /// panic-isolation and fault-injection policy as the worker pool,
    /// so failure semantics do not depend on the job count.
    fn isolated_cell<O: Send>(
        hooks: &FaultHooks,
        key: &str,
        f: impl Fn() -> Result<O, SimError> + Sync,
    ) -> Result<O, SimError> {
        scoped_map_isolated(1, &[()], |_| {
            hooks.maybe_inject(key);
            f()
        })
        .pop()
        .expect("one item in, one result out")
        .and_then(|r| r)
    }

    /// A structurally valid stand-in returned for cache misses during a
    /// planning pass. Every derived metric (IPC, fractions, speedup
    /// ratios) stays finite, so experiment code runs unmodified; the
    /// numbers are discarded with the rest of the dry-run output.
    fn placeholder_stats(cfg: &SystemConfig) -> RunStats {
        RunStats {
            cycles: 1,
            core_finish: vec![1; cfg.cores],
            cores: vec![Default::default(); cfg.cores],
            hierarchy: Default::default(),
            channels: vec![Default::default(); cfg.dram.org.channels as usize],
            lq_full_cycles: vec![0; cfg.cores],
            instructions_per_core: cfg.instructions_per_core.max(1),
            predictor_observed: vec![None; cfg.cores],
            series: None,
            agents: Vec::new(),
        }
    }

    /// Planning stand-in for a capture: right fingerprint, no records.
    fn placeholder_trace(cfg: &SystemConfig, app: &str) -> Trace {
        Trace {
            fingerprint: critmem_trace::Fingerprint::of(cfg.cores, cfg.cpu_mhz, &cfg.dram),
            source: app.to_string(),
            records: Vec::new(),
        }
    }

    /// Runs (or recalls) a simulation under a unique `key`.
    ///
    /// The memoization key is qualified with the run's instruction
    /// budget: callers' keys encode app/scheduler/predictor, and the
    /// budget is the remaining `Scale`-dependent input, so a runner
    /// whose scale is changed mid-flight never recalls a stale result.
    /// Warm-started cells additionally carry a `+warm{cycles}` suffix,
    /// so a resumed journal never serves a cold run's result to a
    /// warm-start cell (or vice versa).
    pub fn run_keyed(
        &mut self,
        key: String,
        cfg: SystemConfig,
        workload: &AgentMix,
    ) -> Arc<RunStats> {
        let key = match (self.warm_cycles, cfg.sample_epoch) {
            (Some(cycles), None) => {
                format!("{key}@{}+warm{cycles}", cfg.instructions_per_core)
            }
            _ => format!("{key}@{}", cfg.instructions_per_core),
        };
        if let Some(hit) = self.cache.get(&key) {
            return Arc::clone(hit);
        }
        if let Some(plan) = &mut self.planning {
            let placeholder = Arc::new(Self::placeholder_stats(&cfg));
            if plan.seen.insert(format!("run:{key}")) {
                plan.jobs.push(PlannedJob::Run {
                    key,
                    cfg,
                    workload: workload.clone(),
                });
            }
            return placeholder;
        }
        let warm = self.warm_checkpoint(&cfg, workload);
        if self.verbose {
            eprintln!("  [run {:>3}] {key}", self.runs_executed + 1);
        }
        let outcome = Self::isolated_cell(&self.hooks, &key, || {
            Self::run_cell(&cfg, workload, warm.as_ref())
        });
        self.runs_executed += 1;
        match outcome {
            Ok(stats) => {
                self.journal_run(&key, &stats);
                let stats = Arc::new(stats);
                self.cache.insert(key, Arc::clone(&stats));
                stats
            }
            Err(err) => {
                let stats = Arc::new(Self::placeholder_stats(&cfg));
                self.cache.insert(key.clone(), Arc::clone(&stats));
                self.record_failure(key, err);
                stats
            }
        }
    }

    /// Captures (or recalls) a parallel app's request trace at this
    /// scale: one execution-driven FR-FCFS run with the paper's
    /// MaxStallTime CBP attached, so the recorded requests carry the
    /// processor-side criticality annotations (the scheduler itself
    /// ignores them, so arrival timing is the FR-FCFS baseline's).
    /// Every subsequent [`Runner::replay`] of the app reuses it.
    pub fn capture(&mut self, app: &'static str) -> Arc<Trace> {
        self.capture_with(
            app,
            PredictorKind::cbp64(critmem_predict::CbpMetric::MaxStallTime),
        )
    }

    /// Captures (or recalls) an app's trace with a specific annotation
    /// predictor (one capture per metric under study).
    pub fn capture_with(&mut self, app: &'static str, predictor: PredictorKind) -> Arc<Trace> {
        let key = format!("{app}|{}@{}", predictor.name(), self.scale.instructions);
        if let Some(hit) = self.traces.get(&key) {
            return Arc::clone(hit);
        }
        let cfg = self.parallel_cfg().with_predictor(predictor);
        if let Some(plan) = &mut self.planning {
            let placeholder = Arc::new(Self::placeholder_trace(&cfg, app));
            if plan.seen.insert(format!("cap:{key}")) {
                plan.jobs.push(PlannedJob::Capture { key, app, cfg });
            }
            return placeholder;
        }
        if self.verbose {
            eprintln!("  [capture] {key}");
        }
        let outcome = Self::isolated_cell(&self.hooks, &key, || Self::capture_cell(&cfg, app));
        self.runs_executed += 1;
        match outcome {
            Ok(trace) => {
                let trace = Arc::new(trace);
                self.traces.insert(key, Arc::clone(&trace));
                trace
            }
            Err(err) => {
                let trace = Arc::new(Self::placeholder_trace(&cfg, app));
                self.traces.insert(key.clone(), Arc::clone(&trace));
                self.record_failure(key, err);
                trace
            }
        }
    }

    /// Replays (or recalls) an app's captured trace under `scheduler`.
    /// The DRAM system is rebuilt from the runner's own configuration —
    /// same topology as the capture, scheduler swapped — so the
    /// replayed controllers see exactly the recorded arrival stream.
    pub fn replay(&mut self, app: &'static str, scheduler: SchedulerKind) -> Arc<ReplayStats> {
        let key = format!(
            "{app}|{}|replay@{}",
            scheduler.name(),
            self.scale.instructions
        );
        if let Some(hit) = self.replay_cache.get(&key) {
            return Arc::clone(hit);
        }
        let trace = self.capture(app);
        if let Some(plan) = &mut self.planning {
            if plan.seen.insert(format!("rep:{key}")) {
                plan.replays.push(PlannedReplay {
                    key,
                    app,
                    scheduler,
                });
            }
            return Arc::new(ReplayStats::default());
        }
        if self.verbose {
            eprintln!("  [replay {:>3}] {key}", self.replays_executed + 1);
        }
        let cfg = self.parallel_cfg().with_scheduler(scheduler);
        let outcome = Self::isolated_cell(&self.hooks, &key, || {
            Self::replay_cell(&trace, scheduler, &cfg)
        });
        self.replays_executed += 1;
        match outcome {
            Ok(stats) => {
                self.journal_replay(&key, &stats);
                let stats = Arc::new(stats);
                self.replay_cache.insert(key, Arc::clone(&stats));
                stats
            }
            Err(err) => {
                let stats = Arc::new(ReplayStats::default());
                self.replay_cache.insert(key.clone(), Arc::clone(&stats));
                self.record_failure(key, err);
                stats
            }
        }
    }

    /// Base configuration for a parallel run at this scale.
    pub fn parallel_cfg(&self) -> SystemConfig {
        let mut cfg = SystemConfig::paper_baseline(self.scale.instructions);
        cfg.max_cycles = self
            .scale
            .instructions
            .saturating_mul(20_000)
            .max(1_000_000_000);
        cfg.shards = self.shards;
        cfg.skip_ahead = self.skip_ahead;
        cfg.audit = self.audit;
        cfg
    }

    /// Runs a parallel app under `(scheduler, predictor)` with an
    /// optional config transform; `tag` must uniquely identify the
    /// transform.
    pub fn parallel_with<F>(
        &mut self,
        app: &'static str,
        scheduler: SchedulerKind,
        predictor: PredictorKind,
        tag: &str,
        tweak: F,
    ) -> Arc<RunStats>
    where
        F: FnOnce(SystemConfig) -> SystemConfig,
    {
        let cfg = tweak(
            self.parallel_cfg()
                .with_scheduler(scheduler)
                .with_predictor(predictor),
        );
        let key = format!("{app}|{}|{}|{tag}", scheduler.name(), predictor.name());
        self.run_keyed(key, cfg, &AgentMix::Parallel(app))
    }

    /// Runs a parallel app under `(scheduler, predictor)`.
    pub fn parallel(
        &mut self,
        app: &'static str,
        scheduler: SchedulerKind,
        predictor: PredictorKind,
    ) -> Arc<RunStats> {
        self.parallel_with(app, scheduler, predictor, "", |c| c)
    }

    /// The FR-FCFS, predictor-less baseline for an app.
    pub fn baseline(&mut self, app: &'static str) -> Arc<RunStats> {
        self.parallel(app, SchedulerKind::FrFcfs, PredictorKind::None)
    }
}

/// A plain-text table with row labels, column headers, and formatted
/// cells — the rendering used for every reproduced figure/table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl TextTable {
    /// Creates a table with a title and column headers (the first
    /// column is the row label and needs no header entry).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Formats a ratio as a percentage delta ("+9.3%").
    pub fn pct(ratio: f64) -> String {
        format!("{:+.1}%", (ratio - 1.0) * 100.0)
    }

    /// Formats a fraction as a percentage ("48.6%").
    pub fn frac(f: f64) -> String {
        format!("{:.1}%", f * 100.0)
    }

    /// Formats a speedup ratio ("1.093x").
    pub fn ratio(r: f64) -> String {
        format!("{r:.3}x")
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let col_w: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .filter_map(|(_, cells)| cells.get(i).map(|c| c.len()))
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(h.len())
            })
            .collect();
        writeln!(f, "\n=== {} ===", self.title)?;
        write!(f, "{:<label_w$}", "")?;
        for (h, w) in self.headers.iter().zip(&col_w) {
            write!(f, "  {h:>w$}")?;
        }
        writeln!(f)?;
        for (label, cells) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (c, w) in cells.iter().zip(&col_w) {
                write!(f, "  {c:>w$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_memoizes() {
        let mut r = Runner::new(Scale {
            instructions: 500,
            ..Scale::quick()
        });
        let a = r.baseline("swim");
        let b = r.baseline("swim");
        assert_eq!(r.runs_executed(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    /// Regression: the memo key must track the active scale. Changing
    /// `scale.instructions` between calls used to recall the old run.
    #[test]
    fn memo_key_tracks_scale() {
        let mut r = Runner::new(Scale {
            instructions: 500,
            ..Scale::quick()
        });
        let a = r.baseline("swim");
        r.scale.instructions = 900;
        let b = r.baseline("swim");
        assert_eq!(r.runs_executed(), 2, "scale change must force a fresh run");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.cycles, b.cycles);
        assert_eq!(b.instructions_per_core, 900);
    }

    #[test]
    fn capture_memoizes_and_annotates() {
        let mut r = Runner::new(Scale {
            instructions: 500,
            ..Scale::quick()
        });
        let t1 = r.capture("swim");
        let t2 = r.capture("swim");
        assert!(Arc::ptr_eq(&t1, &t2));
        assert!(!t1.records.is_empty(), "swim must miss the L2");
        assert_eq!(r.runs_executed(), 1);
        // The CBP attached at capture time annotated at least one miss.
        assert!(
            t1.records.iter().any(|rec| rec.crit > 0),
            "no criticality annotations captured"
        );
    }

    #[test]
    fn replays_memoize_per_scheduler() {
        let mut r = Runner::new(Scale {
            instructions: 500,
            ..Scale::quick()
        });
        let a = r.replay("swim", SchedulerKind::FrFcfs);
        let b = r.replay("swim", SchedulerKind::FrFcfs);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.replays_executed(), 1);
        let c = r.replay("swim", SchedulerKind::CasRasCrit);
        assert_eq!(r.replays_executed(), 2);
        assert_eq!(
            a.completed, c.completed,
            "same trace, every request serviced"
        );
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["col1", "col2"]);
        t.row("alpha", vec!["1.0".into(), "2.0".into()]);
        t.row("b", vec!["3.0".into(), "4.0".into()]);
        let s = t.to_string();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Header + 2 rows + title.
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(TextTable::pct(1.093), "+9.3%");
        assert_eq!(TextTable::frac(0.486), "48.6%");
        assert_eq!(TextTable::ratio(1.0), "1.000x");
    }
}
